//! Dataset specification machinery: declare types, generate graphs with
//! ground truth.

use crate::values::ValueGen;
use pg_hive_graph::{GraphBuilder, PropertyGraph, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One property of a type: key, value generator, and the probability that a
/// given instance carries it (presence < 1 creates multiple patterns per
/// type, Def. 3.5).
#[derive(Debug, Clone)]
pub struct PropDef {
    pub key: String,
    pub gen: ValueGen,
    pub presence: f64,
}

impl PropDef {
    /// Always-present property.
    pub fn req(key: &str, gen: ValueGen) -> Self {
        Self {
            key: key.to_string(),
            gen,
            presence: 1.0,
        }
    }

    /// Property present on a fraction of instances.
    pub fn opt(key: &str, gen: ValueGen, presence: f64) -> Self {
        Self {
            key: key.to_string(),
            gen,
            presence,
        }
    }
}

/// A ground-truth node type.
#[derive(Debug, Clone)]
pub struct NodeDef {
    /// Human-readable type name (ground-truth id).
    pub name: String,
    /// Label set instances of this type carry (may be empty).
    pub labels: Vec<String>,
    pub props: Vec<PropDef>,
    /// Relative share of the node population.
    pub weight: f64,
}

/// A ground-truth edge type connecting two node types (by index into
/// [`DatasetSpec::nodes`]).
#[derive(Debug, Clone)]
pub struct EdgeDef {
    pub name: String,
    pub label: String,
    pub props: Vec<PropDef>,
    pub src: usize,
    pub tgt: usize,
    /// Relative share of the edge population.
    pub weight: f64,
}

/// A complete dataset specification.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub name: String,
    pub nodes: Vec<NodeDef>,
    pub edges: Vec<EdgeDef>,
}

/// Ground-truth type assignment for every generated element.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Per node: index into `node_type_names`.
    pub node_types: Vec<u32>,
    /// Per edge: index into `edge_type_names`.
    pub edge_types: Vec<u32>,
    pub node_type_names: Vec<String>,
    pub edge_type_names: Vec<String>,
}

/// A generated dataset: the graph plus its ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: String,
    pub graph: PropertyGraph,
    pub truth: GroundTruth,
}

impl DatasetSpec {
    /// Generate `n_nodes` nodes and `n_edges` edges according to the spec.
    ///
    /// Node counts are split by weight (every type gets at least one
    /// instance); edges pick uniform-random endpoints of the right types.
    ///
    /// # Panics
    /// Panics if the spec has no node types, or an edge type references a
    /// missing node type.
    pub fn generate(&self, n_nodes: usize, n_edges: usize, seed: u64) -> Dataset {
        assert!(!self.nodes.is_empty(), "spec needs at least one node type");
        for e in &self.edges {
            assert!(
                e.src < self.nodes.len() && e.tgt < self.nodes.len(),
                "edge type '{}' references a missing node type",
                e.name
            );
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(n_nodes, n_edges);

        // Allocate node counts by weight.
        let counts = allocate(
            n_nodes,
            &self.nodes.iter().map(|n| n.weight).collect::<Vec<_>>(),
        );
        let mut node_types = Vec::with_capacity(n_nodes);
        let mut per_type_ids: Vec<Vec<pg_hive_graph::NodeId>> = vec![Vec::new(); self.nodes.len()];

        // Interleave types (round-robin over remaining quotas) so batch
        // splits see all types early.
        let mut remaining = counts.clone();
        let mut active: Vec<usize> = (0..self.nodes.len()).collect();
        while !active.is_empty() {
            active.retain(|&t| remaining[t] > 0);
            for &t in &active {
                if remaining[t] == 0 {
                    continue;
                }
                remaining[t] -= 1;
                let def = &self.nodes[t];
                let props = sample_props(&def.props, &mut rng);
                let prop_refs: Vec<(&str, Value)> =
                    props.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                let label_refs: Vec<&str> = def.labels.iter().map(String::as_str).collect();
                let id = b.add_node(&label_refs, &prop_refs);
                node_types.push(t as u32);
                per_type_ids[t].push(id);
            }
        }

        // Edges by weight.
        let mut edge_types = Vec::with_capacity(n_edges);
        if !self.edges.is_empty() {
            let ecounts = allocate(
                n_edges,
                &self.edges.iter().map(|e| e.weight).collect::<Vec<_>>(),
            );
            let mut eremaining = ecounts;
            let mut eactive: Vec<usize> = (0..self.edges.len()).collect();
            while !eactive.is_empty() {
                eactive.retain(|&t| eremaining[t] > 0);
                for &t in &eactive {
                    if eremaining[t] == 0 {
                        continue;
                    }
                    eremaining[t] -= 1;
                    let def = &self.edges[t];
                    let srcs = &per_type_ids[def.src];
                    let tgts = &per_type_ids[def.tgt];
                    if srcs.is_empty() || tgts.is_empty() {
                        continue;
                    }
                    let s = srcs[rng.gen_range(0..srcs.len())];
                    let g = tgts[rng.gen_range(0..tgts.len())];
                    let props = sample_props(&def.props, &mut rng);
                    let prop_refs: Vec<(&str, Value)> =
                        props.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                    b.add_edge(s, g, &[&def.label], &prop_refs);
                    edge_types.push(t as u32);
                }
            }
        }

        Dataset {
            name: self.name.clone(),
            graph: b.finish(),
            truth: GroundTruth {
                node_types,
                edge_types,
                node_type_names: self.nodes.iter().map(|n| n.name.clone()).collect(),
                edge_type_names: self.edges.iter().map(|e| e.name.clone()).collect(),
            },
        }
    }
}

fn sample_props(defs: &[PropDef], rng: &mut StdRng) -> Vec<(String, Value)> {
    let mut out = Vec::with_capacity(defs.len());
    for p in defs {
        if p.presence >= 1.0 || rng.gen::<f64>() < p.presence {
            out.push((p.key.clone(), p.gen.sample(rng)));
        }
    }
    out
}

/// Split `total` into integer shares proportional to `weights`, each ≥ 1
/// when `total ≥ weights.len()`.
fn allocate(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || total == 0 {
        return vec![0; weights.len()];
    }
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / sum) * total as f64).floor() as usize)
        .collect();
    if total >= weights.len() {
        for c in counts.iter_mut() {
            if *c == 0 {
                *c = 1;
            }
        }
    }
    // Fix rounding drift onto the largest-weight type.
    let assigned: usize = counts.iter().sum();
    let largest = weights
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    if assigned < total {
        counts[largest] += total - assigned;
    } else {
        let mut excess = assigned - total;
        while excess > 0 && counts[largest] > 1 {
            counts[largest] -= 1;
            excess -= 1;
        }
        // If still over (pathological many-types-few-elements), trim others.
        let mut i = 0;
        while excess > 0 && i < counts.len() {
            while counts[i] > 1 && excess > 0 {
                counts[i] -= 1;
                excess -= 1;
            }
            i += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::ValueGen;
    use pg_hive_graph::GraphStats;

    fn two_type_spec() -> DatasetSpec {
        DatasetSpec {
            name: "test".into(),
            nodes: vec![
                NodeDef {
                    name: "Person".into(),
                    labels: vec!["Person".into()],
                    props: vec![
                        PropDef::req("name", ValueGen::Name(100)),
                        PropDef::opt("age", ValueGen::Int(0, 99), 0.5),
                    ],
                    weight: 3.0,
                },
                NodeDef {
                    name: "Org".into(),
                    labels: vec!["Org".into()],
                    props: vec![PropDef::req("url", ValueGen::Text)],
                    weight: 1.0,
                },
            ],
            edges: vec![EdgeDef {
                name: "WORKS_AT".into(),
                label: "WORKS_AT".into(),
                props: vec![PropDef::opt("from", ValueGen::Int(1990, 2025), 0.7)],
                src: 0,
                tgt: 1,
                weight: 1.0,
            }],
        }
    }

    #[test]
    fn generates_requested_counts() {
        let d = two_type_spec().generate(400, 300, 1);
        assert_eq!(d.graph.node_count(), 400);
        assert_eq!(d.graph.edge_count(), 300);
        assert_eq!(d.truth.node_types.len(), 400);
        assert_eq!(d.truth.edge_types.len(), 300);
    }

    #[test]
    fn weights_control_population_shares() {
        let d = two_type_spec().generate(400, 0, 2);
        let persons = d.truth.node_types.iter().filter(|&&t| t == 0).count();
        assert!((persons as i64 - 300).abs() <= 2, "persons = {persons}");
    }

    #[test]
    fn optional_props_create_patterns() {
        let d = two_type_spec().generate(400, 0, 3);
        let stats = GraphStats::compute(&d.graph);
        // Person with/without age + Org = 3 node patterns.
        assert_eq!(stats.node_patterns, 3);
    }

    #[test]
    fn edges_respect_endpoint_types() {
        let d = two_type_spec().generate(100, 200, 4);
        for (_, e) in d.graph.edges() {
            let (src, tgt) = d.graph.edge_endpoint_labels(e);
            assert_eq!(d.graph.label_set_str(src), "{Person}");
            assert_eq!(d.graph.label_set_str(tgt), "{Org}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = two_type_spec().generate(50, 50, 9);
        let c = two_type_spec().generate(50, 50, 9);
        assert_eq!(a.truth.node_types, c.truth.node_types);
        let sa = GraphStats::compute(&a.graph);
        let sc = GraphStats::compute(&c.graph);
        assert_eq!(sa, sc);
    }

    #[test]
    fn interleaving_spreads_types_early() {
        let d = two_type_spec().generate(40, 0, 5);
        // Among the first 10 nodes both types should appear.
        let first: std::collections::HashSet<u32> =
            d.truth.node_types[..10].iter().copied().collect();
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn allocate_shares() {
        assert_eq!(allocate(10, &[1.0, 1.0]), vec![5, 5]);
        assert_eq!(allocate(10, &[3.0, 1.0]).iter().sum::<usize>(), 10);
        let tiny = allocate(3, &[1.0, 1.0, 1.0]);
        assert_eq!(tiny, vec![1, 1, 1]);
        assert_eq!(allocate(0, &[1.0]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "missing node type")]
    fn bad_edge_ref_panics() {
        let mut s = two_type_spec();
        s.edges[0].tgt = 9;
        s.generate(10, 10, 0);
    }
}
