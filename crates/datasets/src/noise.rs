//! Noise injection (§5 "Noise injection"): randomly remove 0–40% of
//! node/edge properties and retain labels on 100/50/0% of **nodes**.
//!
//! Label availability degrades node labels only: the paper's Fig. 4 shows
//! PG-HIVE edge F1\* above 0.9 at 0% availability while §5.1 notes edge
//! extraction "relies on their labeling information" — consistent only if
//! the availability axis strips node labels (the baselines' "fully labeled"
//! precondition also concerns node typing). Edge properties are still
//! subject to the noise axis.

use pg_hive_graph::{EdgeId, NodeId, PropertyGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The two degradation axes of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSpec {
    /// Probability that each individual property is removed (paper: 0–0.4).
    pub prop_removal: f64,
    /// Probability that a **node** keeps its labels (paper: 1.0, 0.5, 0.0).
    pub label_keep: f64,
    /// Seed.
    pub seed: u64,
}

impl NoiseSpec {
    /// No degradation.
    pub fn clean() -> Self {
        Self {
            prop_removal: 0.0,
            label_keep: 1.0,
            seed: 0,
        }
    }

    /// The paper's grid point `(noise %, label availability %)`.
    pub fn grid(noise_pct: u32, label_pct: u32, seed: u64) -> Self {
        Self {
            prop_removal: noise_pct as f64 / 100.0,
            label_keep: label_pct as f64 / 100.0,
            seed,
        }
    }
}

/// Degrade `g` in place according to `spec`. Deterministic per seed.
pub fn inject_noise(g: &mut PropertyGraph, spec: &NoiseSpec) {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x0040_15EE);
    let nodes = g.node_count();
    for i in 0..nodes {
        let n = g.node_mut(NodeId(i as u32));
        if spec.prop_removal > 0.0 {
            n.props.retain(|_| rng.gen::<f64>() >= spec.prop_removal);
        }
        if spec.label_keep < 1.0 && rng.gen::<f64>() >= spec.label_keep {
            n.labels.clear();
        }
    }
    let edges = g.edge_count();
    for i in 0..edges {
        let e = g.edge_mut(EdgeId(i as u32));
        if spec.prop_removal > 0.0 {
            e.props.retain(|_| rng.gen::<f64>() >= spec.prop_removal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::{GraphBuilder, Value};

    fn graph(n: usize) -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let mut prev = None;
        for i in 0..n {
            let id = b.add_node(
                &["T"],
                &[
                    ("a", Value::Int(i as i64)),
                    ("b", Value::Int(1)),
                    ("c", Value::Int(2)),
                ],
            );
            if let Some(p) = prev {
                b.add_edge(p, id, &["E"], &[("w", Value::Int(1))]);
            }
            prev = Some(id);
        }
        b.finish()
    }

    #[test]
    fn clean_spec_changes_nothing() {
        let mut g = graph(50);
        let before: usize = g.nodes().map(|(_, n)| n.props.len()).sum();
        inject_noise(&mut g, &NoiseSpec::clean());
        let after: usize = g.nodes().map(|(_, n)| n.props.len()).sum();
        assert_eq!(before, after);
        assert!(g.nodes().all(|(_, n)| !n.labels.is_empty()));
    }

    #[test]
    fn prop_removal_rate_is_respected() {
        let mut g = graph(2000);
        inject_noise(&mut g, &NoiseSpec::grid(40, 100, 7));
        let total: usize = g.nodes().map(|(_, n)| n.props.len()).sum();
        let expected = 2000.0 * 3.0 * 0.6;
        assert!(
            (total as f64 - expected).abs() < expected * 0.1,
            "kept {total} of 6000, expected ≈ {expected}"
        );
        // Labels untouched at 100% availability.
        assert!(g.nodes().all(|(_, n)| !n.labels.is_empty()));
    }

    #[test]
    fn label_availability_50_strips_about_half() {
        let mut g = graph(2000);
        inject_noise(&mut g, &NoiseSpec::grid(0, 50, 11));
        let unlabeled = g.nodes().filter(|(_, n)| n.labels.is_empty()).count();
        assert!(
            (unlabeled as i64 - 1000).abs() < 150,
            "unlabeled = {unlabeled}"
        );
        // Properties untouched at 0% noise.
        let total: usize = g.nodes().map(|(_, n)| n.props.len()).sum();
        assert_eq!(total, 6000);
    }

    #[test]
    fn zero_availability_strips_all_node_labels_only() {
        let mut g = graph(100);
        inject_noise(&mut g, &NoiseSpec::grid(0, 0, 3));
        assert!(g.nodes().all(|(_, n)| n.labels.is_empty()));
        // Edge labels survive: availability is the node-label axis.
        assert!(g.edges().all(|(_, e)| !e.labels.is_empty()));
    }

    #[test]
    fn edge_properties_are_degraded_too() {
        let mut g = graph(2000);
        inject_noise(&mut g, &NoiseSpec::grid(40, 50, 5));
        let edge_props: usize = g.edges().map(|(_, e)| e.props.len()).sum();
        assert!(edge_props < 1999, "some edge props removed");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = graph(500);
        let mut b = graph(500);
        inject_noise(&mut a, &NoiseSpec::grid(20, 50, 9));
        inject_noise(&mut b, &NoiseSpec::grid(20, 50, 9));
        for ((_, x), (_, y)) in a.nodes().zip(b.nodes()) {
            assert_eq!(x.props.len(), y.props.len());
            assert_eq!(x.labels.is_empty(), y.labels.is_empty());
        }
    }
}
