//! Integration scenario: two sources describing the same domain with
//! different label vocabularies — the situation behind the paper's §2
//! remark that "different datasets may use distinct labels for the same
//! conceptual entity (e.g., Organization and Company)" and its future-work
//! plan to align labels semantically.
//!
//! Source A uses `Person` / `Organization` / `City`; source B uses
//! `Individual` / `Company` / `Town`. Both sources share the relationship
//! vocabulary (`WORKS_AT`, `LOCATED_IN`) — realistic, since edge vocabularies
//! standardize faster than entity labels — which is exactly the structural
//! co-occurrence signal the alignment extension exploits. Ground truth
//! assigns the *conceptual* type, so the same truth id covers both
//! vocabularies.

use crate::spec::{Dataset, GroundTruth};
use crate::values::ValueGen;
use pg_hive_graph::{GraphBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Conceptual ground-truth type ids of the integration scenario.
pub const CONCEPT_PERSON: u32 = 0;
pub const CONCEPT_ORG: u32 = 1;
pub const CONCEPT_PLACE: u32 = 2;
/// Edge concepts.
pub const CONCEPT_WORKS_AT: u32 = 0;
pub const CONCEPT_LOCATED_IN: u32 = 1;

/// Generate the two-source integration graph with `per_source` persons per
/// source (organizations and places scale along).
pub fn integration_scenario(per_source: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut node_types = Vec::new();
    let mut edge_types = Vec::new();

    let vocabularies: [(&str, &str, &str); 2] = [
        ("Person", "Organization", "City"),
        ("Individual", "Company", "Town"),
    ];

    for (person_label, org_label, place_label) in vocabularies {
        let orgs: Vec<_> = (0..per_source / 5 + 1)
            .map(|_| {
                let id = b.add_node(
                    &[org_label],
                    &[
                        ("name", ValueGen::Name(5000).sample(&mut rng)),
                        ("url", ValueGen::Text.sample(&mut rng)),
                    ],
                );
                node_types.push(CONCEPT_ORG);
                id
            })
            .collect();
        let places: Vec<_> = (0..per_source / 10 + 1)
            .map(|_| {
                let id = b.add_node(
                    &[place_label],
                    &[("name", ValueGen::Name(500).sample(&mut rng))],
                );
                node_types.push(CONCEPT_PLACE);
                id
            })
            .collect();
        for _ in 0..per_source {
            let p = b.add_node(
                &[person_label],
                &[
                    ("name", ValueGen::Name(10_000).sample(&mut rng)),
                    ("bday", ValueGen::Date.sample(&mut rng)),
                ],
            );
            node_types.push(CONCEPT_PERSON);
            let org = orgs[rng.gen_range(0..orgs.len())];
            b.add_edge(
                p,
                org,
                &["WORKS_AT"],
                &[("from", Value::Int(rng.gen_range(1990..2026)))],
            );
            edge_types.push(CONCEPT_WORKS_AT);
        }
        for &org in &orgs {
            let place = places[rng.gen_range(0..places.len())];
            b.add_edge(org, place, &["LOCATED_IN"], &[]);
            edge_types.push(CONCEPT_LOCATED_IN);
        }
    }

    Dataset {
        name: "INTEGRATION".to_string(),
        graph: b.finish(),
        truth: GroundTruth {
            node_types,
            edge_types,
            node_type_names: vec![
                "Person/Individual".into(),
                "Organization/Company".into(),
                "City/Town".into(),
            ],
            edge_type_names: vec!["WORKS_AT".into(), "LOCATED_IN".into()],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::GraphStats;

    #[test]
    fn two_vocabularies_six_label_sets() {
        let d = integration_scenario(50, 1);
        let s = GraphStats::compute(&d.graph);
        assert_eq!(s.node_label_sets, 6, "three concepts x two vocabularies");
        assert_eq!(s.edge_labels, 2, "shared relationship vocabulary");
    }

    #[test]
    fn ground_truth_is_conceptual() {
        let d = integration_scenario(50, 2);
        // Both Person- and Individual-labeled nodes carry CONCEPT_PERSON.
        let person = d.graph.labels().get("Person").unwrap();
        let individual = d.graph.labels().get("Individual").unwrap();
        for (id, n) in d.graph.nodes() {
            if n.labels.contains(&person) || n.labels.contains(&individual) {
                assert_eq!(d.truth.node_types[id.index()], CONCEPT_PERSON);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = integration_scenario(30, 3);
        let b = integration_scenario(30, 3);
        assert_eq!(GraphStats::compute(&a.graph), GraphStats::compute(&b.graph));
        assert_eq!(a.truth.node_types, b.truth.node_types);
    }
}
