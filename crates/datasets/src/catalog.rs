//! The eight evaluation datasets of the paper (Table 2), as synthetic
//! specifications.
//!
//! Each generator mirrors the structural profile of its namesake: type and
//! label counts, multi-label conventions, pattern variance (via optional
//! properties), and edge-type/endpoint structure. Sizes are scaled down from
//! the paper's millions to benchmark-friendly defaults (`default_size`),
//! adjustable with the `scale` argument of [`DatasetId::generate`].

use crate::spec::{Dataset, DatasetSpec, EdgeDef, NodeDef, PropDef};
use crate::values::ValueGen;

/// The eight datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Crime-investigation benchmark (Person–Object–Location–Event).
    Pole,
    /// Mushroom-body connectome (multi-label neurons).
    Mb6,
    /// Integrated biomedical knowledge graph (extra HetionetNode label).
    Hetio,
    /// Medulla connectome (multi-label neurons, more patterns).
    Fib25,
    /// Offshore-leaks graph (heterogeneous, hundreds of node patterns).
    Icij,
    /// LDBC social network benchmark (Message super-label).
    Ldbc,
    /// COVID-19 knowledge graph (many flat types).
    Cord19,
    /// Internet Yellow Pages (most heterogeneous: many multi-label types).
    Iyp,
}

impl DatasetId {
    /// All eight, in the paper's Table 2 order.
    pub const ALL: [DatasetId; 8] = [
        DatasetId::Pole,
        DatasetId::Mb6,
        DatasetId::Hetio,
        DatasetId::Fib25,
        DatasetId::Icij,
        DatasetId::Ldbc,
        DatasetId::Cord19,
        DatasetId::Iyp,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Pole => "POLE",
            DatasetId::Mb6 => "MB6",
            DatasetId::Hetio => "HET.IO",
            DatasetId::Fib25 => "FIB25",
            DatasetId::Icij => "ICIJ",
            DatasetId::Ldbc => "LDBC",
            DatasetId::Cord19 => "CORD19",
            DatasetId::Iyp => "IYP",
        }
    }

    /// Default generation size `(nodes, edges)` — the paper's relative
    /// dataset sizes at roughly 1/500–1/5000 scale.
    pub fn default_size(self) -> (usize, usize) {
        match self {
            DatasetId::Pole => (2_400, 4_200),
            DatasetId::Mb6 => (4_800, 9_600),
            DatasetId::Hetio => (1_900, 9_000),
            DatasetId::Fib25 => (6_400, 13_000),
            DatasetId::Icij => (8_000, 13_400),
            DatasetId::Ldbc => (6_400, 25_000),
            DatasetId::Cord19 => (11_000, 11_400),
            DatasetId::Iyp => (17_800, 50_200),
        }
    }

    /// Build the specification.
    pub fn spec(self) -> DatasetSpec {
        match self {
            DatasetId::Pole => pole(),
            DatasetId::Mb6 => connectome("MB6", "mb6", 0.35),
            DatasetId::Hetio => hetio(),
            DatasetId::Fib25 => connectome("FIB25", "fib25", 0.55),
            DatasetId::Icij => icij(),
            DatasetId::Ldbc => ldbc(),
            DatasetId::Cord19 => cord19(),
            DatasetId::Iyp => iyp(),
        }
    }

    /// Generate at `scale × default_size` with the given seed.
    pub fn generate(self, scale: f64, seed: u64) -> Dataset {
        let (n, e) = self.default_size();
        let n = ((n as f64 * scale) as usize).max(self.spec().nodes.len());
        let e = (e as f64 * scale) as usize;
        self.spec().generate(n, e, seed)
    }
}

/// Generate all eight datasets at the given scale.
pub fn all_datasets(scale: f64, seed: u64) -> Vec<Dataset> {
    DatasetId::ALL
        .iter()
        .map(|d| d.generate(scale, seed))
        .collect()
}

/// Look up a dataset id by its paper name (case-insensitive).
pub fn dataset_by_name(name: &str) -> Option<DatasetId> {
    let upper = name.to_uppercase();
    DatasetId::ALL
        .iter()
        .copied()
        .find(|d| d.name().replace('.', "") == upper.replace('.', ""))
}

// ---------------------------------------------------------------------------
// Spec helpers
// ---------------------------------------------------------------------------

fn node(name: &str, labels: &[&str], props: Vec<PropDef>, weight: f64) -> NodeDef {
    NodeDef {
        name: name.to_string(),
        labels: labels.iter().map(|s| s.to_string()).collect(),
        props,
        weight,
    }
}

fn edge(
    name: &str,
    label: &str,
    src: usize,
    tgt: usize,
    props: Vec<PropDef>,
    weight: f64,
) -> EdgeDef {
    EdgeDef {
        name: name.to_string(),
        label: label.to_string(),
        props,
        src,
        tgt,
        weight,
    }
}

fn req(key: &str, gen: ValueGen) -> PropDef {
    PropDef::req(key, gen)
}
fn opt(key: &str, gen: ValueGen, presence: f64) -> PropDef {
    PropDef::opt(key, gen, presence)
}

// ---------------------------------------------------------------------------
// POLE — 11 node types / 17 edge types, fully labeled, flat structure.
// ---------------------------------------------------------------------------

fn pole() -> DatasetSpec {
    let nodes = vec![
        node(
            "Person",
            &["Person"],
            vec![
                req("name", ValueGen::Name(400)),
                req("surname", ValueGen::Name(300)),
                opt("nhs_no", ValueGen::Name(1000), 0.8),
            ],
            5.0,
        ),
        node(
            "Officer",
            &["Officer"],
            vec![
                req("name", ValueGen::Name(100)),
                req("rank", ValueGen::Name(8)),
                req("badge_no", ValueGen::Int(1000, 9999)),
            ],
            1.0,
        ),
        node(
            "Crime",
            &["Crime"],
            vec![
                req("date", ValueGen::Date),
                req("type", ValueGen::Name(12)),
                opt("last_outcome", ValueGen::Name(10), 0.7),
                opt("note", ValueGen::Text, 0.2),
            ],
            4.0,
        ),
        node(
            "Location",
            &["Location"],
            vec![
                req("address", ValueGen::Text),
                req("latitude", ValueGen::Float(90.0)),
                req("longitude", ValueGen::Float(180.0)),
            ],
            3.0,
        ),
        node(
            "Object",
            &["Object"],
            vec![
                req("description", ValueGen::Text),
                req("type", ValueGen::Name(15)),
            ],
            1.0,
        ),
        node(
            "Vehicle",
            &["Vehicle"],
            vec![
                req("make", ValueGen::Name(30)),
                req("model", ValueGen::Name(60)),
                req("year", ValueGen::Int(1990, 2025)),
                req("reg", ValueGen::Name(2000)),
            ],
            1.0,
        ),
        node(
            "Area",
            &["Area"],
            vec![req("areaCode", ValueGen::Name(50))],
            0.3,
        ),
        node(
            "PostCode",
            &["PostCode"],
            vec![req("code", ValueGen::Name(600))],
            1.5,
        ),
        node(
            "Phone",
            &["Phone"],
            vec![req("phoneNo", ValueGen::Name(3000))],
            2.0,
        ),
        node(
            "Email",
            &["Email"],
            vec![req("email_address", ValueGen::Name(3000))],
            1.5,
        ),
        node(
            "PhoneCall",
            &["PhoneCall"],
            vec![
                req("call_date", ValueGen::Date),
                req("call_time", ValueGen::Name(1440)),
                req("call_duration", ValueGen::Int(1, 7200)),
                req("call_type", ValueGen::Name(2)),
            ],
            3.0,
        ),
    ];
    let (person, officer, crime, location, object, vehicle, area, postcode, phone, email, call) =
        (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
    let edges = vec![
        edge("KNOWS", "KNOWS", person, person, vec![], 4.0),
        edge("KNOWS_LW", "KNOWS_LW", person, person, vec![], 1.0),
        edge("KNOWS_SN", "KNOWS_SN", person, person, vec![], 1.0),
        edge("KNOWS_PHONE", "KNOWS_PHONE", person, person, vec![], 1.0),
        edge(
            "FAMILY_REL",
            "FAMILY_REL",
            person,
            person,
            vec![req("rel_type", ValueGen::Name(8))],
            1.0,
        ),
        edge("PARTY_TO", "PARTY_TO", person, crime, vec![], 3.0),
        edge(
            "INVESTIGATED_BY",
            "INVESTIGATED_BY",
            crime,
            officer,
            vec![],
            3.0,
        ),
        edge("OCCURRED_AT", "OCCURRED_AT", crime, location, vec![], 3.0),
        edge(
            "CURRENT_ADDRESS",
            "CURRENT_ADDRESS",
            person,
            location,
            vec![],
            2.0,
        ),
        edge("HAS_PHONE", "HAS_PHONE", person, phone, vec![], 1.5),
        edge("HAS_EMAIL", "HAS_EMAIL", person, email, vec![], 1.0),
        edge("CALLER", "CALLER", call, phone, vec![], 2.0),
        edge("CALLED", "CALLED", call, phone, vec![], 2.0),
        edge("INVOLVED_IN", "INVOLVED_IN", object, crime, vec![], 1.0),
        edge("VEHICLE_IN", "INVOLVED_IN", vehicle, crime, vec![], 0.5),
        edge(
            "HAS_POSTCODE",
            "HAS_POSTCODE",
            location,
            postcode,
            vec![],
            1.5,
        ),
        edge(
            "POSTCODE_IN_AREA",
            "POSTCODE_IN_AREA",
            postcode,
            area,
            vec![],
            1.0,
        ),
    ];
    DatasetSpec {
        name: "POLE".into(),
        nodes,
        edges,
    }
}

// ---------------------------------------------------------------------------
// MB6 / FIB25 — connectomes: 4 node types with multi-label neurons, 5 edge
// types over 3 edge labels. `pattern_variance` tunes how many optional
// neuron properties fluctuate (FIB25 has fewer patterns than MB6 per node,
// the paper counts 52 vs 31 over very different node counts).
// ---------------------------------------------------------------------------

fn connectome(name: &str, ds_label: &str, pattern_variance: f64) -> DatasetSpec {
    let p = pattern_variance;
    let nodes = vec![
        node(
            "Neuron",
            &[ds_label, "Neuron", "Segment"],
            vec![
                req("bodyId", ValueGen::Int(1, 10_000_000)),
                opt("name", ValueGen::Name(500), 0.9),
                opt("status", ValueGen::Name(4), 0.8),
                opt("statusLabel", ValueGen::Name(6), p),
                opt("instance", ValueGen::Name(300), p),
                opt("type", ValueGen::Name(60), p),
                opt("cropped", ValueGen::Bool, p * 0.6),
                opt("somaLocation", ValueGen::Text, p * 0.5),
                opt("somaRadius", ValueGen::Float(500.0), p * 0.5),
                req("pre", ValueGen::Int(0, 5000)),
                req("post", ValueGen::Int(0, 5000)),
            ],
            1.0,
        ),
        node(
            "Segment",
            &[ds_label, "Segment"],
            vec![
                req("bodyId", ValueGen::Int(1, 10_000_000)),
                opt("size", ValueGen::Int(1, 1_000_000), 0.9),
            ],
            4.0,
        ),
        node(
            "SynapseSet",
            &[ds_label, "SynapseSet"],
            vec![req("datasetBodyIds", ValueGen::Name(5000))],
            2.0,
        ),
        node(
            "Synapse",
            &[ds_label, "Synapse"],
            vec![
                req("location", ValueGen::Text),
                req("confidence", ValueGen::Float(1.0)),
                req("type", ValueGen::Name(2)),
            ],
            5.0,
        ),
    ];
    let (neuron, segment, synset, synapse) = (0, 1, 2, 3);
    let edges = vec![
        edge(
            "ConnectsTo_NN",
            "ConnectsTo",
            neuron,
            neuron,
            vec![req("weight", ValueGen::Int(1, 300))],
            3.0,
        ),
        edge(
            "ConnectsTo_SS",
            "ConnectsTo",
            segment,
            segment,
            vec![req("weight", ValueGen::Int(1, 50))],
            2.0,
        ),
        edge("Contains_NSS", "Contains", neuron, synset, vec![], 2.0),
        edge("Contains_SSS", "Contains", synset, synapse, vec![], 3.0),
        edge("SynapsesTo", "SynapsesTo", synapse, synapse, vec![], 3.0),
    ];
    DatasetSpec {
        name: name.into(),
        nodes,
        edges,
    }
}

// ---------------------------------------------------------------------------
// HET.IO — 11 biomedical node types, each ALSO carrying the dataset-wide
// `HetionetNode` label (the paper calls this multi-labeling scenario out
// explicitly); 24 edge types.
// ---------------------------------------------------------------------------

fn hetio() -> DatasetSpec {
    let kinds: [(&str, f64); 11] = [
        ("Gene", 6.0),
        ("Disease", 0.5),
        ("Compound", 1.0),
        ("Anatomy", 0.5),
        ("BiologicalProcess", 4.0),
        ("CellularComponent", 0.5),
        ("MolecularFunction", 1.0),
        ("Pathway", 0.7),
        ("PharmacologicClass", 0.2),
        ("SideEffect", 2.0),
        ("Symptom", 0.2),
    ];
    let nodes: Vec<NodeDef> = kinds
        .iter()
        .map(|(k, w)| {
            node(
                k,
                &[k, "HetionetNode"],
                vec![
                    req("identifier", ValueGen::Name(20_000)),
                    req("name", ValueGen::Name(10_000)),
                    opt("source", ValueGen::Name(12), 0.85),
                    opt("url", ValueGen::Text, 0.6),
                ],
                *w,
            )
        })
        .collect();
    let (gene, disease, compound, anatomy, bp, cc, mf, pathway, pc, se, symptom) =
        (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
    let edges = vec![
        edge(
            "BINDS_CbG",
            "BINDS_CbG",
            compound,
            gene,
            vec![opt("affinity", ValueGen::Float(10.0), 0.4)],
            1.5,
        ),
        edge("TREATS_CtD", "TREATS_CtD", compound, disease, vec![], 0.5),
        edge(
            "PALLIATES_CpD",
            "PALLIATES_CpD",
            compound,
            disease,
            vec![],
            0.3,
        ),
        edge(
            "RESEMBLES_CrC",
            "RESEMBLES_CrC",
            compound,
            compound,
            vec![req("similarity", ValueGen::Float(1.0))],
            0.5,
        ),
        edge("CAUSES_CcSE", "CAUSES_CcSE", compound, se, vec![], 2.0),
        edge(
            "UPREGULATES_CuG",
            "UPREGULATES_CuG",
            compound,
            gene,
            vec![req("z_score", ValueGen::Float(10.0))],
            1.0,
        ),
        edge(
            "DOWNREGULATES_CdG",
            "DOWNREGULATES_CdG",
            compound,
            gene,
            vec![req("z_score", ValueGen::Float(10.0))],
            1.0,
        ),
        edge("INCLUDES_PCiC", "INCLUDES_PCiC", pc, compound, vec![], 0.2),
        edge(
            "ASSOCIATES_DaG",
            "ASSOCIATES_DaG",
            disease,
            gene,
            vec![],
            1.5,
        ),
        edge(
            "UPREGULATES_DuG",
            "UPREGULATES_DuG",
            disease,
            gene,
            vec![],
            0.8,
        ),
        edge(
            "DOWNREGULATES_DdG",
            "DOWNREGULATES_DdG",
            disease,
            gene,
            vec![],
            0.8,
        ),
        edge(
            "LOCALIZES_DlA",
            "LOCALIZES_DlA",
            disease,
            anatomy,
            vec![],
            0.8,
        ),
        edge(
            "PRESENTS_DpS",
            "PRESENTS_DpS",
            disease,
            symptom,
            vec![],
            0.6,
        ),
        edge(
            "RESEMBLES_DrD",
            "RESEMBLES_DrD",
            disease,
            disease,
            vec![],
            0.1,
        ),
        edge("EXPRESSES_AeG", "EXPRESSES_AeG", anatomy, gene, vec![], 5.0),
        edge(
            "UPREGULATES_AuG",
            "UPREGULATES_AuG",
            anatomy,
            gene,
            vec![],
            2.0,
        ),
        edge(
            "DOWNREGULATES_AdG",
            "DOWNREGULATES_AdG",
            anatomy,
            gene,
            vec![],
            2.0,
        ),
        edge("INTERACTS_GiG", "INTERACTS_GiG", gene, gene, vec![], 2.0),
        edge(
            "COVARIES_GcG",
            "COVARIES_GcG",
            gene,
            gene,
            vec![req("correlation", ValueGen::Float(1.0))],
            1.0,
        ),
        edge("REGULATES_GrG", "REGULATES_GrG", gene, gene, vec![], 2.0),
        edge(
            "PARTICIPATES_GpBP",
            "PARTICIPATES_GpBP",
            gene,
            bp,
            vec![],
            3.0,
        ),
        edge(
            "PARTICIPATES_GpCC",
            "PARTICIPATES_GpCC",
            gene,
            cc,
            vec![],
            1.0,
        ),
        edge(
            "PARTICIPATES_GpMF",
            "PARTICIPATES_GpMF",
            gene,
            mf,
            vec![],
            1.0,
        ),
        edge(
            "PARTICIPATES_GpPW",
            "PARTICIPATES_GpPW",
            gene,
            pathway,
            vec![],
            1.0,
        ),
    ];
    DatasetSpec {
        name: "HET.IO".into(),
        nodes,
        edges,
    }
}

// ---------------------------------------------------------------------------
// ICIJ — 5 node types / 14 edge types, integration-grade heterogeneity:
// many low-presence optional properties ⇒ hundreds of node patterns.
// ---------------------------------------------------------------------------

fn icij() -> DatasetSpec {
    let entity_props = vec![
        req("name", ValueGen::Name(50_000)),
        opt("jurisdiction", ValueGen::Name(40), 0.7),
        opt("jurisdiction_description", ValueGen::Text, 0.5),
        opt("incorporation_date", ValueGen::MixedDateStr(0.03), 0.6),
        opt("inactivation_date", ValueGen::MixedDateStr(0.05), 0.3),
        opt("struck_off_date", ValueGen::Date, 0.25),
        opt("service_provider", ValueGen::Name(20), 0.5),
        opt("country_codes", ValueGen::Name(200), 0.6),
        opt("status", ValueGen::Name(15), 0.5),
        opt("company_type", ValueGen::Name(25), 0.3),
        opt("note", ValueGen::Text, 0.1),
        req("sourceID", ValueGen::Name(6)),
        opt("valid_until", ValueGen::Text, 0.4),
    ];
    let nodes = vec![
        node("Entity", &["Entity"], entity_props, 4.0),
        node(
            "Officer",
            &["Officer"],
            vec![
                req("name", ValueGen::Name(80_000)),
                opt("country_codes", ValueGen::Name(200), 0.5),
                req("sourceID", ValueGen::Name(6)),
                opt("valid_until", ValueGen::Text, 0.4),
            ],
            4.0,
        ),
        node(
            "Intermediary",
            &["Intermediary"],
            vec![
                req("name", ValueGen::Name(10_000)),
                opt("country_codes", ValueGen::Name(200), 0.6),
                opt("status", ValueGen::Name(10), 0.4),
                req("sourceID", ValueGen::Name(6)),
            ],
            1.0,
        ),
        node(
            "Address",
            &["Address"],
            vec![
                req("address", ValueGen::Text),
                opt("country_codes", ValueGen::Name(200), 0.7),
                req("sourceID", ValueGen::Name(6)),
            ],
            3.0,
        ),
        node(
            "Other",
            &["Other"],
            vec![
                req("name", ValueGen::Name(5_000)),
                opt("note", ValueGen::Text, 0.2),
                req("sourceID", ValueGen::Name(6)),
            ],
            0.5,
        ),
    ];
    let (entity, officer, intermediary, address, other) = (0, 1, 2, 3, 4);
    let edges = vec![
        edge(
            "officer_of",
            "officer_of",
            officer,
            entity,
            vec![
                opt("link", ValueGen::Name(30), 0.8),
                opt("start_date", ValueGen::MixedDateStr(0.04), 0.3),
                opt("end_date", ValueGen::MixedDateStr(0.04), 0.2),
            ],
            5.0,
        ),
        edge(
            "intermediary_of",
            "intermediary_of",
            intermediary,
            entity,
            vec![],
            2.0,
        ),
        edge(
            "registered_address_E",
            "registered_address",
            entity,
            address,
            vec![],
            3.0,
        ),
        edge(
            "registered_address_O",
            "registered_address",
            officer,
            address,
            vec![],
            2.0,
        ),
        edge("connected_to", "connected_to", entity, entity, vec![], 0.5),
        edge("similar", "similar", entity, entity, vec![], 0.3),
        edge(
            "same_name_as_E",
            "same_name_as",
            entity,
            entity,
            vec![],
            0.4,
        ),
        edge(
            "same_name_as_O",
            "same_name_as",
            officer,
            officer,
            vec![],
            0.4,
        ),
        edge("same_id_as", "same_id_as", entity, entity, vec![], 0.2),
        edge(
            "probably_same_officer_as",
            "probably_same_officer_as",
            officer,
            officer,
            vec![],
            0.4,
        ),
        edge(
            "same_company_as",
            "same_company_as",
            entity,
            entity,
            vec![],
            0.3,
        ),
        edge(
            "same_intermediary_as",
            "same_intermediary_as",
            intermediary,
            intermediary,
            vec![],
            0.2,
        ),
        edge("underlying", "underlying", other, entity, vec![], 0.2),
        edge("alias", "alias", officer, officer, vec![], 0.3),
    ];
    DatasetSpec {
        name: "ICIJ".into(),
        nodes,
        edges,
    }
}

// ---------------------------------------------------------------------------
// LDBC — social network benchmark: 7 node types, Message super-label on
// Post and Comment; 17 edge types over fewer labels.
// ---------------------------------------------------------------------------

fn ldbc() -> DatasetSpec {
    let nodes = vec![
        node(
            "Person",
            &["Person"],
            vec![
                req("firstName", ValueGen::Name(2000)),
                req("lastName", ValueGen::Name(4000)),
                req("gender", ValueGen::Name(2)),
                req("birthday", ValueGen::Date),
                req("creationDate", ValueGen::DateTime),
                req("locationIP", ValueGen::Name(50_000)),
                req("browserUsed", ValueGen::Name(5)),
            ],
            1.0,
        ),
        node(
            "Post",
            &["Message", "Post"],
            vec![
                req("creationDate", ValueGen::DateTime),
                opt("content", ValueGen::Text, 0.7),
                opt("imageFile", ValueGen::Name(100_000), 0.3),
                req("locationIP", ValueGen::Name(50_000)),
                req("browserUsed", ValueGen::Name(5)),
                req("length", ValueGen::Int(0, 2000)),
            ],
            6.0,
        ),
        node(
            "Comment",
            &["Comment", "Message"],
            vec![
                req("creationDate", ValueGen::DateTime),
                req("content", ValueGen::Text),
                req("locationIP", ValueGen::Name(50_000)),
                req("browserUsed", ValueGen::Name(5)),
                req("length", ValueGen::Int(0, 2000)),
            ],
            8.0,
        ),
        node(
            "Forum",
            &["Forum"],
            vec![
                req("title", ValueGen::Text),
                req("creationDate", ValueGen::DateTime),
            ],
            1.0,
        ),
        node(
            "Organisation",
            &["Organisation"],
            vec![
                req("name", ValueGen::Name(8000)),
                req("type", ValueGen::Name(2)),
                req("url", ValueGen::Text),
            ],
            0.5,
        ),
        node(
            "Place",
            &["Place"],
            vec![
                req("name", ValueGen::Name(1500)),
                req("type", ValueGen::Name(3)),
                req("url", ValueGen::Text),
            ],
            0.3,
        ),
        node(
            "Tag",
            &["Tag"],
            vec![
                req("name", ValueGen::Name(16_000)),
                req("url", ValueGen::Text),
            ],
            1.0,
        ),
    ];
    let (person, post, comment, forum, org, place, tag) = (0, 1, 2, 3, 4, 5, 6);
    let edges = vec![
        edge(
            "KNOWS",
            "KNOWS",
            person,
            person,
            vec![req("creationDate", ValueGen::DateTime)],
            3.0,
        ),
        edge("HAS_INTEREST", "HAS_INTEREST", person, tag, vec![], 1.5),
        edge(
            "LIKES_Post",
            "LIKES",
            person,
            post,
            vec![req("creationDate", ValueGen::DateTime)],
            2.0,
        ),
        edge(
            "LIKES_Comment",
            "LIKES",
            person,
            comment,
            vec![req("creationDate", ValueGen::DateTime)],
            2.0,
        ),
        edge("HAS_CREATOR_Post", "HAS_CREATOR", post, person, vec![], 3.0),
        edge(
            "HAS_CREATOR_Comment",
            "HAS_CREATOR",
            comment,
            person,
            vec![],
            3.0,
        ),
        edge("REPLY_OF_Post", "REPLY_OF", comment, post, vec![], 2.0),
        edge(
            "REPLY_OF_Comment",
            "REPLY_OF",
            comment,
            comment,
            vec![],
            2.0,
        ),
        edge("CONTAINER_OF", "CONTAINER_OF", forum, post, vec![], 2.0),
        edge(
            "HAS_MEMBER",
            "HAS_MEMBER",
            forum,
            person,
            vec![req("joinDate", ValueGen::DateTime)],
            2.5,
        ),
        edge("HAS_MODERATOR", "HAS_MODERATOR", forum, person, vec![], 0.5),
        edge(
            "IS_LOCATED_IN_Person",
            "IS_LOCATED_IN",
            person,
            place,
            vec![],
            1.0,
        ),
        edge(
            "IS_LOCATED_IN_Org",
            "IS_LOCATED_IN",
            org,
            place,
            vec![],
            0.5,
        ),
        edge(
            "WORK_AT",
            "WORK_AT",
            person,
            org,
            vec![req("workFrom", ValueGen::Int(1990, 2025))],
            0.8,
        ),
        edge(
            "STUDY_AT",
            "STUDY_AT",
            person,
            org,
            vec![req("classYear", ValueGen::Int(1990, 2025))],
            0.8,
        ),
        edge("HAS_TAG_Post", "HAS_TAG", post, tag, vec![], 2.0),
        edge("HAS_TAG_Forum", "HAS_TAG", forum, tag, vec![], 1.0),
    ];
    DatasetSpec {
        name: "LDBC".into(),
        nodes,
        edges,
    }
}

// ---------------------------------------------------------------------------
// CORD19 — 16 flat node types / 16 edge types (genotype + disease +
// bibliography integration); dirty date columns for Fig. 8.
// ---------------------------------------------------------------------------

fn cord19() -> DatasetSpec {
    let nodes = vec![
        node(
            "Paper",
            &["Paper"],
            vec![
                req("cord_uid", ValueGen::Name(100_000)),
                req("title", ValueGen::Text),
                opt("publish_time", ValueGen::MixedDateStr(0.06), 0.9),
                opt("doi", ValueGen::Name(100_000), 0.8),
                opt("journal", ValueGen::Name(4000), 0.7),
            ],
            4.0,
        ),
        node(
            "Author",
            &["Author"],
            vec![
                req("first", ValueGen::Name(8000)),
                req("last", ValueGen::Name(20_000)),
                opt("email", ValueGen::Name(40_000), 0.2),
            ],
            8.0,
        ),
        node(
            "Affiliation",
            &["Affiliation"],
            vec![
                req("institution", ValueGen::Name(6000)),
                opt("laboratory", ValueGen::Name(3000), 0.3),
            ],
            2.0,
        ),
        node(
            "Abstract",
            &["Abstract"],
            vec![req("text", ValueGen::Text)],
            3.5,
        ),
        node(
            "BodyText",
            &["BodyText"],
            vec![
                req("text", ValueGen::Text),
                req("section", ValueGen::Name(30)),
            ],
            6.0,
        ),
        node(
            "Reference",
            &["Reference"],
            vec![
                req("title", ValueGen::Text),
                opt("year", ValueGen::MixedIntStr(0.04), 0.8),
            ],
            6.0,
        ),
        node(
            "Journal",
            &["Journal"],
            vec![req("name", ValueGen::Name(4000))],
            0.4,
        ),
        node(
            "Gene",
            &["Gene"],
            vec![
                req("sid", ValueGen::Name(30_000)),
                req("taxid", ValueGen::Int(1, 100_000)),
            ],
            3.0,
        ),
        node(
            "Protein",
            &["Protein"],
            vec![
                req("sid", ValueGen::Name(30_000)),
                opt("name", ValueGen::Name(20_000), 0.8),
            ],
            2.0,
        ),
        node(
            "Disease",
            &["Disease"],
            vec![
                req("doid", ValueGen::Name(8000)),
                req("name", ValueGen::Name(8000)),
                opt("definition", ValueGen::Text, 0.7),
            ],
            0.5,
        ),
        node(
            "Pathway",
            &["Pathway"],
            vec![
                req("sid", ValueGen::Name(2500)),
                req("name", ValueGen::Name(2500)),
            ],
            0.4,
        ),
        node(
            "GeneSymbol",
            &["GeneSymbol"],
            vec![req("symbol", ValueGen::Name(25_000))],
            2.0,
        ),
        node(
            "Transcript",
            &["Transcript"],
            vec![req("sid", ValueGen::Name(30_000))],
            2.0,
        ),
        node(
            "ClinicalTrial",
            &["ClinicalTrial"],
            vec![
                req("nct_id", ValueGen::Name(5000)),
                opt("phase", ValueGen::Name(5), 0.6),
            ],
            0.3,
        ),
        node(
            "Patent",
            &["Patent"],
            vec![
                req("number", ValueGen::Name(8000)),
                opt("filed", ValueGen::MixedDateStr(0.08), 0.7),
            ],
            0.3,
        ),
        node(
            "Fraction",
            &["Fraction"],
            vec![req("value", ValueGen::Float(1.0))],
            0.6,
        ),
    ];
    let (
        paper,
        author,
        affiliation,
        abstr,
        body,
        reference,
        journal,
        gene,
        protein,
        disease,
        pathway,
        genesym,
        transcript,
        trial,
        patent,
        fraction,
    ) = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    let edges = vec![
        edge(
            "PAPER_HAS_ABSTRACT",
            "PAPER_HAS_ABSTRACT",
            paper,
            abstr,
            vec![],
            2.0,
        ),
        edge(
            "PAPER_HAS_BODYTEXT",
            "PAPER_HAS_BODYTEXT",
            paper,
            body,
            vec![req("position", ValueGen::Int(0, 200))],
            3.0,
        ),
        edge(
            "PAPER_HAS_REFERENCE",
            "PAPER_HAS_REFERENCE",
            paper,
            reference,
            vec![],
            3.0,
        ),
        edge(
            "PAPER_HAS_AUTHOR",
            "PAPER_HAS_AUTHOR",
            paper,
            author,
            vec![req("position", ValueGen::Int(0, 30))],
            4.0,
        ),
        edge(
            "AUTHOR_HAS_AFFILIATION",
            "AUTHOR_HAS_AFFILIATION",
            author,
            affiliation,
            vec![],
            2.0,
        ),
        edge(
            "PAPER_PUBLISHED_IN",
            "PAPER_PUBLISHED_IN",
            paper,
            journal,
            vec![],
            1.5,
        ),
        edge(
            "PAPER_MENTIONS_GENE",
            "MENTIONS",
            paper,
            gene,
            vec![req("count", ValueGen::Int(1, 50))],
            1.5,
        ),
        edge(
            "PAPER_MENTIONS_DISEASE",
            "MENTIONS",
            paper,
            disease,
            vec![req("count", ValueGen::Int(1, 50))],
            1.0,
        ),
        edge(
            "PAPER_MENTIONS_PROTEIN",
            "MENTIONS",
            paper,
            protein,
            vec![req("count", ValueGen::Int(1, 50))],
            1.0,
        ),
        edge("GENE_CODES_PROTEIN", "CODES", gene, protein, vec![], 1.0),
        edge("GENE_HAS_SYMBOL", "HAS_SYMBOL", gene, genesym, vec![], 1.5),
        edge(
            "GENE_HAS_TRANSCRIPT",
            "HAS_TRANSCRIPT",
            gene,
            transcript,
            vec![],
            1.5,
        ),
        edge(
            "PROTEIN_IN_PATHWAY",
            "IN_PATHWAY",
            protein,
            pathway,
            vec![],
            0.8,
        ),
        edge(
            "DISEASE_TRIAL",
            "INVESTIGATED_IN",
            disease,
            trial,
            vec![],
            0.3,
        ),
        edge("PATENT_ABOUT_GENE", "ABOUT", patent, gene, vec![], 0.3),
        edge(
            "FRACTION_OF_BODY",
            "FRACTION_OF",
            fraction,
            body,
            vec![],
            0.5,
        ),
    ];
    DatasetSpec {
        name: "CORD19".into(),
        nodes,
        edges,
    }
}

// ---------------------------------------------------------------------------
// IYP — Internet Yellow Pages: the most heterogeneous dataset (86 node
// types over 33 labels in the paper). Types are multi-label combinations
// generated programmatically over a label pool, with wildly varying
// optional properties; 25 edge types.
// ---------------------------------------------------------------------------

fn iyp() -> DatasetSpec {
    const LABELS: [&str; 33] = [
        "AS",
        "Prefix",
        "IP",
        "DomainName",
        "HostName",
        "ASN",
        "Country",
        "IXP",
        "Facility",
        "Organization",
        "BGPCollector",
        "AtlasProbe",
        "AtlasMeasurement",
        "Ranking",
        "Tag",
        "OpaqueID",
        "Name",
        "PeeringLAN",
        "CaidaIXID",
        "PeeringdbOrgID",
        "PeeringdbIXID",
        "PeeringdbFacID",
        "PeeringdbNetID",
        "URL",
        "AuthoritativeNameServer",
        "Resolver",
        "Estimate",
        "GeoPrefix",
        "RPKIPrefix",
        "RIRPrefix",
        "RDNSPrefix",
        "QueriedDomain",
        "RankedDomain",
    ];
    // Multi-label combos: base label alone, plus combos with Tag-ish labels.
    let mut nodes = Vec::new();
    let combos: [(usize, &[usize]); 24] = [
        (0, &[5]),  // AS + ASN
        (1, &[27]), // Prefix + GeoPrefix
        (1, &[28]), // Prefix + RPKIPrefix
        (1, &[29]), // Prefix + RIRPrefix
        (1, &[30]), // Prefix + RDNSPrefix
        (2, &[]),   // IP
        (3, &[31]), // DomainName + QueriedDomain
        (3, &[32]), // DomainName + RankedDomain
        (4, &[]),   // HostName
        (6, &[]),   // Country
        (7, &[17]), // IXP + PeeringLAN
        (8, &[]),   // Facility
        (9, &[]),   // Organization
        (10, &[]),  // BGPCollector
        (11, &[]),  // AtlasProbe
        (12, &[]),  // AtlasMeasurement
        (13, &[]),  // Ranking
        (14, &[]),  // Tag
        (15, &[]),  // OpaqueID
        (16, &[]),  // Name
        (23, &[]),  // URL
        (24, &[]),  // AuthoritativeNameServer
        (25, &[]),  // Resolver
        (26, &[]),  // Estimate
    ];
    for (i, (base, extras)) in combos.iter().enumerate() {
        let mut labels: Vec<&str> = vec![LABELS[*base]];
        labels.extend(extras.iter().map(|&e| LABELS[e]));
        // Heterogeneous properties: amount and presence vary per type.
        let mut props = vec![req("id", ValueGen::Int(0, 10_000_000))];
        if i % 2 == 0 {
            props.push(opt("name", ValueGen::Name(50_000), 0.8));
        }
        if i % 3 == 0 {
            props.push(opt("country", ValueGen::Name(250), 0.6));
        }
        if i % 4 == 0 {
            props.push(opt("af", ValueGen::Int(4, 6), 0.5));
            props.push(opt("reference_time", ValueGen::MixedDateStr(0.05), 0.5));
        }
        if i % 5 == 0 {
            props.push(opt("value", ValueGen::MixedIntStr(0.04), 0.6));
        }
        if i % 6 == 0 {
            props.push(opt("descr", ValueGen::Text, 0.3));
        }
        let weight = 1.0 + (i % 7) as f64;
        nodes.push(node(
            &format!("IYP_{}", labels.join("_")),
            &labels,
            props,
            weight,
        ));
    }
    let edges_spec: [(&str, usize, usize, f64); 25] = [
        ("ORIGINATE", 0, 1, 5.0),
        ("DEPENDS_ON", 0, 0, 3.0),
        ("PEERS_WITH", 0, 0, 5.0),
        ("MEMBER_OF_IXP", 0, 10, 1.0),
        ("LOCATED_IN_FAC", 0, 11, 1.0),
        ("MANAGED_BY_ORG", 0, 12, 1.5),
        ("COUNTRY_AS", 0, 9, 1.5),
        ("COUNTRY_IXP", 10, 9, 0.3),
        ("COUNTRY_FAC", 11, 9, 0.3),
        ("PART_OF", 2, 1, 4.0),
        ("RESOLVES_TO", 6, 2, 3.0),
        ("ALIAS_OF", 8, 6, 1.0),
        ("QUERIED_FROM", 6, 0, 1.5),
        ("RANK", 0, 16, 2.0),
        ("RANK_DOMAIN", 7, 16, 1.0),
        ("CATEGORIZED", 0, 17, 2.0),
        ("CATEGORIZED_PREFIX", 1, 17, 1.0),
        ("EXTERNAL_ID", 0, 18, 1.0),
        ("NAME_AS", 0, 19, 2.0),
        ("WEBSITE", 12, 20, 0.5),
        ("AUTH_NS", 6, 21, 1.0),
        ("RESOLVER_OF", 22, 6, 0.8),
        ("POPULATION", 0, 23, 0.8),
        ("TARGET_PROBE", 14, 0, 0.7),
        ("PART_OF_MEASUREMENT", 14, 15, 0.5),
    ];
    let edges: Vec<EdgeDef> = edges_spec
        .iter()
        .map(|(label, s, t, w)| {
            let mut props = vec![];
            if *w > 2.0 {
                props.push(opt("reference_org", ValueGen::Name(30), 0.7));
                props.push(opt("reference_time", ValueGen::MixedDateStr(0.05), 0.6));
            }
            edge(label, label, *s, *t, props, *w)
        })
        .collect();
    DatasetSpec {
        name: "IYP".into(),
        nodes,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::GraphStats;

    #[test]
    fn all_eight_datasets_generate() {
        for id in DatasetId::ALL {
            let d = id.generate(0.05, 42);
            assert!(d.graph.node_count() > 0, "{}", id.name());
            assert_eq!(d.truth.node_types.len(), d.graph.node_count());
            assert_eq!(d.truth.edge_types.len(), d.graph.edge_count());
        }
    }

    #[test]
    fn pole_profile_matches_table2() {
        let d = DatasetId::Pole.generate(0.2, 1);
        let s = GraphStats::compute(&d.graph);
        assert_eq!(s.node_labels, 11);
        assert_eq!(s.edge_labels, 16, "17 edge types over 16 labels");
        assert_eq!(d.truth.node_type_names.len(), 11);
        assert_eq!(d.truth.edge_type_names.len(), 17);
    }

    #[test]
    fn connectomes_are_multilabel() {
        let d = DatasetId::Mb6.generate(0.05, 2);
        let s = GraphStats::compute(&d.graph);
        assert_eq!(d.truth.node_type_names.len(), 4);
        assert_eq!(d.truth.edge_type_names.len(), 5);
        assert_eq!(s.edge_labels, 3, "5 edge types over 3 labels");
        // Every node carries the dataset label plus its type label(s).
        assert!(d.graph.nodes().all(|(_, n)| n.labels.len() >= 2));
        // MB6 has more node patterns than types.
        assert!(s.node_patterns > 4, "patterns = {}", s.node_patterns);
    }

    #[test]
    fn hetio_has_dataset_wide_extra_label() {
        let d = DatasetId::Hetio.generate(0.1, 3);
        let het = d.graph.labels().get("HetionetNode").unwrap();
        assert!(d.graph.nodes().all(|(_, n)| n.labels.contains(&het)));
        let s = GraphStats::compute(&d.graph);
        assert_eq!(s.node_labels, 12, "11 type labels + HetionetNode");
        assert_eq!(d.truth.edge_type_names.len(), 24);
    }

    #[test]
    fn icij_is_pattern_heavy() {
        let d = DatasetId::Icij.generate(0.25, 4);
        let s = GraphStats::compute(&d.graph);
        assert_eq!(d.truth.node_type_names.len(), 5);
        assert!(
            s.node_patterns > 100,
            "ICIJ should have hundreds of node patterns, got {}",
            s.node_patterns
        );
        assert_eq!(d.truth.edge_type_names.len(), 14);
    }

    #[test]
    fn ldbc_message_superlabel() {
        let d = DatasetId::Ldbc.generate(0.05, 5);
        let s = GraphStats::compute(&d.graph);
        assert_eq!(d.truth.node_type_names.len(), 7);
        assert_eq!(s.node_labels, 8, "7 types over 8 labels (Message)");
        assert_eq!(d.truth.edge_type_names.len(), 17);
    }

    #[test]
    fn cord19_flat_sixteen_types() {
        let d = DatasetId::Cord19.generate(0.05, 6);
        assert_eq!(d.truth.node_type_names.len(), 16);
        assert_eq!(d.truth.edge_type_names.len(), 16);
        let s = GraphStats::compute(&d.graph);
        assert_eq!(s.node_labels, 16);
    }

    #[test]
    fn iyp_is_most_heterogeneous() {
        let d = DatasetId::Iyp.generate(0.05, 7);
        let s = GraphStats::compute(&d.graph);
        assert_eq!(d.truth.node_type_names.len(), 24);
        assert_eq!(d.truth.edge_type_names.len(), 25);
        assert!(s.node_labels >= 24, "labels = {}", s.node_labels);
        assert!(s.node_patterns > 50, "patterns = {}", s.node_patterns);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset_by_name("pole"), Some(DatasetId::Pole));
        assert_eq!(dataset_by_name("HET.IO"), Some(DatasetId::Hetio));
        assert_eq!(dataset_by_name("hetio"), Some(DatasetId::Hetio));
        assert_eq!(dataset_by_name("nope"), None);
    }

    #[test]
    fn scale_changes_size_proportionally() {
        let small = DatasetId::Pole.generate(0.05, 1);
        let large = DatasetId::Pole.generate(0.2, 1);
        assert!(large.graph.node_count() > 3 * small.graph.node_count());
    }
}
