//! # pg-hive-datasets
//!
//! Synthetic property-graph generators mirroring the eight evaluation
//! datasets of the PG-HIVE paper (Table 2), plus the §5 noise injector.
//!
//! The paper's datasets (POLE, MB6, HET.IO, FIB25, ICIJ, LDBC, CORD19, IYP)
//! are public Neo4j dumps up to 44.5M nodes. Schema-discovery *quality*
//! depends on the type/label/pattern structure — how many types, how many
//! labels per element, how much property-set variance within a type — not on
//! raw instance counts, so each generator reproduces its dataset's
//! structural profile at a configurable scale:
//!
//! - per-type label sets, including multi-label combinations (MB6/FIB25
//!   neurons, HET.IO's dataset-wide extra `HetionetNode` label),
//! - per-type property keys with presence probabilities calibrated so the
//!   pattern counts (Defs. 3.5/3.6) land in the right regime (e.g. ICIJ's
//!   hundreds of node patterns vs LDBC's nine),
//! - value generators per key, including "dirty" mixed-type columns that
//!   exercise the datatype sampling-error experiment (Fig. 8).
//!
//! [`noise::inject_noise`] implements the evaluation's degradation axes:
//! remove 0–40% of properties, keep labels on 100/50/0% of elements.

pub mod catalog;
pub mod export;
pub mod integration;
pub mod noise;
pub mod spec;
pub mod values;

pub use catalog::{all_datasets, dataset_by_name, DatasetId};
pub use export::{export_graph, ExportFormat};
pub use noise::{inject_noise, NoiseSpec};
pub use spec::{Dataset, DatasetSpec, EdgeDef, GroundTruth, NodeDef, PropDef};
pub use values::ValueGen;
