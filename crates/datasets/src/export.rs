//! Write generated datasets to disk in any of the ingestion formats the
//! streaming subsystem reads back (`.pgt`, CSV, JSON-Lines), so tests,
//! benches and the CI smoke job can round-trip graphs through files.

use pg_hive_graph::loader::save_text;
use pg_hive_graph::stream::csv::{save_edges_csv, save_nodes_csv, EDGES_FILE, NODES_FILE};
use pg_hive_graph::stream::jsonl::save_jsonl;
use pg_hive_graph::PropertyGraph;
use std::path::{Path, PathBuf};

/// On-disk format for [`export_graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// One `<stem>.pgt` file in the line-oriented text format.
    Pgt,
    /// A `<stem>/` directory holding `nodes.csv` + `edges.csv`.
    Csv,
    /// One `<stem>.jsonl` file, one node/edge object per line.
    Jsonl,
}

impl ExportFormat {
    /// All formats, for round-trip sweeps.
    pub const ALL: [ExportFormat; 3] = [ExportFormat::Pgt, ExportFormat::Csv, ExportFormat::Jsonl];

    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<ExportFormat> {
        match s {
            "pgt" => Some(ExportFormat::Pgt),
            "csv" => Some(ExportFormat::Csv),
            "jsonl" => Some(ExportFormat::Jsonl),
            _ => None,
        }
    }

    /// Name as accepted by `pg-hive --input-format`.
    pub fn name(self) -> &'static str {
        match self {
            ExportFormat::Pgt => "pgt",
            ExportFormat::Csv => "csv",
            ExportFormat::Jsonl => "jsonl",
        }
    }
}

/// Write `g` under `dir` with the given file stem. Returns the path the
/// `pg-hive` CLI should be pointed at (`--input-format` matching
/// [`ExportFormat::name`]): the file for pgt/jsonl, the dataset directory
/// for csv.
pub fn export_graph(
    g: &PropertyGraph,
    dir: &Path,
    stem: &str,
    format: ExportFormat,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    match format {
        ExportFormat::Pgt => {
            let path = dir.join(format!("{stem}.pgt"));
            std::fs::write(&path, save_text(g))?;
            Ok(path)
        }
        ExportFormat::Csv => {
            let subdir = dir.join(stem);
            std::fs::create_dir_all(&subdir)?;
            std::fs::write(subdir.join(NODES_FILE), save_nodes_csv(g))?;
            std::fs::write(subdir.join(EDGES_FILE), save_edges_csv(g))?;
            Ok(subdir)
        }
        ExportFormat::Jsonl => {
            let path = dir.join(format!("{stem}.jsonl"));
            std::fs::write(&path, save_jsonl(g))?;
            Ok(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DatasetId;
    use pg_hive_graph::stream::{csv::CsvSource, jsonl::JsonlSource, pgt::PgtSource, read_all};
    use pg_hive_graph::GraphStats;
    use std::fs::File;
    use std::io::BufReader;

    #[test]
    fn all_formats_round_trip_a_generated_dataset() {
        let d = DatasetId::Pole.generate(0.02, 7);
        let want = GraphStats::compute(&d.graph);
        let dir = std::env::temp_dir().join(format!("pg-hive-export-{}", std::process::id()));
        for format in ExportFormat::ALL {
            let path = export_graph(&d.graph, &dir, "pole", format).unwrap();
            let (back, warnings) = match format {
                ExportFormat::Pgt => {
                    read_all(PgtSource::new(BufReader::new(File::open(&path).unwrap()))).unwrap()
                }
                ExportFormat::Csv => read_all(CsvSource::open_dir(&path).unwrap()).unwrap(),
                ExportFormat::Jsonl => {
                    read_all(JsonlSource::new(BufReader::new(File::open(&path).unwrap()))).unwrap()
                }
            };
            assert!(warnings.is_empty(), "{format:?}: {warnings:?}");
            let got = GraphStats::compute(&back);
            assert_eq!(got, want, "{format:?} round-trip changed the structure");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
