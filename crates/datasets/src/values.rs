//! Property-value generators.

use pg_hive_graph::Value;
use rand::rngs::StdRng;
use rand::Rng;

/// How values of a property key are generated. `MixedIntStr` /
/// `MixedDateStr` produce mostly-clean columns with a small fraction of
/// string outliers — the phenomenon behind the paper's datatype
/// sampling-error bins (Fig. 8).
#[derive(Debug, Clone, PartialEq)]
pub enum ValueGen {
    /// Uniform integer in `[lo, hi]`.
    Int(i64, i64),
    /// Uniform float in `[0, scale)` with a fractional part.
    Float(f64),
    /// Random boolean.
    Bool,
    /// Random ISO date between 1970 and 2025.
    Date,
    /// Random ISO timestamp.
    DateTime,
    /// Short name-like string from a pool of `n` distinct values.
    Name(u32),
    /// Longer free-text string.
    Text,
    /// Integers with probability `1 - dirty`, else a string outlier.
    MixedIntStr(f64),
    /// Dates with probability `1 - dirty`, else a string outlier.
    MixedDateStr(f64),
}

impl ValueGen {
    /// Draw one value.
    pub fn sample(&self, rng: &mut StdRng) -> Value {
        match self {
            ValueGen::Int(lo, hi) => Value::Int(rng.gen_range(*lo..=*hi)),
            ValueGen::Float(scale) => {
                // Force a fractional part so the lexical form stays a float.
                let v = rng.gen::<f64>() * scale;
                Value::Float((v * 100.0).round() / 100.0 + 0.25)
            }
            ValueGen::Bool => Value::Bool(rng.gen()),
            ValueGen::Date => random_date(rng),
            ValueGen::DateTime => {
                let Value::Date { year, month, day } = random_date(rng) else {
                    unreachable!()
                };
                Value::DateTime {
                    year,
                    month,
                    day,
                    hour: rng.gen_range(0..24),
                    minute: rng.gen_range(0..60),
                    second: rng.gen_range(0..60),
                }
            }
            ValueGen::Name(n) => Value::Str(format!("name_{}", rng.gen_range(0..*n))),
            ValueGen::Text => {
                let words = rng.gen_range(3..10);
                let mut s = String::new();
                for w in 0..words {
                    if w > 0 {
                        s.push(' ');
                    }
                    s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
                }
                Value::Str(s)
            }
            ValueGen::MixedIntStr(dirty) => {
                if rng.gen::<f64>() < *dirty {
                    Value::Str(format!("n/a-{}", rng.gen_range(0..100)))
                } else {
                    Value::Int(rng.gen_range(0..1_000_000))
                }
            }
            ValueGen::MixedDateStr(dirty) => {
                if rng.gen::<f64>() < *dirty {
                    Value::Str("unknown".to_string())
                } else {
                    random_date(rng)
                }
            }
        }
    }
}

fn random_date(rng: &mut StdRng) -> Value {
    Value::Date {
        year: rng.gen_range(1970..=2025),
        month: rng.gen_range(1..=12),
        day: rng.gen_range(1..=28),
    }
}

const WORDS: &[&str] = &[
    "graph", "schema", "node", "edge", "type", "label", "property", "cluster", "batch", "hash",
    "table", "merge", "stream", "query",
];

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::ValueKind;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn int_gen_in_range() {
        let mut r = rng();
        for _ in 0..100 {
            let v = ValueGen::Int(5, 10).sample(&mut r);
            let Value::Int(i) = v else { panic!() };
            assert!((5..=10).contains(&i));
        }
    }

    #[test]
    fn float_gen_has_float_kind_lexically() {
        let mut r = rng();
        for _ in 0..50 {
            let v = ValueGen::Float(100.0).sample(&mut r);
            assert_eq!(
                Value::parse_lexical(&v.lexical()).kind(),
                ValueKind::Float,
                "lexical {}",
                v.lexical()
            );
        }
    }

    #[test]
    fn date_gen_valid_iso() {
        let mut r = rng();
        for _ in 0..50 {
            let v = ValueGen::Date.sample(&mut r);
            assert_eq!(Value::parse_lexical(&v.lexical()).kind(), ValueKind::Date);
        }
    }

    #[test]
    fn mixed_gen_produces_outliers() {
        let mut r = rng();
        let mut ints = 0;
        let mut strs = 0;
        for _ in 0..1000 {
            match ValueGen::MixedIntStr(0.05).sample(&mut r) {
                Value::Int(_) => ints += 1,
                Value::Str(_) => strs += 1,
                _ => panic!(),
            }
        }
        assert!(strs > 10 && strs < 120, "outliers = {strs}");
        assert!(ints > 800);
    }

    #[test]
    fn name_gen_bounded_pool() {
        let mut r = rng();
        for _ in 0..100 {
            let Value::Str(s) = ValueGen::Name(3).sample(&mut r) else {
                panic!()
            };
            assert!(["name_0", "name_1", "name_2"].contains(&s.as_str()));
        }
    }
}
