//! k-means with k-means++ seeding — the standard EM initializer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// k-means knobs.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    pub k: usize,
    pub max_iters: usize,
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iters: 50,
            seed: 0x5EED,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `k × d` centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per point.
    pub assignment: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

/// Run k-means++ / Lloyd on `points` (each of equal dimension).
///
/// If there are fewer distinct points than `k`, the result has empty
/// clusters collapsed away (centroids may repeat, assignment stays valid).
///
/// # Panics
/// Panics if `k == 0` or `points` is empty or dims differ.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> KMeansResult {
    assert!(config.k > 0, "k must be positive");
    assert!(!points.is_empty(), "need at least one point");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "dimension mismatch");
    let k = config.k.min(points.len());

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = seed_plus_plus(points, k, &mut rng);
    let mut assignment = vec![0usize; points.len()];
    let mut inertia = f64::INFINITY;

    for _ in 0..config.max_iters {
        // Assign.
        let mut new_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best, d2) = nearest(p, &centroids);
            assignment[i] = best;
            new_inertia += d2;
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (ci, si) in c.iter_mut().zip(sum) {
                    *ci = si / count as f64;
                }
            }
        }
        if (inertia - new_inertia).abs() < 1e-9 {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }

    KMeansResult {
        centroids,
        assignment,
        inertia,
    }
}

fn seed_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut dists: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All points identical to some centroid: pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (d, p) in dists.iter_mut().zip(points) {
            let nd = sq_dist(p, centroids.last().unwrap());
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            pts.push(vec![0.0 + (i % 3) as f64 * 0.01, 0.0]);
            pts.push(vec![5.0 + (i % 3) as f64 * 0.01, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let r = kmeans(
            &two_blobs(),
            &KMeansConfig {
                k: 2,
                max_iters: 50,
                seed: 1,
            },
        );
        // All even indices in one cluster, all odd in the other.
        let c0 = r.assignment[0];
        assert!(r.assignment.iter().step_by(2).all(|&a| a == c0));
        assert!(r.assignment.iter().skip(1).step_by(2).all(|&a| a != c0));
        assert!(r.inertia < 0.1);
    }

    #[test]
    fn k_capped_at_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 10,
                max_iters: 10,
                seed: 2,
            },
        );
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn identical_points_one_effective_cluster() {
        let pts = vec![vec![3.0, 3.0]; 10];
        let r = kmeans(
            &pts,
            &KMeansConfig {
                k: 3,
                max_iters: 10,
                seed: 3,
            },
        );
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = two_blobs();
        let cfg = KMeansConfig {
            k: 2,
            max_iters: 50,
            seed: 42,
        };
        let a = kmeans(&pts, &cfg);
        let b = kmeans(&pts, &cfg);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        kmeans(
            &[vec![0.0]],
            &KMeansConfig {
                k: 0,
                max_iters: 1,
                seed: 0,
            },
        );
    }
}
