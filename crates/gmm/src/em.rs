//! Diagonal-covariance Gaussian mixtures fit by EM.

use crate::kmeans::{kmeans, KMeansConfig};

/// EM knobs.
#[derive(Debug, Clone)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub components: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the log-likelihood improves by less than this.
    pub tolerance: f64,
    /// Variance floor — keeps components from collapsing onto single points.
    pub min_variance: f64,
    /// Seed (k-means++ initialization).
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        Self {
            components: 2,
            max_iters: 100,
            tolerance: 1e-6,
            min_variance: 1e-6,
            seed: 0x6A55,
        }
    }
}

/// A fitted mixture of diagonal Gaussians.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    /// Mixing weights, sum to 1.
    pub weights: Vec<f64>,
    /// `k × d` component means.
    pub means: Vec<Vec<f64>>,
    /// `k × d` per-dimension variances.
    pub variances: Vec<Vec<f64>>,
    /// Final total log-likelihood of the training data.
    pub log_likelihood: f64,
    /// EM iterations actually run.
    pub iterations: usize,
}

impl GaussianMixture {
    /// Fit a mixture to `points` with EM, initialized from k-means++.
    ///
    /// # Panics
    /// Panics if `points` is empty, dims differ, or `components == 0`.
    pub fn fit(points: &[Vec<f64>], config: &GmmConfig) -> Self {
        assert!(config.components > 0, "need at least one component");
        assert!(!points.is_empty(), "need at least one point");
        let n = points.len();
        let d = points[0].len();
        assert!(points.iter().all(|p| p.len() == d), "dimension mismatch");
        let k = config.components.min(n);

        // Init from k-means.
        let km = kmeans(
            points,
            &KMeansConfig {
                k,
                max_iters: 20,
                seed: config.seed,
            },
        );
        let mut weights = vec![0.0; k];
        let mut means = km.centroids.clone();
        let mut variances = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&km.assignment) {
            counts[a] += 1;
            for (v, (x, m)) in variances[a].iter_mut().zip(p.iter().zip(&means[a])) {
                let diff = x - m;
                *v += diff * diff;
            }
        }
        for c in 0..k {
            weights[c] = (counts[c].max(1)) as f64 / n as f64;
            for v in &mut variances[c] {
                *v = (*v / counts[c].max(1) as f64).max(config.min_variance);
            }
        }
        let wsum: f64 = weights.iter().sum();
        weights.iter_mut().for_each(|w| *w /= wsum);

        // EM loop.
        let mut resp = vec![vec![0.0f64; k]; n];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut ll = prev_ll;
        let mut iterations = 0;
        for iter in 0..config.max_iters {
            iterations = iter + 1;
            // E-step.
            ll = 0.0;
            for (i, p) in points.iter().enumerate() {
                let mut logp = vec![0.0f64; k];
                for c in 0..k {
                    logp[c] = weights[c].max(1e-300).ln()
                        + log_gaussian_diag(p, &means[c], &variances[c]);
                }
                let lse = log_sum_exp(&logp);
                ll += lse;
                for c in 0..k {
                    resp[i][c] = (logp[c] - lse).exp();
                }
            }
            // M-step.
            for c in 0..k {
                let nk: f64 = resp.iter().map(|r| r[c]).sum();
                if nk < 1e-12 {
                    continue; // dead component; leave as-is
                }
                weights[c] = nk / n as f64;
                for j in 0..d {
                    let mean: f64 = resp
                        .iter()
                        .zip(points)
                        .map(|(r, p)| r[c] * p[j])
                        .sum::<f64>()
                        / nk;
                    means[c][j] = mean;
                }
                for j in 0..d {
                    let var: f64 = resp
                        .iter()
                        .zip(points)
                        .map(|(r, p)| {
                            let diff = p[j] - means[c][j];
                            r[c] * diff * diff
                        })
                        .sum::<f64>()
                        / nk;
                    variances[c][j] = var.max(config.min_variance);
                }
            }
            if (ll - prev_ll).abs() < config.tolerance {
                break;
            }
            prev_ll = ll;
        }

        GaussianMixture {
            weights,
            means,
            variances,
            log_likelihood: ll,
            iterations,
        }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.weights.len()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.means.first().map_or(0, Vec::len)
    }

    /// Number of free parameters (weights + means + diagonal variances) —
    /// used by BIC/AIC.
    pub fn num_parameters(&self) -> usize {
        let k = self.k();
        let d = self.dim();
        (k - 1) + k * d + k * d
    }

    /// Log-density of one point under the mixture.
    pub fn log_density(&self, p: &[f64]) -> f64 {
        let logp: Vec<f64> = (0..self.k())
            .map(|c| {
                self.weights[c].max(1e-300).ln()
                    + log_gaussian_diag(p, &self.means[c], &self.variances[c])
            })
            .collect();
        log_sum_exp(&logp)
    }

    /// Most likely component for `p`.
    pub fn predict(&self, p: &[f64]) -> usize {
        (0..self.k())
            .max_by(|&a, &b| {
                let la = self.weights[a].max(1e-300).ln()
                    + log_gaussian_diag(p, &self.means[a], &self.variances[a]);
                let lb = self.weights[b].max(1e-300).ln()
                    + log_gaussian_diag(p, &self.means[b], &self.variances[b]);
                la.partial_cmp(&lb).unwrap()
            })
            .unwrap_or(0)
    }

    /// Hard assignment for every point.
    pub fn predict_all(&self, points: &[Vec<f64>]) -> Vec<usize> {
        points.iter().map(|p| self.predict(p)).collect()
    }

    /// Bayesian information criterion: `k·ln(n) − 2·LL` (lower is better).
    pub fn bic(&self, n: usize) -> f64 {
        self.num_parameters() as f64 * (n as f64).ln() - 2.0 * self.log_likelihood
    }

    /// Akaike information criterion: `2k − 2·LL` (lower is better).
    pub fn aic(&self) -> f64 {
        2.0 * self.num_parameters() as f64 - 2.0 * self.log_likelihood
    }
}

fn log_gaussian_diag(p: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((x, m), v) in p.iter().zip(mean).zip(var) {
        let diff = x - m;
        acc += -0.5 * ((std::f64::consts::TAU * v).ln() + diff * diff / v);
    }
    acc
}

fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_blob(center: &[f64], n: usize, std: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| {
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen();
                        c + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_two_components() {
        let mut pts = gaussian_blob(&[0.0, 0.0], 200, 0.3, 1);
        pts.extend(gaussian_blob(&[5.0, 5.0], 200, 0.3, 2));
        let m = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                components: 2,
                ..Default::default()
            },
        );
        // Means near (0,0) and (5,5) in some order.
        let mut found_origin = false;
        let mut found_five = false;
        for mean in &m.means {
            if mean.iter().all(|&x| x.abs() < 0.5) {
                found_origin = true;
            }
            if mean.iter().all(|&x| (x - 5.0).abs() < 0.5) {
                found_five = true;
            }
        }
        assert!(found_origin && found_five, "means = {:?}", m.means);
        // Weights near 0.5 each.
        assert!((m.weights[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn predict_separates_blobs() {
        let mut pts = gaussian_blob(&[0.0], 100, 0.2, 3);
        pts.extend(gaussian_blob(&[10.0], 100, 0.2, 4));
        let m = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                components: 2,
                ..Default::default()
            },
        );
        let a = m.predict(&[0.1]);
        let b = m.predict(&[9.8]);
        assert_ne!(a, b);
        let all = m.predict_all(&pts);
        assert!(all[..100].iter().all(|&c| c == all[0]));
        assert!(all[100..].iter().all(|&c| c == all[100]));
    }

    #[test]
    fn log_likelihood_improves_with_right_k() {
        let mut pts = gaussian_blob(&[0.0, 0.0], 150, 0.2, 5);
        pts.extend(gaussian_blob(&[4.0, 4.0], 150, 0.2, 6));
        let m1 = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                components: 1,
                ..Default::default()
            },
        );
        let m2 = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                components: 2,
                ..Default::default()
            },
        );
        assert!(m2.log_likelihood > m1.log_likelihood);
        assert!(m2.bic(pts.len()) < m1.bic(pts.len()));
    }

    #[test]
    fn variance_floor_prevents_collapse() {
        let pts = vec![vec![1.0, 2.0]; 50];
        let m = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                components: 2,
                ..Default::default()
            },
        );
        for var in &m.variances {
            for &v in var {
                assert!(v >= 1e-6);
            }
        }
        assert!(m.log_likelihood.is_finite());
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!((log_sum_exp(&[-1000.0, -1000.0]) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn num_parameters_formula() {
        let pts = gaussian_blob(&[0.0, 0.0, 0.0], 30, 1.0, 7);
        let m = GaussianMixture::fit(
            &pts,
            &GmmConfig {
                components: 2,
                ..Default::default()
            },
        );
        // (k-1) + k*d + k*d = 1 + 6 + 6 = 13.
        assert_eq!(m.num_parameters(), 13);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn zero_components_panics() {
        GaussianMixture::fit(
            &[vec![0.0]],
            &GmmConfig {
                components: 0,
                ..Default::default()
            },
        );
    }
}
