//! # pg-hive-gmm
//!
//! Gaussian-mixture-model substrate, built from scratch for the GMMSchema
//! baseline (Bonifati, Dumbrava, Mir — EDBT 2022, cited as \[15\] by the
//! PG-HIVE paper). GMMSchema clusters node feature vectors with hierarchical
//! GMMs; this crate supplies the machinery:
//!
//! - [`mod@kmeans`] — k-means++ seeding and Lloyd iterations (EM init),
//! - [`em`] — diagonal-covariance Gaussian mixtures fit by
//!   expectation–maximization with log-sum-exp stabilization,
//! - [`select`] — BIC/AIC model selection over a range of component counts.

pub mod em;
pub mod kmeans;
pub mod select;

pub use em::{GaussianMixture, GmmConfig};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use select::{fit_best, SelectionCriterion};
