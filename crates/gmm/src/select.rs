//! Model selection over component counts.
//!
//! GMMSchema does not know the number of types in advance — the paper notes
//! "identifying the appropriate number of clusters ... remains an open
//! problem". The baseline follows the standard practice of fitting mixtures
//! for a range of `k` and keeping the one with the best information
//! criterion.

use crate::em::{GaussianMixture, GmmConfig};

/// Which information criterion drives the selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionCriterion {
    /// Bayesian IC — heavier complexity penalty, favored by GMMSchema.
    Bic,
    /// Akaike IC — lighter penalty.
    Aic,
}

/// Fit mixtures for `k ∈ k_range` and return the best-scoring one together
/// with its `k`.
///
/// # Panics
/// Panics if the range is empty or `points` is empty.
pub fn fit_best(
    points: &[Vec<f64>],
    k_range: std::ops::RangeInclusive<usize>,
    criterion: SelectionCriterion,
    base: &GmmConfig,
) -> (usize, GaussianMixture) {
    assert!(!points.is_empty(), "need points");
    let mut best: Option<(usize, GaussianMixture, f64)> = None;
    for k in k_range {
        if k == 0 || k > points.len() {
            continue;
        }
        let m = GaussianMixture::fit(
            points,
            &GmmConfig {
                components: k,
                ..base.clone()
            },
        );
        let score = match criterion {
            SelectionCriterion::Bic => m.bic(points.len()),
            SelectionCriterion::Aic => m.aic(),
        };
        let better = best.as_ref().is_none_or(|(_, _, s)| score < *s);
        if better {
            best = Some((k, m, score));
        }
    }
    let (k, m, _) = best.expect("k range produced no valid fit");
    (k, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(centers: &[f64], per: usize, std: f64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut pts = Vec::new();
        for &c in centers {
            for _ in 0..per {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                pts.push(vec![c + std * g]);
            }
        }
        pts
    }

    #[test]
    fn bic_finds_three_components() {
        let pts = blobs(&[0.0, 10.0, 20.0], 150, 0.4);
        let (k, _) = fit_best(&pts, 1..=6, SelectionCriterion::Bic, &GmmConfig::default());
        assert_eq!(k, 3);
    }

    #[test]
    fn bic_finds_one_component() {
        let pts = blobs(&[0.0], 300, 0.5);
        let (k, _) = fit_best(&pts, 1..=4, SelectionCriterion::Bic, &GmmConfig::default());
        assert_eq!(k, 1);
    }

    #[test]
    fn aic_also_reasonable() {
        let pts = blobs(&[0.0, 8.0], 150, 0.4);
        let (k, _) = fit_best(&pts, 1..=5, SelectionCriterion::Aic, &GmmConfig::default());
        assert!(k == 2 || k == 3, "AIC may slightly overfit; got {k}");
    }

    #[test]
    fn k_range_capped_by_points() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let (k, _) = fit_best(&pts, 1..=10, SelectionCriterion::Bic, &GmmConfig::default());
        assert!(k <= 3);
    }

    #[test]
    #[should_panic(expected = "no valid fit")]
    fn empty_range_panics() {
        let pts = vec![vec![0.0]];
        #[allow(clippy::reversed_empty_ranges)]
        fit_best(&pts, 3..=2, SelectionCriterion::Bic, &GmmConfig::default());
    }
}
