//! Deterministic seeded-hash embeddings.
//!
//! Each token is hashed (FNV-1a) to seed a splitmix64 stream that generates a
//! `d`-dimensional Gaussian vector (Box–Muller), then normalized. Properties:
//!
//! - **Deterministic**: the same `(seed, dim, token)` always yields the same
//!   vector, across runs and platforms.
//! - **Separating**: two distinct tokens give independent random unit
//!   vectors, which in dimension `d` have expected cosine 0 and variance
//!   `1/d` — far apart w.r.t. the LSH bucket widths used downstream.
//!
//! This is the "no training corpus available" substitution for Word2Vec: the
//! PG-HIVE pipeline only requires identical label sets to coincide and
//! different ones to be separated (§4.1), which this satisfies exactly.

use crate::LabelEmbedder;

/// Deterministic random-projection label embedder.
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    seed: u64,
}

impl HashEmbedder {
    /// Create an embedder of dimension `dim` with the given stream `seed`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self { dim, seed }
    }
}

impl LabelEmbedder for HashEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_into(&self, token: &str, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim);
        let mut state = fnv1a(token.as_bytes()) ^ self.seed;
        let mut i = 0;
        while i < self.dim {
            // Box–Muller from two uniforms in (0,1).
            let u1 = to_unit_open(splitmix64(&mut state));
            let u2 = to_unit_open(splitmix64(&mut state));
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            out[i] = (r * theta.cos()) as f32;
            if i + 1 < self.dim {
                out[i + 1] = (r * theta.sin()) as f32;
            }
            i += 2;
        }
        crate::math::normalize(out);
    }
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn to_unit_open(x: u64) -> f64 {
    // Map to (0, 1): avoid exactly 0 which would make ln() blow up.
    ((x >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{cosine, norm};

    #[test]
    fn embeddings_are_deterministic() {
        let e = HashEmbedder::new(16, 7);
        assert_eq!(e.embed("Person"), e.embed("Person"));
    }

    #[test]
    fn embeddings_are_unit_length() {
        let e = HashEmbedder::new(32, 0);
        for tok in ["Person", "Post", "Org|Place", "KNOWS"] {
            let v = e.embed(tok);
            assert!((norm(&v) - 1.0).abs() < 1e-5, "token {tok}");
        }
    }

    #[test]
    fn distinct_tokens_are_separated() {
        let e = HashEmbedder::new(64, 42);
        let a = e.embed("Person");
        let b = e.embed("Post");
        assert!(
            cosine(&a, &b).abs() < 0.6,
            "independent unit vectors in R^64 should be near-orthogonal, got {}",
            cosine(&a, &b)
        );
    }

    #[test]
    fn different_seeds_give_different_vectors() {
        let a = HashEmbedder::new(16, 1).embed("Person");
        let b = HashEmbedder::new(16, 2).embed("Person");
        assert_ne!(a, b);
    }

    #[test]
    fn odd_dimension_is_filled() {
        let e = HashEmbedder::new(5, 3);
        let v = e.embed("X");
        assert_eq!(v.len(), 5);
        assert!((norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dim_panics() {
        HashEmbedder::new(0, 0);
    }
}
