//! Tiny dense-vector helpers shared by the embedding implementations.
//!
//! Kept as free functions over slices (`&[f32]`) per the performance-book
//! guidance to prefer slices over concrete containers.

/// Dot product. Panics in debug builds if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalize `a` to unit length in place; leaves the zero vector untouched.
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Cosine similarity; 0.0 when either vector is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_bounds() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
    }
}
