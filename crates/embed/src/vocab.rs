//! Token vocabulary with frequency counts for Word2Vec training.

use std::collections::HashMap;

/// A vocabulary over label tokens, recording occurrence counts. Token ids
/// are dense `usize` indices in first-seen order.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    index: HashMap<String, usize>,
    tokens: Vec<String>,
    counts: Vec<u64>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of sentences (each a slice of tokens).
    pub fn from_sentences<S: AsRef<str>>(sentences: &[Vec<S>]) -> Self {
        let mut v = Self::new();
        for sentence in sentences {
            for tok in sentence {
                v.add(tok.as_ref());
            }
        }
        v
    }

    /// Record one occurrence of `token`, returning its id.
    pub fn add(&mut self, token: &str) -> usize {
        if let Some(&id) = self.index.get(token) {
            self.counts[id] += 1;
            return id;
        }
        let id = self.tokens.len();
        self.tokens.push(token.to_string());
        self.index.insert(token.to_string(), id);
        self.counts.push(1);
        id
    }

    /// Id of `token` if known.
    pub fn get(&self, token: &str) -> Option<usize> {
        self.index.get(token).copied()
    }

    /// Token string for `id`.
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// Occurrence count for `id`.
    pub fn count(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Unigram-distribution sampling table raised to the 3/4 power, as in
    /// the original word2vec negative-sampling implementation. Returns a
    /// table of token ids of length `table_size`; sampling uniformly from it
    /// approximates `P(w) ∝ count(w)^0.75`.
    pub fn negative_sampling_table(&self, table_size: usize) -> Vec<usize> {
        if self.is_empty() || table_size == 0 {
            return Vec::new();
        }
        let pow: Vec<f64> = self.counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = pow.iter().sum();
        let mut table = Vec::with_capacity(table_size);
        let mut cum = 0.0;
        let mut id = 0;
        for i in 0..table_size {
            let frac = (i as f64 + 0.5) / table_size as f64;
            while cum + pow[id] / total < frac && id + 1 < self.len() {
                cum += pow[id] / total;
                id += 1;
            }
            table.push(id);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_counts_occurrences() {
        let mut v = Vocabulary::new();
        let a = v.add("Person");
        let b = v.add("Person");
        assert_eq!(a, b);
        assert_eq!(v.count(a), 2);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn from_sentences_builds_counts() {
        let v = Vocabulary::from_sentences(&[
            vec!["Person", "KNOWS", "Person"],
            vec!["Person", "LIKES", "Post"],
        ]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.count(v.get("Person").unwrap()), 3);
        assert_eq!(v.count(v.get("Post").unwrap()), 1);
    }

    #[test]
    fn sampling_table_favours_frequent_tokens() {
        let mut v = Vocabulary::new();
        for _ in 0..90 {
            v.add("common");
        }
        for _ in 0..10 {
            v.add("rare");
        }
        let table = v.negative_sampling_table(1000);
        let common = v.get("common").unwrap();
        let hits = table.iter().filter(|&&id| id == common).count();
        // With ^0.75 damping, 90:10 becomes roughly 0.846:0.154.
        assert!(hits > 700 && hits < 950, "common hits = {hits}");
    }

    #[test]
    fn sampling_table_handles_empty() {
        let v = Vocabulary::new();
        assert!(v.negative_sampling_table(100).is_empty());
    }

    #[test]
    fn token_round_trip() {
        let mut v = Vocabulary::new();
        let id = v.add("Org|Place");
        assert_eq!(v.token(id), "Org|Place");
        assert!(v.get("missing").is_none());
    }
}
