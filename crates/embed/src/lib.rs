//! # pg-hive-embed
//!
//! Label-embedding substrate for PG-HIVE.
//!
//! §4.1 of the paper represents every node as `Word2Vec(labels) ∥ binary
//! property vector` and every edge as three Word2Vec embeddings (edge label,
//! source labels, target labels) plus its binary property vector. The
//! Word2Vec model is "trained on the set of node and edge labels observed in
//! the dataset to ensure consistent semantic embeddings across identical
//! label sets"; multi-label sets are sorted alphabetically and concatenated
//! into a single token; unlabeled elements get the zero vector.
//!
//! This crate provides two interchangeable implementations of the
//! [`LabelEmbedder`] trait:
//!
//! - [`HashEmbedder`] — a deterministic seeded random-projection embedding:
//!   identical tokens → identical vectors, distinct tokens → near-orthogonal
//!   vectors in expectation. This is the fast default and is sufficient for
//!   the pipeline's correctness (the paper only relies on same-label-set ⇒
//!   same vector and different-label-set ⇒ separated vectors).
//! - [`Word2Vec`] — a from-scratch skip-gram model with negative sampling
//!   trained on label co-occurrence sentences, reproducing the paper's setup
//!   including semantic proximity of co-occurring labels.
//!
//! The canonical token for a label set is produced by [`canonical_token`].

pub mod hash_embed;
pub mod math;
pub mod vocab;
pub mod word2vec;

pub use hash_embed::HashEmbedder;
pub use vocab::Vocabulary;
pub use word2vec::{Word2Vec, Word2VecConfig};

/// Anything that can turn a canonical label token into a fixed-dimensional
/// vector. Implementations must be deterministic: the same token always maps
/// to the same vector.
pub trait LabelEmbedder: Send + Sync {
    /// Embedding dimensionality `d`.
    fn dim(&self) -> usize;

    /// Write the embedding of `token` into `out` (`out.len() == self.dim()`).
    /// Unknown tokens must still produce a deterministic vector.
    fn embed_into(&self, token: &str, out: &mut [f32]);

    /// Convenience allocation wrapper around [`Self::embed_into`].
    fn embed(&self, token: &str) -> Vec<f32> {
        let mut v = vec![0.0; self.dim()];
        self.embed_into(token, &mut v);
        v
    }
}

/// Canonical token for a label set: labels sorted alphabetically and joined
/// with `"|"` (§4.1 "we sort them alphabetically for uniformity and then
/// concatenate them as one"). Returns `None` for the empty set — callers use
/// the zero vector for unlabeled elements.
pub fn canonical_token<S: AsRef<str>>(labels: &[S]) -> Option<String> {
    if labels.is_empty() {
        return None;
    }
    let mut sorted: Vec<&str> = labels.iter().map(AsRef::as_ref).collect();
    sorted.sort_unstable();
    sorted.dedup();
    Some(sorted.join("|"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_token_sorts_and_dedups() {
        assert_eq!(
            canonical_token(&["Student", "Person", "Student"]),
            Some("Person|Student".to_string())
        );
        assert_eq!(canonical_token::<&str>(&[]), None);
        assert_eq!(canonical_token(&["A"]), Some("A".to_string()));
    }

    #[test]
    fn canonical_token_is_order_independent() {
        assert_eq!(canonical_token(&["B", "A"]), canonical_token(&["A", "B"]));
    }
}
