//! Skip-gram Word2Vec with negative sampling, from scratch.
//!
//! Mikolov et al.'s estimator (cited by the paper as \[69\]): for every
//! (center, context) pair inside a window, maximize
//! `log σ(u_ctx · v_center) + Σ_k log σ(-u_neg_k · v_center)`
//! by SGD. Sentences here are label co-occurrence contexts, e.g. the triple
//! `[src_labels, edge_label, tgt_labels]` per edge — the discovery pipeline
//! builds those from the graph so labels that co-occur structurally embed
//! close together, mirroring the paper's "consistent semantic embeddings".
//!
//! Out-of-vocabulary tokens fall back to the deterministic [`HashEmbedder`]
//! so the embedder is total, which incremental batches require (a new batch
//! may carry labels never seen before).

use crate::hash_embed::HashEmbedder;
use crate::math::{axpy, dot, normalize, sigmoid};
use crate::vocab::Vocabulary;
use crate::LabelEmbedder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimension `d` (the paper's example uses 5; defaults to 16,
    /// which balances separation quality and LSH speed).
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate (decays linearly to 10% over epochs).
    pub learning_rate: f32,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// PRNG seed for reproducibility.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            window: 2,
            negatives: 5,
            learning_rate: 0.05,
            epochs: 5,
            seed: 0x9_E37,
        }
    }
}

/// A trained skip-gram model.
#[derive(Debug, Clone)]
pub struct Word2Vec {
    vocab: Vocabulary,
    /// Input (center-word) matrix, row per token — these are the embeddings.
    input: Vec<Vec<f32>>,
    fallback: HashEmbedder,
    dim: usize,
}

impl Word2Vec {
    /// Train on `sentences` (each a vector of tokens) with `config`.
    ///
    /// Degenerate corpora are fine: an empty corpus yields a model that
    /// always falls back to hash embeddings.
    pub fn train<S: AsRef<str>>(sentences: &[Vec<S>], config: &Word2VecConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        let vocab = Vocabulary::from_sentences(sentences);
        let n = vocab.len();
        let dim = config.dim;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let fallback = HashEmbedder::new(dim, config.seed ^ 0xFA11_BACC);

        // Init: input rows start from the deterministic hash embedding
        // (scaled down). Unlike the classic tiny-uniform init, this keeps
        // distinct tokens well separated even when the corpus is too small
        // for SGD to pull them apart, while co-occurrence training still
        // draws related tokens together. Output rows start at zero
        // (word2vec convention).
        let mut input: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let mut v = fallback.embed(vocab.token(i));
                for x in &mut v {
                    *x *= 0.5;
                }
                v
            })
            .collect();
        let mut output: Vec<Vec<f32>> = vec![vec![0.0; dim]; n];

        let neg_table = vocab.negative_sampling_table(1 << 16);
        let encoded: Vec<Vec<usize>> = sentences
            .iter()
            .map(|s| {
                s.iter()
                    .filter_map(|t| vocab.get(t.as_ref()))
                    .collect::<Vec<_>>()
            })
            .collect();

        let total_steps = (config.epochs.max(1)) as f32;
        let mut grad = vec![0.0f32; dim];
        for epoch in 0..config.epochs {
            let lr = config.learning_rate * (1.0 - 0.9 * epoch as f32 / total_steps);
            for sentence in &encoded {
                for (i, &center) in sentence.iter().enumerate() {
                    let lo = i.saturating_sub(config.window);
                    let hi = (i + config.window + 1).min(sentence.len());
                    #[allow(clippy::needless_range_loop)] // symmetric window scan
                    for j in lo..hi {
                        if j == i {
                            continue;
                        }
                        let ctx = sentence[j];
                        grad.iter_mut().for_each(|g| *g = 0.0);
                        // Positive pair.
                        train_pair(&mut input[center], &mut output[ctx], 1.0, lr, &mut grad);
                        // Negative samples.
                        for _ in 0..config.negatives {
                            if neg_table.is_empty() {
                                break;
                            }
                            let neg = neg_table[rng.gen_range(0..neg_table.len())];
                            if neg == ctx {
                                continue;
                            }
                            train_pair(&mut input[center], &mut output[neg], 0.0, lr, &mut grad);
                        }
                        axpy(1.0, &grad, &mut input[center]);
                    }
                }
            }
        }

        for row in &mut input {
            normalize(row);
        }

        Word2Vec {
            vocab,
            input,
            fallback,
            dim,
        }
    }

    /// Vocabulary used at training time.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Cosine similarity between two tokens' embeddings.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        crate::math::cosine(&self.embed(a), &self.embed(b))
    }

    /// The `n` in-vocabulary tokens most similar to `token` (excluding the
    /// token itself), descending by cosine.
    pub fn most_similar(&self, token: &str, n: usize) -> Vec<(String, f32)> {
        let target = self.embed(token);
        let mut scored: Vec<(String, f32)> = (0..self.vocab.len())
            .filter(|&id| self.vocab.token(id) != token)
            .map(|id| {
                (
                    self.vocab.token(id).to_string(),
                    crate::math::cosine(&target, &self.input[id]),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        scored.truncate(n);
        scored
    }
}

/// One SGD step for a (center, context) pair with label `truth` ∈ {0, 1}.
/// Accumulates the center-word gradient into `grad` and updates the output
/// row immediately (standard word2vec ordering).
fn train_pair(center: &mut [f32], out_row: &mut [f32], truth: f32, lr: f32, grad: &mut [f32]) {
    let score = sigmoid(dot(center, out_row));
    let g = lr * (truth - score);
    axpy(g, out_row, grad);
    axpy(g, center, out_row);
}

impl LabelEmbedder for Word2Vec {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_into(&self, token: &str, out: &mut [f32]) {
        match self.vocab.get(token) {
            Some(id) => out.copy_from_slice(&self.input[id]),
            None => self.fallback.embed_into(token, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<&'static str>> {
        // Person co-occurs with KNOWS; Post with LIKES targets; Org with
        // WORKS_AT. Repeat to give SGD enough signal.
        let mut s = Vec::new();
        for _ in 0..200 {
            s.push(vec!["Person", "KNOWS", "Person"]);
            s.push(vec!["Person", "LIKES", "Post"]);
            s.push(vec!["Person", "WORKS_AT", "Org"]);
            s.push(vec!["Org", "LOCATED_IN", "Place"]);
        }
        s
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let cfg = Word2VecConfig {
            epochs: 2,
            ..Default::default()
        };
        let a = Word2Vec::train(&corpus(), &cfg);
        let b = Word2Vec::train(&corpus(), &cfg);
        assert_eq!(a.embed("Person"), b.embed("Person"));
    }

    #[test]
    fn identical_tokens_share_vectors() {
        let m = Word2Vec::train(&corpus(), &Word2VecConfig::default());
        assert_eq!(m.embed("Person"), m.embed("Person"));
    }

    #[test]
    fn cooccurring_labels_are_closer_than_unrelated() {
        let m = Word2Vec::train(&corpus(), &Word2VecConfig::default());
        // KNOWS always appears next to Person; LOCATED_IN never does.
        let close = m.similarity("Person", "KNOWS");
        let far = m.similarity("Person", "LOCATED_IN");
        assert!(
            close > far,
            "expected sim(Person,KNOWS)={close} > sim(Person,LOCATED_IN)={far}"
        );
    }

    #[test]
    fn oov_tokens_fall_back_deterministically() {
        let m = Word2Vec::train(&corpus(), &Word2VecConfig::default());
        let a = m.embed("NeverSeenLabel");
        let b = m.embed("NeverSeenLabel");
        assert_eq!(a, b);
        assert_eq!(a.len(), m.dim());
        assert!(a.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn empty_corpus_still_embeds() {
        let m = Word2Vec::train::<&str>(&[], &Word2VecConfig::default());
        let v = m.embed("anything");
        assert_eq!(v.len(), m.dim());
    }

    #[test]
    fn most_similar_ranks_cooccurring_first() {
        let m = Word2Vec::train(&corpus(), &Word2VecConfig::default());
        let top = m.most_similar("Person", 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1, "sorted");
        // The strongest associates of Person are its direct contexts.
        let names: Vec<&str> = top.iter().map(|(t, _)| t.as_str()).collect();
        assert!(
            names.contains(&"KNOWS") || names.contains(&"LIKES") || names.contains(&"WORKS_AT"),
            "top = {names:?}"
        );
    }

    #[test]
    fn most_similar_excludes_self_and_caps() {
        let m = Word2Vec::train(&corpus(), &Word2VecConfig::default());
        let top = m.most_similar("Person", 100);
        assert!(top.iter().all(|(t, _)| t != "Person"));
        assert!(top.len() < 100, "bounded by vocabulary size");
    }

    #[test]
    fn embeddings_are_normalized() {
        let m = Word2Vec::train(&corpus(), &Word2VecConfig::default());
        let v = m.embed("Person");
        let n = crate::math::norm(&v);
        assert!((n - 1.0).abs() < 1e-4, "norm = {n}");
    }
}
