//! Euclidean (p-stable) LSH — Datar et al., cited as [32]/[63] in the paper.
//!
//! Each of the `T` hash tables draws `k` random Gaussian directions `a_j`
//! and uniform offsets `o_j ∈ [0, b)`; the hash of vector `v` in a table is
//! the tuple `(⌊(a_1·v + o_1)/b⌋, …, ⌊(a_k·v + o_k)/b⌋)` (AND-composition
//! within a table, the standard `(k, T)` scheme of Datar et al.). Two
//! vectors collide in a table when all `k` buckets agree; under the OR rule,
//! elements that collide in **at least one** table are clustered together
//! (transitively, via union-find). Decreasing `b` or increasing `T`
//! increases selectivity/recall respectively — exactly the trade-off §4.2
//! describes — while `k > 1` suppresses the rare far-apart collisions that
//! would otherwise chain whole clusters together (per-table false-positive
//! probability drops from `p` to `p^k`).

use crate::unionfind::UnionFind;
use crate::Clustering;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand::distributions::{Distribution, Uniform};
use std::collections::HashMap;

/// Parameters of Euclidean LSH.
#[derive(Debug, Clone, PartialEq)]
pub struct ElshParams {
    /// Bucket length `b > 0`: the width of each hash bucket.
    pub bucket_width: f64,
    /// Number of hash tables `T ≥ 1` (OR rule across tables).
    pub tables: usize,
    /// Projections concatenated per table (`k ≥ 1`, AND rule within a
    /// table). The paper exposes only `(b, T)`; `k = 4` is the fixed
    /// AND-width used throughout.
    pub hashes_per_table: usize,
    /// PRNG seed for the random projections.
    pub seed: u64,
}

impl Default for ElshParams {
    fn default() -> Self {
        Self {
            bucket_width: 1.0,
            tables: 10,
            hashes_per_table: 4,
            seed: 0xE15E,
        }
    }
}

/// Cluster dense vectors with Euclidean LSH. All vectors must share the same
/// dimension. Returns a [`Clustering`] over the input indices.
///
/// Complexity `O(N·T·D)` — the paper's §4.7 efficiency bound.
///
/// # Panics
/// Panics if `bucket_width <= 0`, `tables == 0`, or vector dims differ.
pub fn elsh_cluster(vectors: &[Vec<f32>], params: &ElshParams) -> Clustering {
    assert!(params.bucket_width > 0.0, "bucket width must be positive");
    assert!(params.tables > 0, "need at least one hash table");
    assert!(
        params.hashes_per_table > 0,
        "need at least one hash per table"
    );
    let n = vectors.len();
    if n == 0 {
        return Clustering {
            assignment: vec![],
            num_clusters: 0,
        };
    }
    let dim = vectors[0].len();
    assert!(
        vectors.iter().all(|v| v.len() == dim),
        "all vectors must share a dimension"
    );

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut uf = UnionFind::new(n);
    let mut buckets: HashMap<u64, usize> = HashMap::new();
    let k = params.hashes_per_table;

    for _table in 0..params.tables {
        // k Gaussian directions + offsets per table (AND-composition).
        let dirs: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..dim).map(|_| gaussian(&mut rng)).collect())
            .collect();
        let offsets: Vec<f64> = (0..k)
            .map(|_| Uniform::new(0.0, params.bucket_width).sample(&mut rng))
            .collect();

        buckets.clear();
        for (i, v) in vectors.iter().enumerate() {
            let mut key = 0xcbf2_9ce4_8422_2325u64;
            for (dir, &offset) in dirs.iter().zip(&offsets) {
                let proj: f64 = v
                    .iter()
                    .zip(dir)
                    .map(|(x, a)| (*x as f64) * (*a as f64))
                    .sum();
                let bucket = ((proj + offset) / params.bucket_width).floor() as i64;
                key = mix(key ^ bucket as u64);
            }
            match buckets.get(&key) {
                Some(&first) => {
                    uf.union(first, i);
                }
                None => {
                    buckets.insert(key, i);
                }
            }
        }
    }

    Clustering::from_union_find(&mut uf)
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: &[f32], n: usize, spread: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| c + spread * (rng.gen::<f32>() - 0.5))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn identical_vectors_always_cluster_together() {
        let vectors = vec![vec![1.0, 2.0, 3.0]; 10];
        let c = elsh_cluster(&vectors, &ElshParams::default());
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn well_separated_blobs_split() {
        let mut vs = blob(&[0.0, 0.0, 0.0, 0.0], 50, 0.05, 1);
        vs.extend(blob(&[10.0, 10.0, 10.0, 10.0], 50, 0.05, 2));
        let c = elsh_cluster(
            &vs,
            &ElshParams {
                bucket_width: 0.5,
                tables: 15,
                seed: 3,
                ..Default::default()
            },
        );
        // The two blobs must never be merged.
        for i in 0..50 {
            for j in 50..100 {
                assert_ne!(
                    c.assignment[i], c.assignment[j],
                    "blob members {i} and {j} were merged"
                );
            }
        }
        // And each blob should be (mostly) one cluster: with 15 tables the
        // OR rule gives near-certain recall at distance << b.
        assert!(c.num_clusters <= 4, "got {} clusters", c.num_clusters);
    }

    #[test]
    fn wider_buckets_merge_more() {
        let mut vs = blob(&[0.0; 4], 30, 0.2, 5);
        vs.extend(blob(&[2.0; 4], 30, 0.2, 6));
        let narrow = elsh_cluster(
            &vs,
            &ElshParams {
                bucket_width: 0.3,
                tables: 10,
                seed: 7,
                ..Default::default()
            },
        );
        let wide = elsh_cluster(
            &vs,
            &ElshParams {
                bucket_width: 50.0,
                tables: 10,
                seed: 7,
                ..Default::default()
            },
        );
        assert!(wide.num_clusters <= narrow.num_clusters);
        assert_eq!(wide.num_clusters, 1, "huge buckets merge everything");
    }

    #[test]
    fn deterministic_per_seed() {
        let vs = blob(&[0.0; 8], 40, 1.0, 11);
        let p = ElshParams {
            bucket_width: 0.7,
            tables: 8,
            seed: 13,
            ..Default::default()
        };
        assert_eq!(elsh_cluster(&vs, &p), elsh_cluster(&vs, &p));
    }

    #[test]
    fn empty_input() {
        let c = elsh_cluster(&[], &ElshParams::default());
        assert_eq!(c.num_clusters, 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        elsh_cluster(&[vec![1.0]], &ElshParams {
            bucket_width: 0.0,
            tables: 1,
            seed: 0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn mismatched_dims_panic() {
        elsh_cluster(
            &[vec![1.0, 2.0], vec![1.0]],
            &ElshParams::default(),
        );
    }
}
