//! Euclidean (p-stable) LSH — Datar et al., cited as \[32\]/\[63\] in the paper.
//!
//! Each of the `T` hash tables draws `k` random Gaussian directions `a_j`
//! and uniform offsets `o_j ∈ [0, b)`; the hash of vector `v` in a table is
//! the tuple `(⌊(a_1·v + o_1)/b⌋, …, ⌊(a_k·v + o_k)/b⌋)` (AND-composition
//! within a table, the standard `(k, T)` scheme of Datar et al.). Two
//! vectors collide in a table when all `k` buckets agree; under the OR rule,
//! elements that collide in **at least one** table are clustered together
//! (transitively, via union-find). Decreasing `b` or increasing `T`
//! increases selectivity/recall respectively — exactly the trade-off §4.2
//! describes — while `k > 1` suppresses the rare far-apart collisions that
//! would otherwise chain whole clusters together (per-table false-positive
//! probability drops from `p` to `p^k`).
//!
//! # Execution strategy
//!
//! The seed implementation was a scalar loop over per-element `Vec<Vec<f32>>`
//! (kept verbatim in [`crate::reference`] as the perf baseline). This
//! version is built for throughput:
//!
//! 1. All `T·k` projection directions are drawn up front into one flat
//!    row-major [`VectorMatrix`], so the inner loop is a cache-friendly
//!    GEMV-style sweep: each input row is streamed once against the whole
//!    direction matrix. Each projection runs through the blocked
//!    SIMD-friendly kernel (`matrix::dot_f64_blocked`) — fixed-width lane
//!    blocks with explicit f64 accumulators over the f32 inputs. Parity
//!    with [`crate::reference`] is argued at the *bucket* level: f32×f32
//!    products are exact in f64, so re-association perturbs a projection
//!    by ~1e-16 relative, far below any realistic distance to a
//!    `floor((a·v + o)/b)` boundary (see the kernel docs).
//! 2. Hashing is embarrassingly parallel — `hash key(i, t)` is a pure
//!    function of the input row and the projections — and is chunked across
//!    threads ([`crate::par`], `parallel` feature, on by default).
//! 3. Bucketing unions collisions per table through an
//!    [`FxHashMap`](crate::fx::FxHashMap) in a fixed (table-major,
//!    index-major) order, so the resulting clustering is byte-identical
//!    whether hashing ran on one thread or many.

use crate::matrix::VectorMatrix;
use crate::unionfind::UnionFind;
use crate::{par, Clustering};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of Euclidean LSH.
#[derive(Debug, Clone, PartialEq)]
pub struct ElshParams {
    /// Bucket length `b > 0`: the width of each hash bucket.
    pub bucket_width: f64,
    /// Number of hash tables `T ≥ 1` (OR rule across tables).
    pub tables: usize,
    /// Projections concatenated per table (`k ≥ 1`, AND rule within a
    /// table). The paper exposes only `(b, T)`; `k = 4` is the fixed
    /// AND-width used throughout.
    pub hashes_per_table: usize,
    /// PRNG seed for the random projections.
    pub seed: u64,
}

impl Default for ElshParams {
    fn default() -> Self {
        Self {
            bucket_width: 1.0,
            tables: 10,
            hashes_per_table: 4,
            seed: 0xE15E,
        }
    }
}

/// The precomputed projection bank: `tables · hashes_per_table` Gaussian
/// directions (one flat matrix) plus their uniform offsets, drawn from the
/// seeded RNG in a fixed order (per table: `k` directions, then `k`
/// offsets — the same order the seed implementation used, so fixed seeds
/// reproduce the seed's clustering exactly).
#[derive(Debug, Clone)]
pub struct Projections {
    pub dirs: VectorMatrix,
    pub offsets: Vec<f64>,
}

impl Projections {
    /// Draw the full projection bank for `params` over vectors of `dim`.
    pub fn draw(dim: usize, params: &ElshParams) -> Self {
        let k = params.hashes_per_table;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut dirs = VectorMatrix::with_capacity(params.tables * k, dim);
        let mut offsets = Vec::with_capacity(params.tables * k);
        for _table in 0..params.tables {
            for _j in 0..k {
                dirs.push_row_with(|row| {
                    for x in row.iter_mut() {
                        *x = gaussian(&mut rng);
                    }
                });
            }
            for _j in 0..k {
                offsets.push(Uniform::new(0.0, params.bucket_width).sample(&mut rng));
            }
        }
        Projections { dirs, offsets }
    }
}

/// Cluster the rows of a [`VectorMatrix`] with Euclidean LSH. Returns a
/// [`Clustering`] over row indices.
///
/// Complexity `O(N·T·D)` — the paper's §4.7 efficiency bound — executed as
/// a parallel flat-matrix sweep (see the module docs). Same seed → same
/// clustering, with or without the `parallel` feature.
///
/// # Panics
/// Panics if `bucket_width <= 0`, `tables == 0`, or `hashes_per_table == 0`.
pub fn elsh_cluster(matrix: &VectorMatrix, params: &ElshParams) -> Clustering {
    assert!(params.bucket_width > 0.0, "bucket width must be positive");
    assert!(params.tables > 0, "need at least one hash table");
    assert!(
        params.hashes_per_table > 0,
        "need at least one hash per table"
    );
    let n = matrix.rows();
    if n == 0 {
        return Clustering {
            assignment: vec![],
            num_clusters: 0,
        };
    }

    let projections = Projections::draw(matrix.dim(), params);
    let keys = hash_keys(matrix, &projections, params);
    let mut uf = UnionFind::new(n);
    crate::bucket::union_keyed_collisions(&keys, n, params.tables, &mut uf);
    Clustering::from_union_find(&mut uf)
}

/// Compute the `n × T` bucket-key matrix (row-major: `keys[i·T + t]`).
/// Pure per-row work, chunked across threads.
fn hash_keys(matrix: &VectorMatrix, projections: &Projections, params: &ElshParams) -> Vec<u64> {
    let n = matrix.rows();
    let tables = params.tables;
    let k = params.hashes_per_table;
    // Divide rather than multiply by a precomputed reciprocal: the rounding
    // of `x * (1/b)` can differ from `x / b` in the last ulp, which moves
    // bucket boundaries and would break bit-parity with the reference path.
    let b = params.bucket_width;
    let mut keys = vec![0u64; n * tables];
    par::par_chunks_mut(&mut keys, tables, |start_row, chunk| {
        for (local, out) in chunk.chunks_mut(tables).enumerate() {
            let v = matrix.row(start_row + local);
            for (t, slot) in out.iter_mut().enumerate() {
                let mut key = 0xcbf2_9ce4_8422_2325u64;
                for j in 0..k {
                    let p = t * k + j;
                    let proj = crate::matrix::dot_f64_blocked(v, projections.dirs.row(p));
                    let bucket = ((proj + projections.offsets[p]) / b).floor() as i64;
                    key = mix(key ^ bucket as u64);
                }
                *slot = key;
            }
        }
    });
    keys
}

#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: &[f32], n: usize, spread: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| c + spread * (rng.gen::<f32>() - 0.5))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn identical_vectors_always_cluster_together() {
        let vectors = VectorMatrix::from_rows(&vec![vec![1.0, 2.0, 3.0]; 10]);
        let c = elsh_cluster(&vectors, &ElshParams::default());
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn well_separated_blobs_split() {
        let mut vs = blob(&[0.0, 0.0, 0.0, 0.0], 50, 0.05, 1);
        vs.extend(blob(&[10.0, 10.0, 10.0, 10.0], 50, 0.05, 2));
        let c = elsh_cluster(
            &VectorMatrix::from_rows(&vs),
            &ElshParams {
                bucket_width: 0.5,
                tables: 15,
                seed: 3,
                ..Default::default()
            },
        );
        // The two blobs must never be merged.
        for i in 0..50 {
            for j in 50..100 {
                assert_ne!(
                    c.assignment[i], c.assignment[j],
                    "blob members {i} and {j} were merged"
                );
            }
        }
        // And each blob should be (mostly) one cluster: with 15 tables the
        // OR rule gives near-certain recall at distance << b.
        assert!(c.num_clusters <= 4, "got {} clusters", c.num_clusters);
    }

    #[test]
    fn wider_buckets_merge_more() {
        let mut vs = blob(&[0.0; 4], 30, 0.2, 5);
        vs.extend(blob(&[2.0; 4], 30, 0.2, 6));
        let vs = VectorMatrix::from_rows(&vs);
        let narrow = elsh_cluster(
            &vs,
            &ElshParams {
                bucket_width: 0.3,
                tables: 10,
                seed: 7,
                ..Default::default()
            },
        );
        let wide = elsh_cluster(
            &vs,
            &ElshParams {
                bucket_width: 50.0,
                tables: 10,
                seed: 7,
                ..Default::default()
            },
        );
        assert!(wide.num_clusters <= narrow.num_clusters);
        assert_eq!(wide.num_clusters, 1, "huge buckets merge everything");
    }

    #[test]
    fn deterministic_per_seed() {
        let vs = VectorMatrix::from_rows(&blob(&[0.0; 8], 40, 1.0, 11));
        let p = ElshParams {
            bucket_width: 0.7,
            tables: 8,
            seed: 13,
            ..Default::default()
        };
        assert_eq!(elsh_cluster(&vs, &p), elsh_cluster(&vs, &p));
    }

    #[test]
    fn matches_reference_scalar_implementation() {
        // The flat-matrix parallel path must reproduce the seed's scalar
        // clustering bit-for-bit for any fixed seed.
        for seed in [0u64, 13, 0xE15E] {
            let vs = blob(&[0.0; 6], 120, 2.0, seed ^ 0xAB);
            let p = ElshParams {
                bucket_width: 0.9,
                tables: 12,
                hashes_per_table: 3,
                seed,
            };
            let fast = elsh_cluster(&VectorMatrix::from_rows(&vs), &p);
            let reference = crate::reference::elsh_cluster_scalar(&vs, &p);
            assert_eq!(fast, reference, "divergence at seed {seed}");
        }
    }

    #[test]
    fn empty_input() {
        let c = elsh_cluster(&VectorMatrix::new(0), &ElshParams::default());
        assert_eq!(c.num_clusters, 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        elsh_cluster(
            &VectorMatrix::from_rows(&[vec![1.0]]),
            &ElshParams {
                bucket_width: 0.0,
                tables: 1,
                seed: 0,
                ..Default::default()
            },
        );
    }
}
