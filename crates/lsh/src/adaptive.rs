//! Adaptive LSH parameterization (§4.2 "Adaptive parameterization").
//!
//! Before clustering, PG-HIVE samples "1% of the graph, or at least 10k
//! nodes (whichever is larger)" — capped at the population size — computes
//! the average pairwise Euclidean distance `μ` of the sample, and sets:
//!
//! - `b_base = 1.2 · μ` (the 1.2 factor avoids over-fragmentation),
//! - `b = b_base · α`, where `α = 0.8` for `L ≤ 3` labels, `1.0` for
//!   `4 ≤ L ≤ 10`, and `1.5` for `L > 10`,
//! - `T = b_base · max(5, α · min(25, log10 N))` for nodes and
//!   `T = b_base · max(3, α · min(20, log10 E))` for edges.
//!
//! The paper's wording — "compute the Euclidean distances between the
//! sampled elements and take their average as the distance scale μ" — leaves
//! the pairing strategy open. We interpret μ as the mean **nearest-neighbor**
//! distance within the sample: the **median** distance from a sampled
//! element to its closest sampled peer (median rather than mean so that
//! singleton types — elements with no same-type peer in the sample — do not
//! inflate the scale). This is the intra-type distance scale (most elements
//! have a same-type neighbor), which is what a bucket length must
//! straddle for `b = 1.2·μ` to keep same-type elements colliding while
//! separating types; the mean over *random* pairs would instead be dominated
//! by inter-type distances and `1.2·μ` would merge everything.
//!
//! # Deduplicated inputs
//!
//! The pipeline clusters *distinct signatures* but the paper's heuristics
//! are defined over the *element population* (duplicates and all — e.g. a
//! graph that is 90% one node type must see that mass in the sample).
//! Estimation therefore takes the distinct-row [`VectorMatrix`] plus an
//! optional `rep_of` map (element → distinct row); sampling is over
//! elements, distances are computed on their representative rows. Passing
//! `rep_of = None` means "rows are the population", and feeding the same
//! data either way produces **identical** parameters — the equivalence the
//! dedup fast path relies on.

use crate::matrix::VectorMatrix;
use crate::par;

/// Whether parameters are being derived for node or edge clustering — the
/// two use different `T` heuristics in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementClass {
    Nodes,
    Edges,
}

/// Knobs of the adaptive estimator.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Sample fraction of the population (paper: 1%).
    pub sample_fraction: f64,
    /// Minimum sample size (paper: 10_000; capped by `max_sample` for the
    /// quadratic nearest-neighbor scan).
    pub min_sample: usize,
    /// Hard cap on the sample used for the O(m²) nearest-neighbor scan.
    pub max_sample: usize,
    /// Seed for sampling.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            sample_fraction: 0.01,
            min_sample: 10_000,
            max_sample: 512,
            seed: 0xADA7,
        }
    }
}

/// The derived parameters, with the intermediate quantities exposed so that
/// Fig. 6 can mark the adaptive choice on its heatmaps.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveParams {
    /// Estimated distance scale μ.
    pub mu: f64,
    /// `b_base = 1.2 · μ`.
    pub b_base: f64,
    /// Label-count factor α.
    pub alpha: f64,
    /// Final bucket length `b = b_base · α`.
    pub bucket_width: f64,
    /// Number of hash tables `T`.
    pub tables: usize,
}

/// Label-count factor α (§4.2): tight buckets for few labels, wide for many.
pub fn alpha_for_label_count(labels: usize) -> f64 {
    if labels <= 3 {
        0.8
    } else if labels <= 10 {
        1.0
    } else {
        1.5
    }
}

/// Paper heuristic for the table count.
/// `T = b_base · max(k_min, α · min(k_max, log10 N))`, with
/// `(k_min, k_max) = (5, 25)` for nodes and `(3, 20)` for edges.
/// The result is clamped to `[1, 64]` to stay practical (the paper's
/// empirically useful range is `T ∈ [15, 35]`).
pub fn tables_heuristic(b_base: f64, alpha: f64, population: usize, class: ElementClass) -> usize {
    let (k_min, k_max) = match class {
        ElementClass::Nodes => (5.0, 25.0),
        ElementClass::Edges => (3.0, 20.0),
    };
    let log_n = if population > 1 {
        (population as f64).log10()
    } else {
        0.0
    };
    let t = b_base * f64::max(k_min, alpha * f64::min(k_max, log_n));
    (t.round() as usize).clamp(1, 64)
}

/// Derive adaptive parameters for the population described by
/// `(matrix, rep_of)` — see the module docs — and the number of distinct
/// labels `label_count` observed in the dataset.
pub fn derive_params(
    matrix: &VectorMatrix,
    rep_of: Option<&[u32]>,
    label_count: usize,
    class: ElementClass,
    config: &AdaptiveConfig,
) -> AdaptiveParams {
    let population = rep_of.map_or(matrix.rows(), <[u32]>::len);
    let mu = estimate_mu(matrix, rep_of, config);
    let b_base = 1.2 * mu;
    let alpha = alpha_for_label_count(label_count);
    // Guard degenerate data (all-identical vectors → μ = 0): fall back to a
    // unit bucket so LSH still runs; everything collides, which is correct.
    let bucket_width = if b_base > 1e-9 { b_base * alpha } else { 1.0 };
    let tables = tables_heuristic(b_base.max(1.0), alpha, population, class);
    AdaptiveParams {
        mu,
        b_base,
        alpha,
        bucket_width,
        tables,
    }
}

/// Estimate the distance scale μ: the median nearest-neighbor Euclidean
/// distance within a random sample of the population (see module docs for
/// why NN rather than random pairs, and median rather than mean).
pub fn estimate_mu(matrix: &VectorMatrix, rep_of: Option<&[u32]>, config: &AdaptiveConfig) -> f64 {
    let n = rep_of.map_or(matrix.rows(), <[u32]>::len);
    if n < 2 {
        return 0.0;
    }
    let row_of = |element: usize| rep_of.map_or(element, |r| r[element] as usize);
    let target = ((n as f64 * config.sample_fraction) as usize)
        .max(config.min_sample)
        .min(config.max_sample)
        .min(n);
    let mut state = config.seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    // Sample element indices without replacement via partial Fisher–Yates.
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..target {
        let j = i + (next() % (n - i) as u64) as usize;
        pool.swap(i, j);
    }
    let sample = &pool[..target];

    // O(m²) nearest-neighbor scan, parallel over sample rows.
    let mut nn = par::par_map_indexed(target, target, |i| {
        let a = matrix.row(row_of(sample[i]));
        let mut best = f64::INFINITY;
        for (j, &e) in sample.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = euclidean(a, matrix.row(row_of(e)));
            if d < best {
                best = d;
            }
        }
        best
    });
    nn.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Median (upper of the two middles for even counts, so a 50/50 split of
    // zero-duplicates and real spacings picks the spacing, not zero).
    nn[nn.len() / 2]
}

fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: Vec<Vec<f32>>) -> VectorMatrix {
        VectorMatrix::from_rows(&rows)
    }

    #[test]
    fn alpha_brackets() {
        assert_eq!(alpha_for_label_count(0), 0.8);
        assert_eq!(alpha_for_label_count(3), 0.8);
        assert_eq!(alpha_for_label_count(4), 1.0);
        assert_eq!(alpha_for_label_count(10), 1.0);
        assert_eq!(alpha_for_label_count(11), 1.5);
        assert_eq!(alpha_for_label_count(100), 1.5);
    }

    #[test]
    fn tables_respect_floors() {
        // Tiny population: log10 N small, floor kicks in.
        let t_nodes = tables_heuristic(1.0, 0.8, 10, ElementClass::Nodes);
        assert_eq!(t_nodes, 5);
        let t_edges = tables_heuristic(1.0, 0.8, 10, ElementClass::Edges);
        assert_eq!(t_edges, 3);
    }

    #[test]
    fn tables_grow_with_population_and_bbase() {
        let small = tables_heuristic(1.0, 1.0, 1_000, ElementClass::Nodes);
        let large = tables_heuristic(1.0, 1.0, 10_000_000, ElementClass::Nodes);
        assert!(large > small);
        let wide = tables_heuristic(3.0, 1.0, 10_000_000, ElementClass::Nodes);
        assert!(wide >= large);
        assert!(wide <= 64, "clamped");
    }

    #[test]
    fn mu_is_nearest_neighbor_scale() {
        // Points on a 1-D lattice spaced 1 apart: every point's nearest
        // neighbor is at distance 1, regardless of the lattice extent.
        let vs = mat((0..400).map(|i| vec![i as f32]).collect());
        let mu = estimate_mu(&vs, None, &AdaptiveConfig::default());
        assert!((mu - 1.0).abs() < 0.3, "mu = {mu}");
    }

    #[test]
    fn mu_ignores_intercluster_distance() {
        // Two tight blobs far apart: NN distances stay intra-blob.
        let mut vs = vec![vec![0.0f32, 0.0]; 100];
        vs.extend(vec![vec![100.0f32, 0.0]; 100]);
        let mu = estimate_mu(&mat(vs), None, &AdaptiveConfig::default());
        assert_eq!(mu, 0.0, "duplicates give zero NN distance");
    }

    #[test]
    fn mu_zero_for_identical_points() {
        let vs = mat(vec![vec![1.0f32, 1.0]; 100]);
        let mu = estimate_mu(&vs, None, &AdaptiveConfig::default());
        assert_eq!(mu, 0.0);
    }

    #[test]
    fn mu_handles_tiny_inputs() {
        assert_eq!(
            estimate_mu(&VectorMatrix::new(1), None, &AdaptiveConfig::default()),
            0.0
        );
        assert_eq!(
            estimate_mu(&mat(vec![vec![1.0f32]]), None, &AdaptiveConfig::default()),
            0.0
        );
        let two = mat(vec![vec![0.0f32], vec![3.0f32]]);
        let mu = estimate_mu(&two, None, &AdaptiveConfig::default());
        assert!((mu - 3.0).abs() < 1e-6);
    }

    #[test]
    fn derive_params_degenerate_data_falls_back() {
        let vs = mat(vec![vec![5.0f32; 4]; 50]);
        let p = derive_params(
            &vs,
            None,
            2,
            ElementClass::Nodes,
            &AdaptiveConfig::default(),
        );
        assert_eq!(p.bucket_width, 1.0, "fallback bucket");
        assert!(p.tables >= 1);
    }

    #[test]
    fn derive_params_reflects_scale() {
        // NN spacing of 2 along a line: b should be 1.2 * 2 * alpha.
        let vs = mat((0..300).map(|i| vec![(2 * i) as f32, 0.0]).collect());
        let p = derive_params(
            &vs,
            None,
            5,
            ElementClass::Nodes,
            &AdaptiveConfig::default(),
        );
        assert!((p.alpha - 1.0).abs() < 1e-12);
        assert!((p.mu - 2.0).abs() < 0.5, "mu = {}", p.mu);
        assert!((p.bucket_width - 1.2 * p.mu).abs() < 1e-9);
    }

    #[test]
    fn dedup_view_matches_expanded_population() {
        // 3 distinct rows, element population of 200 with skewed
        // multiplicities: parameters from (distinct, rep_of) must equal
        // parameters from the fully expanded matrix.
        let distinct = mat(vec![vec![0.0f32, 0.0], vec![5.0, 0.0], vec![0.0, 7.0]]);
        let rep_of: Vec<u32> = (0..200)
            .map(|i| if i % 10 == 0 { i as u32 % 3 } else { 0 })
            .collect();
        let expanded = mat(rep_of
            .iter()
            .map(|&r| distinct.row(r as usize).to_vec())
            .collect());
        let cfg = AdaptiveConfig::default();
        let a = derive_params(&distinct, Some(&rep_of), 4, ElementClass::Nodes, &cfg);
        let b = derive_params(&expanded, None, 4, ElementClass::Nodes, &cfg);
        assert_eq!(a, b);
    }
}
