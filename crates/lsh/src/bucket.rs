//! The shared bucketing sweep both LSH families end in: union all rows
//! that share a key within at least one group (a "group" is an ELSH table
//! or a MinHash band).
//!
//! Collision pairs are *collected* per group (parallel across groups —
//! each group's scan is independent) and *applied* in group-major,
//! index-major order, which is exactly the order a serial sweep produces;
//! the union-find therefore evolves identically regardless of thread
//! count. This ordering is determinism-critical — both families rely on
//! it for the "same seed → same clustering, parallel or not" contract.

use crate::fx::fx_map_with_capacity;
use crate::par;
use crate::unionfind::UnionFind;

/// `keys` is row-major `n × groups` (`keys[i · groups + g]`).
pub(crate) fn union_keyed_collisions(keys: &[u64], n: usize, groups: usize, uf: &mut UnionFind) {
    let per_group: Vec<Vec<(u32, u32)>> = par::par_map_indexed(groups, n, |g| {
        let mut buckets = fx_map_with_capacity::<u64, u32>(n.min(1 << 16));
        let mut pairs = Vec::new();
        for i in 0..n {
            let key = keys[i * groups + g];
            match buckets.get(&key) {
                Some(&first) => pairs.push((first, i as u32)),
                None => {
                    buckets.insert(key, i as u32);
                }
            }
        }
        pairs
    });
    for pairs in per_group {
        for (first, i) in pairs {
            uf.union(first as usize, i as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_rows_sharing_any_group_key() {
        // 3 rows × 2 groups: rows 0 and 2 share a key in group 1 only.
        let keys = vec![10, 77, 20, 30, 40, 77];
        let mut uf = UnionFind::new(3);
        union_keyed_collisions(&keys, 3, 2, &mut uf);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 1));
    }
}
