//! Flat row-major vector storage for the LSH hot path.
//!
//! The seed implementation hashed `&[Vec<f32>]` — one heap allocation per
//! element, pointer-chasing in the inner projection loop. [`VectorMatrix`]
//! stores all vectors contiguously (`rows × dim` in one `Vec<f32>`), so the
//! GEMV-style projection sweep in [`crate::elsh`] streams memory linearly
//! and the whole batch can be chunked across threads without touching
//! allocator state.

/// A dense `rows × dim` matrix of `f32`, row-major and contiguous.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VectorMatrix {
    data: Vec<f32>,
    dim: usize,
    rows: usize,
}

impl VectorMatrix {
    /// An empty matrix whose rows will have dimension `dim`.
    pub fn new(dim: usize) -> Self {
        VectorMatrix {
            data: Vec::new(),
            dim,
            rows: 0,
        }
    }

    /// Empty matrix with storage reserved for `rows` rows.
    pub fn with_capacity(rows: usize, dim: usize) -> Self {
        VectorMatrix {
            data: Vec::with_capacity(rows * dim),
            dim,
            rows: 0,
        }
    }

    /// Build from per-element vectors (all must share a dimension).
    ///
    /// # Panics
    /// Panics if rows disagree on dimension.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut m = VectorMatrix::with_capacity(rows.len(), dim);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if `row.len() != self.dim()`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Append one row given as an iterator writing directly into the
    /// backing storage (no intermediate allocation).
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut [f32])) {
        let start = self.data.len();
        self.data.resize(start + self.dim, 0.0);
        fill(&mut self.data[start..]);
        self.rows += 1;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The whole backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Iterate rows in order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.rows).map(move |i| self.row(i))
    }
}

/// Accumulator lanes of the blocked dot kernel. Eight f64 lanes fill two
/// AVX2 registers (or four NEON ones) — wide enough to hide FP add latency,
/// narrow enough to leave registers for the loads.
const DOT_LANES: usize = 8;

/// Blocked dot product of two f32 rows with f64 accumulation.
///
/// The row elements are processed in fixed-width blocks of [`DOT_LANES`]
/// with an explicit accumulator array, breaking the serial dependency chain
/// of the scalar loop so the autovectorizer can lift the
/// multiply-accumulate to SIMD. Each `(f32 as f64) * (f32 as f64)` product
/// is **exact** (53-bit mantissa holds a 24×24-bit product), so the only
/// deviation from the reference's index-order sum
/// ([`crate::reference::elsh_cluster_scalar`]) is f64 re-association —
/// a relative perturbation on the order of 1e-16. Downstream parity is
/// therefore argued at the *bucket* level, not the raw-dot level: a flip
/// needs a projection within ~1e-16 relative of a bucket boundary, which
/// the pinned-seed oracle comparisons (unit tests and the bench gate)
/// verify never happens on the tracked datasets.
#[inline]
pub(crate) fn dot_f64_blocked(v: &[f32], dir: &[f32]) -> f64 {
    debug_assert_eq!(v.len(), dir.len());
    let mut acc = [0.0f64; DOT_LANES];
    let mut vb = v.chunks_exact(DOT_LANES);
    let mut db = dir.chunks_exact(DOT_LANES);
    for (cv, cd) in vb.by_ref().zip(db.by_ref()) {
        for l in 0..DOT_LANES {
            acc[l] += (cv[l] as f64) * (cd[l] as f64);
        }
    }
    let mut tail = 0.0f64;
    for (x, a) in vb.remainder().iter().zip(db.remainder()) {
        tail += (*x as f64) * (*a as f64);
    }
    // Fixed-shape tree reduction: deterministic combine order regardless of
    // input length.
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = VectorMatrix::from_rows(&rows);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 2);
        assert!(!m.is_empty());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row(i), r.as_slice());
        }
        assert_eq!(m.iter_rows().count(), 3);
    }

    #[test]
    fn empty_matrix() {
        let m = VectorMatrix::from_rows(&[]);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.dim(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn push_row_with_fills_in_place() {
        let mut m = VectorMatrix::new(3);
        m.push_row_with(|r| {
            r[0] = 1.0;
            r[2] = 2.0;
        });
        assert_eq!(m.row(0), &[1.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn mismatched_rows_panic() {
        VectorMatrix::from_rows(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
