//! MinHash LSH with banding — Broder's scheme, cited as [64] (MMDS ch. 3).
//!
//! Elements are represented as sets of `u64` feature ids (property keys,
//! label tokens, endpoint tokens — the caller decides). For each of
//! `bands × rows_per_band` hash functions `h_i(x) = π_i(x)` we keep the
//! minimum over the set; a *band* is `rows_per_band` consecutive signature
//! entries hashed together, and two sets collide when any band agrees:
//! `P(collide) = 1 − (1 − J^r)^B` for Jaccard similarity `J`.
//!
//! The paper exposes a single parameter `T` (number of hash tables); here a
//! table is a band, and `rows_per_band` defaults to 2, giving the S-curve a
//! usable threshold while keeping signatures short.

use crate::unionfind::UnionFind;
use crate::Clustering;
use std::collections::HashMap;

/// Parameters of MinHash LSH.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashParams {
    /// Number of bands (`T` in the paper — each band is one "hash table").
    pub bands: usize,
    /// Rows per band (`r`). Collision threshold ≈ `(1/B)^(1/r)`.
    pub rows_per_band: usize,
    /// Seed for the hash-permutation family.
    pub seed: u64,
}

impl Default for MinHashParams {
    fn default() -> Self {
        Self {
            bands: 20,
            rows_per_band: 2,
            seed: 0x314,
        }
    }
}

/// Compute the MinHash signature of one set under `k` hash functions derived
/// from `seed`. The empty set gets a signature of `u64::MAX` entries, so all
/// empty sets collide with each other and (almost surely) nothing else.
pub fn signature(set: &[u64], k: usize, seed: u64) -> Vec<u64> {
    let mut sig = vec![u64::MAX; k];
    for (i, s) in sig.iter_mut().enumerate() {
        let h_seed = mix(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for &x in set {
            let h = mix(x ^ h_seed);
            if h < *s {
                *s = h;
            }
        }
    }
    sig
}

/// Exact Jaccard similarity between two sets (sorted or not).
pub fn jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<u64> = a.iter().copied().collect();
    let sb: std::collections::HashSet<u64> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Cluster sets with banded MinHash LSH. Returns a [`Clustering`] over the
/// input indices. Complexity `O(N·T)` per §4.7 (signature length is
/// `bands · rows_per_band`, a constant).
///
/// # Panics
/// Panics if `bands == 0` or `rows_per_band == 0`.
pub fn minhash_cluster(sets: &[Vec<u64>], params: &MinHashParams) -> Clustering {
    assert!(params.bands > 0, "need at least one band");
    assert!(params.rows_per_band > 0, "need at least one row per band");
    let n = sets.len();
    if n == 0 {
        return Clustering {
            assignment: vec![],
            num_clusters: 0,
        };
    }

    let k = params.bands * params.rows_per_band;
    let sigs: Vec<Vec<u64>> = sets
        .iter()
        .map(|s| signature(s, k, params.seed))
        .collect();

    let mut uf = UnionFind::new(n);
    let mut buckets: HashMap<u64, usize> = HashMap::new();
    for band in 0..params.bands {
        buckets.clear();
        let lo = band * params.rows_per_band;
        let hi = lo + params.rows_per_band;
        for (i, sig) in sigs.iter().enumerate() {
            let mut key = 0xcbf2_9ce4_8422_2325u64 ^ (band as u64);
            for &row in &sig[lo..hi] {
                key = mix(key ^ row);
            }
            match buckets.get(&key) {
                Some(&first) => {
                    uf.union(first, i);
                }
                None => {
                    buckets.insert(key, i);
                }
            }
        }
    }

    Clustering::from_union_find(&mut uf)
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_always_collide() {
        let sets = vec![vec![1, 2, 3]; 8];
        let c = minhash_cluster(&sets, &MinHashParams::default());
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn disjoint_sets_never_collide() {
        let sets = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let c = minhash_cluster(&sets, &MinHashParams::default());
        assert_eq!(c.num_clusters, 3);
    }

    #[test]
    fn empty_sets_collide_with_each_other() {
        let sets = vec![vec![], vec![], vec![1, 2, 3]];
        let c = minhash_cluster(&sets, &MinHashParams::default());
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn signature_estimates_jaccard() {
        // Agreement fraction of minhash signatures ≈ Jaccard similarity.
        let a: Vec<u64> = (0..100).collect();
        let b: Vec<u64> = (50..150).collect(); // J = 50/150 = 1/3
        let k = 2000;
        let sa = signature(&a, k, 9);
        let sb = signature(&b, k, 9);
        let agree = sa.iter().zip(&sb).filter(|(x, y)| x == y).count();
        let est = agree as f64 / k as f64;
        let true_j = jaccard(&a, &b);
        assert!(
            (est - true_j).abs() < 0.05,
            "estimate {est} vs true {true_j}"
        );
    }

    #[test]
    fn high_jaccard_sets_cluster_together() {
        // J = 9/11 ≈ 0.82; with r=2, B=20: P ≈ 1-(1-0.67)^20 ≈ 1.
        let sets = vec![
            (0..10).collect::<Vec<u64>>(),
            (1..11).collect::<Vec<u64>>(),
        ];
        let c = minhash_cluster(&sets, &MinHashParams::default());
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn low_jaccard_sets_usually_split() {
        // J = 1/19 ≈ 0.05; with r=2, B=20: P ≈ 1-(1-0.0028)^20 ≈ 0.05.
        let sets = vec![
            (0..10).collect::<Vec<u64>>(),
            (9..19).collect::<Vec<u64>>(),
        ];
        let c = minhash_cluster(
            &sets,
            &MinHashParams {
                bands: 20,
                rows_per_band: 2,
                seed: 21,
            },
        );
        assert_eq!(c.num_clusters, 2);
    }

    #[test]
    fn jaccard_edge_cases() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[2, 3]), 1.0 / 3.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let sets: Vec<Vec<u64>> = (0..20).map(|i| vec![i, i + 1, i % 5]).collect();
        let p = MinHashParams::default();
        assert_eq!(minhash_cluster(&sets, &p), minhash_cluster(&sets, &p));
    }

    #[test]
    #[should_panic(expected = "band")]
    fn zero_bands_panics() {
        minhash_cluster(&[vec![1]], &MinHashParams {
            bands: 0,
            rows_per_band: 1,
            seed: 0,
        });
    }
}
