//! MinHash LSH with banding — Broder's scheme, cited as \[64\] (MMDS ch. 3).
//!
//! Elements are represented as sets of `u64` feature ids (property keys,
//! label tokens, endpoint tokens — the caller decides). For each of
//! `bands × rows_per_band` hash functions `h_i(x) = π_i(x)` we keep the
//! minimum over the set; a *band* is `rows_per_band` consecutive signature
//! entries hashed together, and two sets collide when any band agrees:
//! `P(collide) = 1 − (1 − J^r)^B` for Jaccard similarity `J`.
//!
//! The paper exposes a single parameter `T` (number of hash tables); here a
//! table is a band, and `rows_per_band` defaults to 2, giving the S-curve a
//! usable threshold while keeping signatures short.
//!
//! # Execution strategy
//!
//! Signature + band-key computation is a pure per-set function, computed
//! into one flat `n × bands` key matrix in parallel chunks
//! ([`crate::par`]); banding then unions collisions per band through an
//! [`FxHashMap`](crate::fx::FxHashMap) in a fixed order, so results are
//! byte-identical to the sequential reference
//! ([`crate::reference::minhash_cluster_scalar`]) for any seed and thread
//! count.

use crate::unionfind::UnionFind;
use crate::{par, Clustering};

/// Parameters of MinHash LSH.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashParams {
    /// Number of bands (`T` in the paper — each band is one "hash table").
    pub bands: usize,
    /// Rows per band (`r`). Collision threshold ≈ `(1/B)^(1/r)`.
    pub rows_per_band: usize,
    /// Seed for the hash-permutation family.
    pub seed: u64,
}

impl Default for MinHashParams {
    fn default() -> Self {
        Self {
            bands: 20,
            rows_per_band: 2,
            seed: 0x314,
        }
    }
}

/// Compute the MinHash signature of one set into `out` (`out.len()` hash
/// functions derived from `seed`). The empty set gets a signature of
/// `u64::MAX` entries, so all empty sets collide with each other and
/// (almost surely) nothing else.
pub fn signature_into(set: &[u64], seed: u64, out: &mut [u64]) {
    // Hash functions are processed in fixed-width blocks: one pass over the
    // set updates SIG_BLOCK independent minima at once, so the set is
    // streamed k/SIG_BLOCK times instead of k and the min-chains have no
    // serial dependency between lanes. `min` is order-invariant on
    // integers, so the signature is bit-identical to the per-function loop.
    const SIG_BLOCK: usize = 8;
    let mut blocks = out.chunks_exact_mut(SIG_BLOCK);
    let mut i = 0usize;
    for block in blocks.by_ref() {
        let mut seeds = [0u64; SIG_BLOCK];
        let mut best = [u64::MAX; SIG_BLOCK];
        for (l, s) in seeds.iter_mut().enumerate() {
            *s = mix(seed ^ ((i + l) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        for &x in set {
            for l in 0..SIG_BLOCK {
                let h = mix(x ^ seeds[l]);
                if h < best[l] {
                    best[l] = h;
                }
            }
        }
        block.copy_from_slice(&best);
        i += SIG_BLOCK;
    }
    for s in blocks.into_remainder() {
        let h_seed = mix(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut best = u64::MAX;
        for &x in set {
            let h = mix(x ^ h_seed);
            if h < best {
                best = h;
            }
        }
        *s = best;
        i += 1;
    }
}

/// Allocating variant of [`signature_into`].
pub fn signature(set: &[u64], k: usize, seed: u64) -> Vec<u64> {
    let mut sig = vec![u64::MAX; k];
    signature_into(set, seed, &mut sig);
    sig
}

/// Exact Jaccard similarity between two sets (sorted or not).
pub fn jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<u64> = a.iter().copied().collect();
    let sb: std::collections::HashSet<u64> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Cluster sets with banded MinHash LSH. Returns a [`Clustering`] over the
/// input indices. Complexity `O(N·T)` per §4.7 (signature length is
/// `bands · rows_per_band`, a constant); signatures are hashed in parallel
/// chunks. Same seed → same clustering, with or without the `parallel`
/// feature.
///
/// # Panics
/// Panics if `bands == 0` or `rows_per_band == 0`.
pub fn minhash_cluster(sets: &[Vec<u64>], params: &MinHashParams) -> Clustering {
    assert!(params.bands > 0, "need at least one band");
    assert!(params.rows_per_band > 0, "need at least one row per band");
    let n = sets.len();
    if n == 0 {
        return Clustering {
            assignment: vec![],
            num_clusters: 0,
        };
    }

    let keys = band_keys(sets, params);
    let mut uf = UnionFind::new(n);
    crate::bucket::union_keyed_collisions(&keys, n, params.bands, &mut uf);
    Clustering::from_union_find(&mut uf)
}

/// Flat `n × bands` band-key matrix (row-major: `keys[i·B + band]`),
/// computed per set in parallel chunks. Each set's signature lives in a
/// thread-local scratch buffer — no per-set allocation.
fn band_keys(sets: &[Vec<u64>], params: &MinHashParams) -> Vec<u64> {
    let bands = params.bands;
    let r = params.rows_per_band;
    let k = bands * r;
    let mut keys = vec![0u64; sets.len() * bands];
    par::par_chunks_mut(&mut keys, bands, |start_row, chunk| {
        let mut sig = vec![u64::MAX; k];
        for (local, out) in chunk.chunks_mut(bands).enumerate() {
            signature_into(&sets[start_row + local], params.seed, &mut sig);
            for (band, slot) in out.iter_mut().enumerate() {
                let mut key = 0xcbf2_9ce4_8422_2325u64 ^ (band as u64);
                for &row in &sig[band * r..(band + 1) * r] {
                    key = mix(key ^ row);
                }
                *slot = key;
            }
        }
    });
    keys
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_always_collide() {
        let sets = vec![vec![1, 2, 3]; 8];
        let c = minhash_cluster(&sets, &MinHashParams::default());
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn disjoint_sets_never_collide() {
        let sets = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let c = minhash_cluster(&sets, &MinHashParams::default());
        assert_eq!(c.num_clusters, 3);
    }

    #[test]
    fn empty_sets_collide_with_each_other() {
        let sets = vec![vec![], vec![], vec![1, 2, 3]];
        let c = minhash_cluster(&sets, &MinHashParams::default());
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn signature_estimates_jaccard() {
        // Agreement fraction of minhash signatures ≈ Jaccard similarity.
        let a: Vec<u64> = (0..100).collect();
        let b: Vec<u64> = (50..150).collect(); // J = 50/150 = 1/3
        let k = 2000;
        let sa = signature(&a, k, 9);
        let sb = signature(&b, k, 9);
        let agree = sa.iter().zip(&sb).filter(|(x, y)| x == y).count();
        let est = agree as f64 / k as f64;
        let true_j = jaccard(&a, &b);
        assert!(
            (est - true_j).abs() < 0.05,
            "estimate {est} vs true {true_j}"
        );
    }

    #[test]
    fn high_jaccard_sets_cluster_together() {
        // J = 9/11 ≈ 0.82; with r=2, B=20: P ≈ 1-(1-0.67)^20 ≈ 1.
        let sets = vec![(0..10).collect::<Vec<u64>>(), (1..11).collect::<Vec<u64>>()];
        let c = minhash_cluster(&sets, &MinHashParams::default());
        assert_eq!(c.num_clusters, 1);
    }

    #[test]
    fn low_jaccard_sets_usually_split() {
        // J = 1/19 ≈ 0.05; with r=2, B=20: P ≈ 1-(1-0.0028)^20 ≈ 0.05.
        let sets = vec![(0..10).collect::<Vec<u64>>(), (9..19).collect::<Vec<u64>>()];
        let c = minhash_cluster(
            &sets,
            &MinHashParams {
                bands: 20,
                rows_per_band: 2,
                seed: 21,
            },
        );
        assert_eq!(c.num_clusters, 2);
    }

    #[test]
    fn jaccard_edge_cases() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[2, 3]), 1.0 / 3.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let sets: Vec<Vec<u64>> = (0..20).map(|i| vec![i, i + 1, i % 5]).collect();
        let p = MinHashParams::default();
        assert_eq!(minhash_cluster(&sets, &p), minhash_cluster(&sets, &p));
    }

    #[test]
    fn matches_reference_scalar_implementation() {
        for seed in [0u64, 21, 0x314] {
            let sets: Vec<Vec<u64>> = (0..150)
                .map(|i| (0..(i % 7 + 1)).map(|j| (i % 13) * 50 + j).collect())
                .collect();
            let p = MinHashParams {
                bands: 16,
                rows_per_band: 3,
                seed,
            };
            let fast = minhash_cluster(&sets, &p);
            let reference = crate::reference::minhash_cluster_scalar(&sets, &p);
            assert_eq!(fast, reference, "divergence at seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "band")]
    fn zero_bands_panics() {
        minhash_cluster(
            &[vec![1]],
            &MinHashParams {
                bands: 0,
                rows_per_band: 1,
                seed: 0,
            },
        );
    }
}
