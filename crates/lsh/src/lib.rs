//! # pg-hive-lsh
//!
//! Locality-Sensitive Hashing substrate for PG-HIVE (§4.2 of the paper).
//!
//! Two families are provided, matching the paper's two PG-HIVE variants:
//!
//! - [`elsh`] — Euclidean LSH ("p-stable" / bucketed random projections,
//!   Datar et al.) over the hybrid dense vectors of §4.1. Parameters: bucket
//!   length `b` and number of hash tables `T`, combined under the OR rule.
//! - [`minhash`] — MinHash with banding over set representations, for
//!   Jaccard similarity.
//!
//! Clusters are the connected components of the "collided in at least one
//! table/band" relation, computed with a union-find ([`unionfind`]).
//!
//! [`adaptive`] implements the paper's adaptive parameterization: sample the
//! data to estimate the distance scale `μ`, set `b_base = 1.2·μ`, adjust by
//! the label-count factor `α`, and derive `T` from dataset size
//! (§4.2 "Adaptive parameterization").
//!
//! [`probability`] provides the closed-form collision probabilities used to
//! reason about parameter effects (and tested against simulation).
//!
//! ## Execution model
//!
//! Dense vectors live in a flat row-major [`VectorMatrix`] (one allocation
//! for the whole batch) and both families hash through precomputed
//! projection/permutation banks with the per-element work chunked across
//! threads ([`par`], `parallel` feature — **on by default**). The
//! determinism contract is strict: *same seed → same clustering*, with or
//! without the feature, verified bit-for-bit against the seed's sequential
//! scalar implementations preserved in [`mod@reference`].

pub mod adaptive;
mod bucket;
pub mod elsh;
pub mod fx;
pub mod matrix;
pub mod minhash;
pub mod par;
pub mod probability;
pub mod reference;
pub mod unionfind;

pub use adaptive::{AdaptiveConfig, AdaptiveParams, ElementClass};
pub use elsh::{elsh_cluster, ElshParams, Projections};
pub use matrix::VectorMatrix;
pub use minhash::{minhash_cluster, MinHashParams};
pub use unionfind::UnionFind;

/// A clustering of `n` elements: `assignment[i]` is the dense cluster id of
/// element `i`, ids in `0..num_clusters`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    pub assignment: Vec<u32>,
    pub num_clusters: usize,
}

impl Clustering {
    /// Group element indices by cluster id.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_clusters];
        for (i, &c) in self.assignment.iter().enumerate() {
            groups[c as usize].push(i);
        }
        groups
    }

    /// Map a clustering of distinct representatives back onto elements:
    /// element `i` gets the cluster of its representative `rep_of[i]`.
    /// Cluster ids and count are preserved (every representative has at
    /// least one element when `rep_of` is a surjection onto rows).
    pub fn broadcast(&self, rep_of: &[u32]) -> Clustering {
        Clustering {
            assignment: rep_of
                .iter()
                .map(|&r| self.assignment[r as usize])
                .collect(),
            num_clusters: self.num_clusters,
        }
    }

    /// Compact single-token text encoding `num_clusters:a0,a1,...` (an
    /// empty clustering encodes as `0:`) — used by snapshot persistence of
    /// cached clusterings. [`Clustering::decode_compact`] inverts it.
    ///
    /// ```
    /// use pg_hive_lsh::Clustering;
    /// let c = Clustering { assignment: vec![0, 1, 0], num_clusters: 2 };
    /// let text = c.encode_compact();
    /// assert_eq!(text, "2:0,1,0");
    /// assert_eq!(Clustering::decode_compact(&text).unwrap(), c);
    /// ```
    pub fn encode_compact(&self) -> String {
        let mut out = format!("{}:", self.num_clusters);
        for (i, a) in self.assignment.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&a.to_string());
        }
        out
    }

    /// Decode [`Clustering::encode_compact`] output. Rejects malformed
    /// text and assignments referencing ids outside `0..num_clusters`.
    pub fn decode_compact(s: &str) -> Result<Clustering, String> {
        let (count, rest) = s
            .split_once(':')
            .ok_or_else(|| format!("clustering '{s}' has no ':' separator"))?;
        let num_clusters: usize = count
            .parse()
            .map_err(|_| format!("cluster count '{count}' is not a usize"))?;
        let assignment: Vec<u32> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|a| {
                    a.parse::<u32>()
                        .map_err(|_| format!("cluster id '{a}' is not a u32"))
                })
                .collect::<Result<_, _>>()?
        };
        if let Some(&bad) = assignment.iter().find(|&&a| a as usize >= num_clusters) {
            return Err(format!("cluster id {bad} out of range 0..{num_clusters}"));
        }
        Ok(Clustering {
            assignment,
            num_clusters,
        })
    }

    /// Build from a union-find over `n` elements.
    pub fn from_union_find(uf: &mut UnionFind) -> Self {
        let n = uf.len();
        let mut remap: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(n);
        for i in 0..n {
            let root = uf.find(i);
            let next = remap.len() as u32;
            let id = *remap.entry(root).or_insert(next);
            assignment.push(id);
        }
        Clustering {
            assignment,
            num_clusters: remap.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_elements() {
        let c = Clustering {
            assignment: vec![0, 1, 0, 2, 1],
            num_clusters: 3,
        };
        let g = c.groups();
        assert_eq!(g, vec![vec![0, 2], vec![1, 4], vec![3]]);
    }

    #[test]
    fn compact_codec_round_trips_and_rejects_garbage() {
        for c in [
            Clustering {
                assignment: vec![0, 1, 0, 2, 1],
                num_clusters: 3,
            },
            Clustering {
                assignment: Vec::new(),
                num_clusters: 0,
            },
        ] {
            assert_eq!(Clustering::decode_compact(&c.encode_compact()).unwrap(), c);
        }
        assert!(Clustering::decode_compact("no separator").is_err());
        assert!(Clustering::decode_compact("x:0").is_err());
        assert!(Clustering::decode_compact("1:0,nope").is_err());
        assert!(
            Clustering::decode_compact("1:0,1").is_err(),
            "id outside 0..num_clusters must be rejected"
        );
    }

    #[test]
    fn from_union_find_densifies_ids() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 3);
        let c = Clustering::from_union_find(&mut uf);
        assert_eq!(c.num_clusters, 3);
        assert_eq!(c.assignment[0], c.assignment[3]);
        assert_ne!(c.assignment[1], c.assignment[2]);
    }
}
