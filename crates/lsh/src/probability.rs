//! Closed-form LSH collision probabilities (§4.2 "Collision probabilities
//! and parameter effects").
//!
//! For Euclidean LSH with bucket length `b`, the single-table collision
//! probability of two points at distance `d` is (Datar et al. 2004):
//!
//! `p_b(d) = 1 − 2Φ(−b/d) − (2d / (√(2π)·b)) · (1 − exp(−b²/(2d²)))`
//!
//! which decreases in `d` and increases in `b`. Under the OR rule over `T`
//! tables: `P_{b,T}(d) = 1 − (1 − p_b(d))^T`.
//!
//! For MinHash, one hash function collides with probability exactly the
//! Jaccard similarity `J`; with banding (`r` rows, `B` bands):
//! `P = 1 − (1 − J^r)^B`.

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ≈ 1.5e−7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (A&S 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Single-table Euclidean-LSH collision probability `p_b(d)`.
///
/// Returns 1.0 at `d == 0` and tends to 0 as `d → ∞`.
///
/// # Panics
/// Panics if `b <= 0` or `d < 0`.
pub fn elsh_collision_prob(d: f64, b: f64) -> f64 {
    assert!(b > 0.0, "bucket length must be positive");
    assert!(d >= 0.0, "distance must be non-negative");
    if d == 0.0 {
        return 1.0;
    }
    let r = b / d;
    let p = 1.0
        - 2.0 * normal_cdf(-r)
        - (2.0 / (std::f64::consts::TAU.sqrt() * r)) * (1.0 - (-(r * r) / 2.0).exp());
    p.clamp(0.0, 1.0)
}

/// OR-rule collision probability over `t` tables:
/// `P_{b,T}(d) = 1 − (1 − p_b(d))^T`.
pub fn elsh_or_rule(d: f64, b: f64, t: usize) -> f64 {
    let p = elsh_collision_prob(d, b);
    1.0 - (1.0 - p).powi(t as i32)
}

/// Banded MinHash collision probability `1 − (1 − J^r)^B`.
///
/// # Panics
/// Panics if `j` is outside `[0, 1]`.
pub fn minhash_band_prob(j: f64, rows: usize, bands: usize) -> f64 {
    assert!((0.0..=1.0).contains(&j), "Jaccard must be in [0,1]");
    1.0 - (1.0 - j.powi(rows as i32)).powi(bands as i32)
}

/// The S-curve threshold of banded MinHash, `(1/B)^(1/r)` — the similarity
/// at which collision probability is ≈ 1 − 1/e.
pub fn minhash_threshold(rows: usize, bands: usize) -> f64 {
    (1.0 / bands as f64).powf(1.0 / rows as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn elsh_prob_monotone_in_distance() {
        let b = 1.0;
        let mut prev = 1.0;
        for i in 1..50 {
            let d = i as f64 * 0.2;
            let p = elsh_collision_prob(d, b);
            assert!(p <= prev + 1e-12, "p_b(d) must decrease in d");
            prev = p;
        }
    }

    #[test]
    fn elsh_prob_monotone_in_bucket_width() {
        let d = 1.0;
        let mut prev = 0.0;
        for i in 1..50 {
            let b = i as f64 * 0.2;
            let p = elsh_collision_prob(d, b);
            assert!(p >= prev - 1e-12, "p_b(d) must increase in b");
            prev = p;
        }
    }

    #[test]
    fn or_rule_increases_with_tables() {
        let p1 = elsh_or_rule(1.0, 0.5, 1);
        let p5 = elsh_or_rule(1.0, 0.5, 5);
        let p25 = elsh_or_rule(1.0, 0.5, 25);
        assert!(p1 < p5 && p5 < p25);
        assert!(p25 <= 1.0);
    }

    #[test]
    fn elsh_prob_matches_simulation() {
        // Monte-Carlo check of the closed form: two points at distance d on
        // a random Gaussian projection with random offset.
        let d = 1.5;
        let b = 2.0;
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 200_000;
        let mut collisions = 0;
        for _ in 0..trials {
            // 1-D reduction: projection of the difference vector is N(0, d²).
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let delta = g * d;
            let offset: f64 = rng.gen::<f64>() * b;
            let h1 = (offset / b).floor();
            let h2 = ((delta + offset) / b).floor();
            if h1 == h2 {
                collisions += 1;
            }
        }
        let sim = collisions as f64 / trials as f64;
        let closed = elsh_collision_prob(d, b);
        assert!(
            (sim - closed).abs() < 0.01,
            "simulated {sim} vs closed-form {closed}"
        );
    }

    #[test]
    fn minhash_band_prob_scurve() {
        // Below threshold ≈ low, above ≈ high.
        let t = minhash_threshold(2, 20); // ≈ 0.224
        assert!(minhash_band_prob(t / 4.0, 2, 20) < 0.2);
        assert!(minhash_band_prob((3.0 * t).min(1.0), 2, 20) > 0.9);
        assert_eq!(minhash_band_prob(0.0, 2, 20), 0.0);
        assert_eq!(minhash_band_prob(1.0, 2, 20), 1.0);
    }

    #[test]
    #[should_panic(expected = "bucket length")]
    fn invalid_bucket_panics() {
        elsh_collision_prob(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "Jaccard")]
    fn invalid_jaccard_panics() {
        minhash_band_prob(1.5, 2, 20);
    }
}
