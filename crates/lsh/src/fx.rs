//! FxHash — the rustc hash function, vendored in-tree (the `rustc-hash`
//! crate is unavailable offline). Bucket keys in [`crate::elsh`] and
//! [`crate::minhash`] are already well-mixed 64-bit values, so the default
//! SipHash's DoS resistance buys nothing here and its per-lookup cost is
//! pure overhead on the `O(N·T)` bucketing sweep.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (the algorithm used by rustc).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// An `FxHashMap` with reserved capacity.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_is_deterministic() {
        let mut m: FxHashMap<u64, usize> = fx_map_with_capacity(8);
        for i in 0..100u64 {
            m.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&0], 0);
    }

    #[test]
    fn hasher_mixes_u64s() {
        let mut a = FxHasher::default();
        a.write_u64(1);
        let mut b = FxHasher::default();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }
}
