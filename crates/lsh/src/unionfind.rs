//! Union-find (disjoint-set forest) with path halving and union by size.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grandparent = self.parent[self.parent[x] as usize];
            self.parent[x] = grandparent;
            x = grandparent as usize;
        }
        x
    }

    /// Merge the sets containing `a` and `b`; returns true if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.components(), 3);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn empty_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
    }
}
