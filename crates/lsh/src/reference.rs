//! The seed's scalar LSH implementations, kept verbatim as (a) the perf
//! baseline that `BENCH_lsh.json` tracks speedups against and (b) the
//! equality oracle for the flat-matrix parallel kernels: for any fixed seed
//! the optimized paths must reproduce these clusterings bit-for-bit.
//!
//! Not part of the supported API — everything here is sequential and
//! allocation-heavy by design.

use crate::elsh::{gaussian, mix, ElshParams};
use crate::minhash::MinHashParams;
use crate::unionfind::UnionFind;
use crate::Clustering;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// The seed's per-element `Vec<Vec<f32>>` ELSH loop.
pub fn elsh_cluster_scalar(vectors: &[Vec<f32>], params: &ElshParams) -> Clustering {
    assert!(params.bucket_width > 0.0, "bucket width must be positive");
    assert!(params.tables > 0, "need at least one hash table");
    let n = vectors.len();
    if n == 0 {
        return Clustering {
            assignment: vec![],
            num_clusters: 0,
        };
    }
    let dim = vectors[0].len();
    assert!(
        vectors.iter().all(|v| v.len() == dim),
        "all vectors must share a dimension"
    );

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut uf = UnionFind::new(n);
    let mut buckets: HashMap<u64, usize> = HashMap::new();
    let k = params.hashes_per_table;

    for _table in 0..params.tables {
        let dirs: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..dim).map(|_| gaussian(&mut rng)).collect())
            .collect();
        let offsets: Vec<f64> = (0..k)
            .map(|_| Uniform::new(0.0, params.bucket_width).sample(&mut rng))
            .collect();

        buckets.clear();
        for (i, v) in vectors.iter().enumerate() {
            let mut key = 0xcbf2_9ce4_8422_2325u64;
            for (dir, &offset) in dirs.iter().zip(&offsets) {
                let proj: f64 = v
                    .iter()
                    .zip(dir)
                    .map(|(x, a)| (*x as f64) * (*a as f64))
                    .sum();
                let bucket = ((proj + offset) / params.bucket_width).floor() as i64;
                key = mix(key ^ bucket as u64);
            }
            match buckets.get(&key) {
                Some(&first) => {
                    uf.union(first, i);
                }
                None => {
                    buckets.insert(key, i);
                }
            }
        }
    }

    Clustering::from_union_find(&mut uf)
}

/// The seed's sequential MinHash banding loop.
pub fn minhash_cluster_scalar(sets: &[Vec<u64>], params: &MinHashParams) -> Clustering {
    assert!(params.bands > 0, "need at least one band");
    assert!(params.rows_per_band > 0, "need at least one row per band");
    let n = sets.len();
    if n == 0 {
        return Clustering {
            assignment: vec![],
            num_clusters: 0,
        };
    }

    let k = params.bands * params.rows_per_band;
    let sigs: Vec<Vec<u64>> = sets
        .iter()
        .map(|s| crate::minhash::signature(s, k, params.seed))
        .collect();

    let mut uf = UnionFind::new(n);
    let mut buckets: HashMap<u64, usize> = HashMap::new();
    for band in 0..params.bands {
        buckets.clear();
        let lo = band * params.rows_per_band;
        let hi = lo + params.rows_per_band;
        for (i, sig) in sigs.iter().enumerate() {
            let mut key = 0xcbf2_9ce4_8422_2325u64 ^ (band as u64);
            for &row in &sig[lo..hi] {
                key = mix(key ^ row);
            }
            match buckets.get(&key) {
                Some(&first) => {
                    uf.union(first, i);
                }
                None => {
                    buckets.insert(key, i);
                }
            }
        }
    }

    Clustering::from_union_find(&mut uf)
}
