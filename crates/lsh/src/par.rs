//! Deterministic data-parallel primitives for the hashing hot path.
//!
//! Rayon is the natural fit but is unavailable offline, so this module
//! provides the two shapes the LSH kernels need on plain `std::thread`:
//! disjoint mutable chunks of an output buffer, and an indexed map over
//! tasks. Both produce results that are **bit-identical** to the serial
//! path — work is only *scheduled* across threads; each output location is
//! computed by a pure function of its index — so the `parallel` feature
//! cannot change any clustering.
//!
//! With the `parallel` feature disabled (or a single available core, or
//! inputs below [`PAR_THRESHOLD`]) everything runs inline on the calling
//! thread.

/// Inputs smaller than this are hashed serially — thread spawn overhead
/// (~10µs each) dominates below a few thousand rows.
pub const PAR_THRESHOLD: usize = 2048;

/// Number of worker threads to use for `len` items.
pub fn thread_count(len: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        if len < PAR_THRESHOLD {
            return 1;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(len.div_ceil(PAR_THRESHOLD / 2))
            .max(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = len;
        1
    }
}

/// Split `out` into `workers` near-equal chunks and run
/// `f(chunk_start, chunk)` for each — on worker threads when the `parallel`
/// feature is active and the input is large enough, inline otherwise.
///
/// `chunk_start` is the index of `chunk[0]` within `out`, so `f` can be a
/// pure function of global indices regardless of scheduling.
pub fn par_chunks_mut<T, F>(out: &mut [T], items_per_entry: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let entries = out.len().checked_div(items_per_entry).unwrap_or(0);
    par_chunks_mut_with_workers(out, items_per_entry, thread_count(entries), f)
}

/// [`par_chunks_mut`] with an explicit worker count — lets tests exercise
/// real multi-threaded scheduling on any machine.
pub fn par_chunks_mut_with_workers<T, F>(
    out: &mut [T],
    items_per_entry: usize,
    workers: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let entries = out.len().checked_div(items_per_entry).unwrap_or(0);
    if workers <= 1 || entries <= 1 {
        f(0, out);
        return;
    }
    let chunk_entries = entries.div_ceil(workers);
    let chunk_len = chunk_entries * items_per_entry;
    std::thread::scope(|scope| {
        let f = &f;
        let mut start = 0usize;
        for chunk in out.chunks_mut(chunk_len) {
            scope.spawn(move || f(start, chunk));
            start += chunk_entries;
        }
    });
}

/// Map `f` over `0..n`, collecting results in index order — parallel when
/// worthwhile (`cost_hint` is the per-item weight; tasks with `n *
/// cost_hint` below the threshold run inline).
pub fn par_map_indexed<R, F>(n: usize, cost_hint: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with_workers(n, thread_count(n.saturating_mul(cost_hint.max(1))), f)
}

/// [`par_map_indexed`] with an explicit worker count (see
/// [`par_chunks_mut_with_workers`]).
pub fn par_map_indexed_with_workers<R, F>(n: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = workers.min(n);
    let per = n.div_ceil(workers);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * per;
                let hi = ((w + 1) * per).min(n);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_entry_once() {
        let mut out = vec![0u64; 10_000];
        par_chunks_mut(&mut out, 2, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (start * 2 + k) as u64;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut out = vec![0u8; 16];
        par_chunks_mut(&mut out, 1, |start, chunk| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 16);
            chunk.fill(1);
        });
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn map_indexed_preserves_order() {
        let big = par_map_indexed(5000, PAR_THRESHOLD, |i| i * 3);
        assert_eq!(big.len(), 5000);
        for (i, v) in big.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
        let small = par_map_indexed(3, 1, |i| i + 1);
        assert_eq!(small, vec![1, 2, 3]);
    }

    #[test]
    fn forced_multithreading_matches_inline_execution() {
        // Run the same pure-index workload inline and on 7 real threads
        // (independent of this machine's core count): results must be
        // byte-identical — the determinism contract the LSH kernels rely on.
        let mut inline = vec![0u64; 9973 * 3];
        par_chunks_mut_with_workers(&mut inline, 3, 1, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = ((start * 3 + k) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        });
        let mut threaded = vec![0u64; 9973 * 3];
        par_chunks_mut_with_workers(&mut threaded, 3, 7, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = ((start * 3 + k) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        });
        assert_eq!(inline, threaded);

        let a = par_map_indexed_with_workers(997, 1, |i| i * i);
        let b = par_map_indexed_with_workers(997, 5, |i| i * i);
        assert_eq!(a, b);
    }
}
