//! CLI glue for `pg-hive serve`: build the [`ServeCore`], wire the
//! `--on-drift` sink codec through the core's drift hook, bind the
//! listener, print the bound address and block.
//!
//! The server core lives in `pg_hive_core::serve`; this module owns the
//! two pieces that are CLI policy, not engine mechanics:
//!
//! - translating [`DriftNotice`]s into the shared [`DriftEvent`] codec so
//!   `serve` drift lands in the *same* jsonl/exec grammar as `watch`
//!   drift (plus a `tenant` field and `$PGHIVE_DRIFT_TENANT`), with a
//!   `{tenant}` placeholder in jsonl paths expanding per event;
//! - process lifecycle: the bound address is printed to stdout (and
//!   flushed) so scripts — and the e2e suite — can read an ephemeral
//!   `--addr ...:0` port, then the main thread parks forever. Durability
//!   is explicit: clients `POST /v1/<tenant>/checkpoint`; a killed server
//!   warm-restarts from `--state-dir` exactly as `docs/SERVE.md` describes.

use crate::args::DriftSinkSpec;
use crate::sink::{unix_timestamp, DriftEvent, DriftSink};
use pg_hive_core::serve::{DriftNotice, ServeCore, ServeOptions};
use pg_hive_core::Discoverer;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Parsed `serve` flags, grouped (the verb has too many knobs for a flat
/// argument list).
pub struct ServeParams {
    /// `--addr` listen address (`host:port`; port 0 = ephemeral).
    pub addr: String,
    /// `--chunk-size` elements per ingest chunk.
    pub chunk_size: usize,
    /// `--workers` connection worker threads.
    pub workers: usize,
    /// `--read-timeout` in seconds.
    pub read_timeout_secs: u64,
    /// `--max-body` in MiB.
    pub max_body_mb: usize,
    /// `--state-dir` for per-tenant snapshots.
    pub state_dir: Option<String>,
    /// `--keep` rotation depth per tenant.
    pub keep: Option<usize>,
    /// `--on-drift` sink specs, fired per drifting ingest pass.
    pub on_drift: Vec<DriftSinkSpec>,
}

/// Deliver one drift notice to every `--on-drift` sink using the shared
/// event codec. Jsonl paths may carry a `{tenant}` placeholder so each
/// tenant gets its own drift log; exec sinks see `$PGHIVE_DRIFT_TENANT`.
pub fn emit_notice(specs: &[DriftSinkSpec], notice: &DriftNotice) {
    let event = DriftEvent {
        tenant: Some(&notice.tenant),
        pass: notice.pass,
        timestamp: unix_timestamp(),
        elements_added: notice.elements_added,
        diff: &notice.diff,
    };
    for spec in specs {
        let sink = match spec {
            DriftSinkSpec::Jsonl(path) => {
                DriftSink::Jsonl(PathBuf::from(path.replace("{tenant}", &notice.tenant)))
            }
            DriftSinkSpec::Exec(cmd) => DriftSink::Exec(cmd.clone()),
        };
        if let Err(e) = sink.emit(&event) {
            eprintln!("warning: {e}");
        }
    }
}

/// Run the service until the process is killed. Never returns on success;
/// startup failures (unloadable snapshot, unbindable address) return the
/// named error.
pub fn run_serve(discoverer: Discoverer, params: ServeParams) -> Result<ExitCode, String> {
    let opts = ServeOptions {
        workers: params.workers,
        chunk_size: params.chunk_size,
        state_dir: params.state_dir.map(PathBuf::from),
        keep: params.keep,
        read_timeout: Duration::from_secs(params.read_timeout_secs),
        max_body: params.max_body_mb << 20,
        ..ServeOptions::default()
    };
    let mut core = ServeCore::new(discoverer, opts)?;
    let resumed = core.tenant_names();
    if !resumed.is_empty() {
        eprintln!(
            "resumed {} tenant(s) from the state dir: {}",
            resumed.len(),
            resumed.join(", ")
        );
    }
    if !params.on_drift.is_empty() {
        let specs = params.on_drift.clone();
        core.set_drift_hook(Box::new(move |n| emit_notice(&specs, n)));
    }
    let server = pg_hive_core::serve::bind(&params.addr, Arc::new(core))?;
    // Scripts (and the e2e suite) read the resolved ephemeral port from
    // this line, so it must hit the pipe before we block.
    println!("serving on http://{}", server.addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot flush stdout: {e}"))?;
    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_core::{label_set, SchemaDiff};

    #[test]
    fn jsonl_sink_expands_the_tenant_placeholder() {
        let dir = std::env::temp_dir().join(format!("pg-hive-serve-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = DriftSinkSpec::Jsonl(
            dir.join("{tenant}-drift.jsonl")
                .to_str()
                .unwrap()
                .to_string(),
        );
        let notice = DriftNotice {
            tenant: "acme".into(),
            pass: 2,
            elements_added: 5,
            diff: SchemaDiff {
                added_node_types: vec![label_set(&["Device"])],
                ..SchemaDiff::default()
            },
        };
        emit_notice(&[spec], &notice);
        let log = std::fs::read_to_string(dir.join("acme-drift.jsonl")).unwrap();
        assert!(log.contains("\"event\":\"schema-drift\""), "{log}");
        assert!(log.contains("\"tenant\":\"acme\""), "{log}");
        assert!(log.contains("\"pass\":2"), "{log}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
