//! `pg-hive` — command-line schema discovery for property graphs.
//!
//! ```text
//! pg-hive discover <input> [--method elsh|minhash] [--theta T]
//!                  [--batches N] [--format strict|loose|xsd|summary]
//!                  [--sample] [--seed S]
//!                  [--input-format pgt|csv|jsonl] [--stream]
//!                  [--chunk-size N] [--threads N] [--read-ahead N]
//!                  [--shards N]
//! pg-hive diff     <old> <new> [--method M] [--theta T] [--seed S]
//!                  [--input-format F] [--stream] [--chunk-size N]
//!                  [--threads N] [--read-ahead N]
//! pg-hive watch    <input> [--interval SECS] [--once] [--method M]
//!                  [--theta T] [--seed S] [--input-format F]
//!                  [--chunk-size N] [--threads N] [--read-ahead N]
//!                  [--keep K] [--partition passes:N]
//! pg-hive merge-state <out> <in>... [--format strict|loose|xsd|summary]
//! pg-hive validate <schema> <input> [--method M] [--theta T] [--seed S]
//!                  [--input-format F] [--stream] [--chunk-size N]
//!                  [--threads N] [--max-violations N]
//!                  [--report jsonl:<path>]
//! pg-hive stats    <input> [--input-format pgt|csv|jsonl] [--stream]
//!                  [--read-ahead N]
//! ```
//!
//! Inputs are read in one of three formats (see [`pg_hive_graph::stream`]):
//! the line-oriented `.pgt` text format of [`pg_hive_graph::loader`], CSV
//! (`<input>` is a directory with `nodes.csv` + optional `edges.csv`), or
//! JSON-Lines (one node/edge object per line).
//!
//! With `--stream`, `discover` runs the pipeline-parallel streaming engine:
//! a dedicated producer thread parses `--read-ahead` chunks ahead
//! ([`pg_hive_graph::stream::ReadAheadChunks`]), a pool of `--threads`
//! workers discovers chunks concurrently, and per-chunk schemas merge in
//! input order (`Discoverer::discover_stream_parallel`) — so resident
//! memory stays O(chunk × in-flight), the output is byte-identical for
//! every thread count, and wall-clock tracks the slower of I/O and compute
//! instead of their sum. Per-chunk progress (with the in-flight bound) goes
//! to stderr; the report includes the peak-resident element count plus
//! counted ingestion warnings (cross-chunk edges, dangling refs).
//!
//! `diff` discovers the schema of two snapshots of a dataset and reports
//! added/removed/changed types — the operational counterpart of the
//! incremental monotone chain (§4.6). `watch` turns that into a
//! long-running drift monitor: a resident canonical
//! [`pg_hive_core::SchemaState`] absorbs only the records appended between
//! passes and each pass's finalized schema is diffed against the previous
//! one (see [`watch`]). With `--state-dir` the monitor is **durable**: the
//! full resumable context is checkpointed atomically after every pass and
//! auto-resumed on restart, and `--on-drift exec:<cmd>` /
//! `--on-drift jsonl:<path>` deliver structured drift events to external
//! sinks (see [`sink`]). `discover --stream` can persist and resume the
//! same engine state with `--save-state` / `--load-state`.
//!
//! With `--stream`, `discover` and `watch` also accept a **directory tree**
//! of mixed-format inputs (`*.pgt`, `*.jsonl`, sub-directories holding
//! `nodes.csv`), enumerated in stable sorted order
//! ([`pg_hive_graph::stream::multi::MultiSource`]). `discover --shards N`
//! partitions the enumerated inputs round-robin across N shard threads and
//! folds their states up a merge tree — byte-identical to the serial run
//! for every shard count (`Discoverer::discover_sharded`). `merge-state`
//! folds independently saved engine states (split `--save-state` runs,
//! rotated watch partitions) into one snapshot, resolving carried
//! cross-input edges against the merged registry. See `docs/CLI.md` for
//! the full flag reference and `docs/PERSISTENCE.md` for the snapshot
//! format, lifecycle, and operations runbook.

#![warn(missing_docs)]

use pg_hive_core::schema::SchemaGraph;
use pg_hive_core::serialize::{pg_schema_loose, pg_schema_strict, to_xsd};
use pg_hive_core::sigcache::DEFAULT_CACHE_CAP;
use pg_hive_core::snapshot::{
    context_snapshot_cached, sigcache_from_snapshot, ResumeContext, Snapshot, SnapshotConfig,
};
use pg_hive_core::{
    diff_schemas, CompiledSchema, Discoverer, PipelineConfig, SamplingConfig, SignatureCache,
    StreamResult, Validator, DEFAULT_MAX_EXAMPLES,
};
use pg_hive_graph::loader::load_text;
use pg_hive_graph::stream::{csv::CsvSource, jsonl::JsonlSource, pgt::PgtSource};
use pg_hive_graph::{
    ChunkedTextReader, GraphStats, LabelSetRegistry, MultiSource, PropertyGraph, RawGraphSource,
    ReadAheadChunks, ReadAheadRecords, StreamSummary, StreamWarnings,
};
use std::io::{BufReader, Write};
use std::path::Path;
use std::process::ExitCode;

mod args;
mod serve;
mod sink;
mod watch;
use args::{Args, Command, InputFormat, OutputFormat, StreamOpts};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };

    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Open a streaming record source for `path` in the given wire format. The
/// source is `Send` so it can be driven by a read-ahead producer thread.
fn open_source(path: &str, format: InputFormat) -> Result<Box<dyn RawGraphSource + Send>, String> {
    match format {
        InputFormat::Pgt => {
            let f = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            // A large buffer keeps the line-at-a-time hot loop out of
            // syscalls; 1 MiB is noise next to the resident chunk graphs.
            Ok(Box::new(PgtSource::new(BufReader::with_capacity(
                1 << 20,
                f,
            ))))
        }
        InputFormat::Csv => CsvSource::open_dir(Path::new(path))
            .map(|s| Box::new(s) as Box<dyn RawGraphSource + Send>)
            .map_err(|e| format!("cannot open csv dataset {path}: {e}")),
        InputFormat::Jsonl => {
            let f = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok(Box::new(JsonlSource::new(BufReader::with_capacity(
                1 << 20,
                f,
            ))))
        }
    }
}

/// Load a whole graph into memory (the non-streaming path).
fn load_graph(path: &str, format: InputFormat) -> Result<PropertyGraph, String> {
    match format {
        InputFormat::Pgt => {
            // Keep the strict loader here: it reports duplicate-id and
            // unknown-node errors with line numbers.
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            load_text(&text).map_err(|e| format!("parse {path}: {e}"))
        }
        _ => {
            let source = open_source(path, format)?;
            let (g, warnings) = pg_hive_graph::stream::read_all(source)
                .map_err(|e| format!("parse {path}: {e}"))?;
            report_warnings(&warnings);
            Ok(g)
        }
    }
}

fn report_warnings(w: &StreamWarnings) {
    if w.is_empty() {
        return;
    }
    eprintln!(
        "warning: {} cross-chunk edge(s) resolved through stubs, {} edge(s) dropped \
         (endpoint never declared; {} evicted from the pending buffer), {} edge(s) \
         arrived before an endpoint, {} duplicate node id(s)",
        w.cross_chunk_edges,
        w.unresolved_edges,
        w.evicted_edges,
        w.deferred_edges,
        w.duplicate_nodes
    );
}

fn print_type_lines(schema: &SchemaGraph) {
    for t in &schema.node_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        println!(
            "  node {{{}}} x{} ({} props)",
            labels.join(","),
            t.instance_count,
            t.props.len()
        );
    }
    for t in &schema.edge_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        println!(
            "  edge {{{}}} x{} ({} endpoint pairs)",
            labels.join(","),
            t.instance_count,
            t.endpoints.len()
        );
    }
}

/// The named error `diff` and `watch` raise instead of treating an empty
/// (or CSV header-only) input as a legitimate empty schema.
fn empty_input_error(path: &str) -> String {
    format!("empty input: {path} contains no graph elements (nodes or edges)")
}

/// Effective worker count: the `--threads` value, or every available core.
fn resolve_threads(opts: &StreamOpts) -> usize {
    opts.threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn run(args: Args) -> Result<ExitCode, String> {
    match args.command {
        Command::Discover {
            path,
            method,
            theta,
            batches,
            format,
            sample,
            seed,
            stream,
            shards,
            save_state,
            load_state,
        } => {
            let config = PipelineConfig {
                method,
                theta,
                seed,
                datatype_sampling: sample.then(SamplingConfig::default),
                ..PipelineConfig::default()
            };
            let discoverer = Discoverer::new(config);

            if stream.stream {
                if shards > 1 || is_multi_input(&path, stream.input_format) {
                    return discover_multi(
                        &path,
                        &stream,
                        &discoverer,
                        format,
                        shards,
                        save_state.as_deref(),
                        load_state.as_deref(),
                    );
                }
                if save_state.is_some() || load_state.is_some() {
                    return discover_stream_stateful(
                        &path,
                        &stream,
                        &discoverer,
                        format,
                        save_state.as_deref(),
                        load_state.as_deref(),
                    );
                }
                return discover_stream(&path, &stream, &discoverer, format);
            }
            if is_multi_input(&path, stream.input_format) {
                return Err(format!(
                    "{path} is a directory of inputs — multi-source discovery requires \
                     --stream (add --shards N to parallelize across inputs)"
                ));
            }

            let graph = load_graph(&path, stream.input_format)?;
            let result = if batches > 1 {
                discoverer.discover_incremental(&graph, batches)
            } else {
                discoverer.discover(&graph)
            };
            match format {
                OutputFormat::Strict => {
                    print!("{}", pg_schema_strict(&result.schema, "Discovered"))
                }
                OutputFormat::Loose => print!("{}", pg_schema_loose(&result.schema, "Discovered")),
                OutputFormat::Xsd => print!("{}", to_xsd(&result.schema)),
                OutputFormat::Summary => {
                    println!(
                        "{} nodes, {} edges -> {} node types, {} edge types \
                         ({} abstract), discovery {:.3}s",
                        graph.node_count(),
                        graph.edge_count(),
                        result.schema.node_types.len(),
                        result.schema.edge_types.len(),
                        result
                            .schema
                            .node_types
                            .iter()
                            .filter(|t| t.is_abstract())
                            .count(),
                        result.stats.timings.discovery().as_secs_f64()
                    );
                    print_type_lines(&result.schema);
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Diff {
            old_path,
            new_path,
            method,
            theta,
            seed,
            stream,
        } => {
            let config = PipelineConfig {
                method,
                theta,
                seed,
                ..PipelineConfig::default()
            };
            let discoverer = Discoverer::new(config);
            let schema_of = |p: &str| -> Result<SchemaGraph, String> {
                if stream.stream {
                    let (result, summary) = stream_discover(p, &stream, &discoverer, false)?;
                    // Streamed ingestion tolerates conditions the strict
                    // loader rejects (dangling refs become stubs) — the
                    // diff is only trustworthy if the user sees them.
                    if !summary.warnings.is_empty() {
                        eprintln!("warning: while streaming {p}:");
                        report_warnings(&summary.warnings);
                    }
                    if result.elements == 0 {
                        return Err(empty_input_error(p));
                    }
                    Ok(result.schema)
                } else {
                    let g = load_graph(p, stream.input_format)?;
                    if g.node_count() + g.edge_count() == 0 {
                        return Err(empty_input_error(p));
                    }
                    Ok(discoverer.discover(&g).schema)
                }
            };
            let old = schema_of(&old_path)?;
            let new = schema_of(&new_path)?;
            let diff = diff_schemas(&old, &new);
            if diff.is_empty() {
                println!(
                    "no schema changes: {} node type(s), {} edge type(s)",
                    new.node_types.len(),
                    new.edge_types.len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                print!("{diff}");
                println!(
                    "schema changed ({}): {} -> {} node type(s), {} -> {} edge type(s)",
                    if diff.is_monotone() {
                        "monotone: additions/relaxations only"
                    } else {
                        "NON-monotone: contains removals or tightenings"
                    },
                    old.node_types.len(),
                    new.node_types.len(),
                    old.edge_types.len(),
                    new.edge_types.len()
                );
                Ok(ExitCode::FAILURE)
            }
        }
        Command::Watch {
            path,
            method,
            theta,
            seed,
            interval_secs,
            once,
            stream,
            state_dir,
            keep,
            partition_passes,
            on_drift,
        } => {
            let config = PipelineConfig {
                method,
                theta,
                seed,
                ..PipelineConfig::default()
            };
            let discoverer = Discoverer::new(config);
            let sinks: Vec<sink::DriftSink> =
                on_drift.iter().map(sink::DriftSink::from_spec).collect();
            watch::run_watch(
                &path,
                &stream,
                &discoverer,
                std::time::Duration::from_secs(interval_secs),
                once,
                state_dir.as_deref(),
                keep,
                partition_passes,
                &sinks,
            )
        }
        Command::MergeState {
            out,
            inputs,
            format,
        } => merge_state(&out, &inputs, format),
        Command::Validate {
            schema_path,
            input_path,
            method,
            theta,
            seed,
            stream,
            max_violations,
            report,
        } => {
            let config = PipelineConfig {
                method,
                theta,
                seed,
                ..PipelineConfig::default()
            };
            let discoverer = Discoverer::new(config);
            let schema = load_validation_schema(&schema_path, &stream, &discoverer)?;
            let compiled = CompiledSchema::compile(&schema);
            eprintln!(
                "validating {input_path} against {} node type(s) / {} edge type(s)",
                compiled.node_type_count(),
                compiled.edge_type_count()
            );
            run_validation(
                &compiled,
                &input_path,
                &stream,
                max_violations,
                report.as_deref(),
            )
        }
        Command::Stats { path, stream } => {
            let s = if stream.stream {
                // Fold records directly — no resident graph at all, so
                // --chunk-size is accepted for flag symmetry but unused.
                // The producer thread parses --read-ahead batches ahead of
                // the fold; --threads has no effect on the single-pass fold.
                if stream.threads.is_some_and(|t| t > 1) {
                    eprintln!(
                        "note: stats folds a single record stream; --threads has no effect \
                         (--read-ahead still overlaps parsing with folding)"
                    );
                }
                let source = open_source(&path, stream.input_format)?;
                let source = ReadAheadRecords::spawn(source, stream.read_ahead);
                let (s, dangling) = pg_hive_graph::stats::stream_stats(source)
                    .map_err(|e| format!("parse {path}: {e}"))?;
                if dangling > 0 {
                    eprintln!(
                        "warning: {dangling} edge(s) reference node ids never declared; \
                         their patterns count unlabeled endpoints"
                    );
                }
                s
            } else {
                GraphStats::compute(&load_graph(&path, stream.input_format)?)
            };
            println!("nodes:          {}", s.nodes);
            println!("edges:          {}", s.edges);
            println!("node labels:    {}", s.node_labels);
            println!("edge labels:    {}", s.edge_labels);
            println!("node label sets:{}", s.node_label_sets);
            println!("node patterns:  {}", s.node_patterns);
            println!("edge patterns:  {}", s.edge_patterns);
            Ok(ExitCode::SUCCESS)
        }
        Command::Serve {
            addr,
            method,
            theta,
            seed,
            chunk_size,
            workers,
            read_timeout_secs,
            max_body_mb,
            state_dir,
            keep,
            on_drift,
        } => {
            let config = PipelineConfig {
                method,
                theta,
                seed,
                ..PipelineConfig::default()
            };
            serve::run_serve(
                Discoverer::new(config),
                serve::ServeParams {
                    addr,
                    chunk_size,
                    workers,
                    read_timeout_secs,
                    max_body_mb,
                    state_dir,
                    keep,
                    on_drift,
                },
            )
        }
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// Run the pipeline-parallel streaming engine over `path`: read-ahead
/// producer → `--threads` discovery workers → in-order merge. Returns the
/// merged result and the producer's final accounting.
fn stream_discover(
    path: &str,
    opts: &StreamOpts,
    discoverer: &Discoverer,
    progress: bool,
) -> Result<(StreamResult, StreamSummary), String> {
    let source = open_source(path, opts.input_format)?;
    let threads = resolve_threads(opts);
    // Upper bound on simultaneously resident chunks: the producer's buffer,
    // one chunk per worker (being processed), one per dispatch-channel slot,
    // plus the one being parsed.
    let in_flight_cap = opts.read_ahead + 2 * threads + 1;
    if progress {
        eprintln!(
            "streaming {path}: {} worker thread(s), read-ahead {} \
             (<= {in_flight_cap} chunks in flight)",
            threads, opts.read_ahead
        );
    }
    let mut reader = ReadAheadChunks::spawn(source, opts.chunk_size, opts.read_ahead);
    let mut stream_err: Option<String> = None;
    let mut chunk_no = 0usize;
    // Run-local signature cache: structurally repeated chunks (steady-shape
    // logs) skip embedding + LSH and broadcast the memoized clustering —
    // byte-identical to the uncached run (proptested in
    // `tests/tests/incremental_equivalence.rs`).
    let cache = SignatureCache::default();
    let mut state = discoverer.new_state();
    let report = discoverer.absorb_stream_cached(
        std::iter::from_fn(|| match reader.next_chunk() {
            Ok(Some(g)) => {
                chunk_no += 1;
                if progress {
                    eprintln!(
                        "chunk {chunk_no}: {} nodes, {} edges dispatched",
                        g.node_count(),
                        g.edge_count()
                    );
                    let _ = std::io::stderr().flush();
                }
                Some(g)
            }
            Ok(None) => None,
            Err(e) => {
                stream_err = Some(e.to_string());
                None
            }
        }),
        &mut state,
        threads,
        &cache,
    );
    if let Some(e) = stream_err {
        return Err(format!("parse {path}: {e}"));
    }
    if progress {
        let stats = cache.stats();
        if stats.hits > 0 {
            eprintln!(
                "signature cache: {} of {} chunk(s) re-used a memoized clustering",
                stats.hits,
                stats.hits + stats.misses
            );
        }
    }
    let result = StreamResult {
        schema: state.finalize(),
        chunk_times: report.chunk_times,
        elements: report.elements,
    };
    let summary = *reader
        .summary()
        .expect("stream exhausted without error: summary available");
    Ok((result, summary))
}

/// Whether `path` names a *tree* of inputs for [`MultiSource`] enumeration
/// rather than one input: any directory, except a CSV dataset directory
/// explicitly requested with `--input-format csv` (that directory IS the
/// single input).
fn is_multi_input(path: &str, format: InputFormat) -> bool {
    let p = Path::new(path);
    p.is_dir() && !(format == InputFormat::Csv && p.join("nodes.csv").is_file())
}

/// Does the file start with the snapshot magic line? Cheap sniff that
/// lets `validate <schema>` accept either a saved snapshot or a reference
/// graph in the same positional argument.
fn file_is_snapshot(p: &Path) -> bool {
    use std::io::BufRead;
    let Ok(f) = std::fs::File::open(p) else {
        return false;
    };
    let mut line = String::new();
    let _ = BufReader::new(f).read_line(&mut line);
    line.starts_with(pg_hive_core::snapshot::MAGIC)
}

/// Obtain the schema `validate` checks against: a saved snapshot
/// (`discover --save-state` or a `watch --state-dir` checkpoint — unlike
/// resuming, validation only needs the accumulated schema, so both kinds
/// are accepted), or any reference input to discover one from
/// (schema-by-example).
fn load_validation_schema(
    path: &str,
    opts: &StreamOpts,
    discoverer: &Discoverer,
) -> Result<SchemaGraph, String> {
    let p = Path::new(path);
    if p.is_file() && file_is_snapshot(p) {
        let ctx = ResumeContext::load(p).map_err(|e| format!("{e} (while loading {path})"))?;
        eprintln!(
            "schema from snapshot {path}: {} pooled type(s){}",
            ctx.state.pooled_types(),
            if ctx.watch.is_some() {
                " (watch checkpoint)"
            } else {
                ""
            }
        );
        return Ok(ctx.state.finalize());
    }
    if is_multi_input(path, opts.input_format) {
        let source =
            MultiSource::enumerate(p).map_err(|e| format!("cannot enumerate {path}: {e}"))?;
        if source.is_empty() {
            return Err(format!(
                "no recognized inputs under {path}: expected *.pgt / *.jsonl files or \
                 directories holding nodes.csv"
            ));
        }
        let threads = resolve_threads(opts);
        let result = discoverer
            .discover_sharded(&source, 1, opts.chunk_size, threads)
            .map_err(|e| format!("parse {path}: {e}"))?;
        report_warnings(&result.warnings);
        return Ok(result.state.finalize());
    }
    let g = load_graph(path, opts.input_format)?;
    if g.node_count() + g.edge_count() == 0 {
        return Err(empty_input_error(path));
    }
    Ok(discoverer.discover(&g).schema)
}

/// A fresh shard validator: unbounded examples when a jsonl report needs
/// every violation, and the early-exit cap when one was requested.
fn fresh_validator<'a>(
    compiled: &'a CompiledSchema,
    keep_all: bool,
    max_violations: Option<u64>,
) -> Validator<'a> {
    let mut v = Validator::new(compiled);
    if keep_all {
        v = v.with_max_examples(usize::MAX);
    }
    if let Some(m) = max_violations {
        v = v.with_max_violations(m);
    }
    v
}

/// Drive the streaming validator over `input_path` — a single file, a CSV
/// dataset directory, or a directory tree of mixed inputs (validated
/// shard-parallel across `--threads`, then merged like sharded discovery).
/// Exit-code symmetry with `diff`: 0 clean, 1 violations.
fn run_validation(
    compiled: &CompiledSchema,
    input_path: &str,
    opts: &StreamOpts,
    max_violations: Option<u64>,
    report_path: Option<&str>,
) -> Result<ExitCode, String> {
    let keep_all = report_path.is_some();
    let report = if is_multi_input(input_path, opts.input_format) {
        let source = MultiSource::enumerate(Path::new(input_path))
            .map_err(|e| format!("cannot enumerate {input_path}: {e}"))?;
        if source.is_empty() {
            return Err(format!(
                "no recognized inputs under {input_path}: expected *.pgt / *.jsonl files or \
                 directories holding nodes.csv"
            ));
        }
        let shards = resolve_threads(opts).min(source.len()).max(1);
        eprintln!(
            "validating {} input(s) under {input_path} across {} shard(s)",
            source.len(),
            shards
        );
        let parts = source.partition(shards);
        let shard_results: Vec<Result<Validator<'_>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| {
                    scope.spawn(move || -> Result<Validator<'_>, String> {
                        let mut v = fresh_validator(compiled, keep_all, max_violations);
                        for entry in part {
                            let mut src = entry.open().map_err(|e| {
                                format!("cannot open {}: {e}", entry.path.display())
                            })?;
                            let completed = v
                                .validate_source(&mut *src, opts.chunk_size, |_, _| {})
                                .map_err(|e| format!("parse {}: {e}", entry.path.display()))?;
                            if !completed {
                                break; // per-shard early exit on the cap
                            }
                        }
                        Ok(v)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("validator shard thread panicked"))
                .collect()
        });
        let mut merged: Option<Validator<'_>> = None;
        for r in shard_results {
            let v = r?;
            match &mut merged {
                None => merged = Some(v),
                Some(m) => m.merge(v),
            }
        }
        merged.expect("at least one shard").finish()
    } else {
        let progress = opts.stream;
        let mut v = fresh_validator(compiled, keep_all, max_violations);
        let mut src = open_source(input_path, opts.input_format)?;
        let completed = v
            .validate_source(&mut *src, opts.chunk_size, |chunk, elems| {
                if progress {
                    eprintln!("chunk {chunk}: {elems} element(s) validated");
                }
            })
            .map_err(|e| format!("parse {input_path}: {e}"))?;
        if !completed {
            eprintln!("stopped early: --max-violations reached");
        }
        v.finish()
    };

    if let Some(path) = report_path {
        let path = Path::new(path);
        for v in &report.examples {
            sink::append_jsonl(path, &sink::violation_event_json(v))
                .map_err(|e| format!("--report {e}"))?;
        }
        eprintln!(
            "{} violation event(s) appended to {}",
            report.examples.len(),
            path.display()
        );
    }

    if report.is_valid() {
        println!(
            "valid: {} node(s) / {} edge(s) conform",
            report.nodes_checked, report.edges_checked
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "{} violation(s) across {} node(s) / {} edge(s){}:",
            report.total(),
            report.nodes_checked,
            report.edges_checked,
            if report.stopped_early {
                " (stopped early: --max-violations)"
            } else {
                ""
            }
        );
        for (kind, n) in report.by_category() {
            println!("  {n} x {kind}");
        }
        let shown = report.examples.len().min(DEFAULT_MAX_EXAMPLES);
        for v in report.examples.iter().take(DEFAULT_MAX_EXAMPLES) {
            println!("  {v}");
        }
        if report.total() > shown as u64 {
            println!("  ... and {} more", report.total() - shown as u64);
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Load a `discover --save-state` snapshot for resuming, with the config
/// guard and the named refusal of watch checkpoints. Also rebuilds the
/// snapshot's persisted [`SignatureCache`] (cold when the optional
/// `[sigcache]` section is absent) so a resumed stream starts warm.
fn load_discover_state(
    p: &str,
    config: &SnapshotConfig,
) -> Result<(ResumeContext, SignatureCache), String> {
    let load_err = |e: pg_hive_core::snapshot::SnapshotError| format!("{e} (while loading {p})");
    let snap = Snapshot::read(Path::new(p)).map_err(load_err)?;
    let ctx = ResumeContext::from_snapshot(&snap).map_err(load_err)?;
    let cache = sigcache_from_snapshot(&snap, DEFAULT_CACHE_CAP).map_err(load_err)?;
    ctx.config
        .ensure_matches(config)
        .map_err(|e| e.to_string())?;
    // Symmetric to watch refusing discover save-states: a watch
    // checkpoint carries per-file read positions that discover
    // would silently ignore, re-ingesting input the state already
    // contains and double-counting every instance.
    if ctx.watch.is_some() {
        return Err(format!(
            "snapshot: {p} is a `watch --state-dir` checkpoint — its per-file \
             offsets only make sense to `watch`; resume it with `pg-hive watch \
             --state-dir`, or create a discover state with --save-state"
        ));
    }
    eprintln!(
        "resuming from {p}: {} pooled type(s), {} registered id(s), {} carried edge(s)",
        ctx.state.pooled_types(),
        ctx.registry.len(),
        ctx.pending.len()
    );
    Ok((ctx, cache))
}

/// The `discover --stream` path with `--save-state`/`--load-state`: run
/// the streaming engine over a registry-carrying serial reader (the same
/// shape `watch` uses, so the id → label-set registry can be persisted and
/// resumed), optionally seeding from a snapshot and optionally writing one
/// afterwards. Chained invocations — part 1 with `--save-state`, part 2
/// with `--load-state` — finalize byte-identically to a single
/// uninterrupted run over the concatenated input (proptested in
/// `tests/tests/snapshot_resume.rs`). With `--save-state`, edges whose
/// endpoints this input never declared are carried into the snapshot's
/// `[pending]` section instead of being dropped, so a later `--load-state`
/// run or `merge-state` can resolve them against inputs that do.
fn discover_stream_stateful(
    path: &str,
    opts: &StreamOpts,
    discoverer: &Discoverer,
    format: OutputFormat,
    save_state: Option<&str>,
    load_state: Option<&str>,
) -> Result<ExitCode, String> {
    let threads = resolve_threads(opts);
    let config = SnapshotConfig::new(discoverer.config(), opts.chunk_size);
    let (mut state, registry, mut pending, cache) = match load_state {
        Some(p) => {
            let (ctx, cache) = load_discover_state(p, &config)?;
            (ctx.state, ctx.registry, ctx.pending, cache)
        }
        None => (
            discoverer.new_state(),
            LabelSetRegistry::default(),
            Vec::new(),
            SignatureCache::default(),
        ),
    };
    let source = open_source(path, opts.input_format)?;
    let mut reader = ChunkedTextReader::with_registry(source, opts.chunk_size, registry);
    // When a snapshot will be written, end-of-stream unresolved edges are
    // carried into it (rather than dropped and counted), so split inputs
    // merged later equal the one-shot run.
    reader.set_carry_unresolved(save_state.is_some());
    let mut stream_err: Option<String> = None;
    let report = discoverer.absorb_stream_cached(
        std::iter::from_fn(|| match reader.next_chunk() {
            Ok(c) => c,
            Err(e) => {
                stream_err = Some(e.to_string());
                None
            }
        }),
        &mut state,
        threads,
        &cache,
    );
    if let Some(e) = stream_err {
        return Err(format!("parse {path}: {e}"));
    }
    // Extract carried edges before reading the warning counters, so they
    // are not double-counted as unresolved.
    pending.extend(reader.take_pending());
    let mut warnings = reader.warnings();
    let max_resident = reader.max_resident_elements();
    let registry = reader.into_registry();
    // Edges carried in from the loaded snapshot may resolve against node
    // ids this input declared.
    let (pending, resolved) = discoverer.resolve_pending(&mut state, &registry, pending);
    if save_state.is_none() {
        warnings.unresolved_edges += pending.len() as u64;
    }
    report_warnings(&warnings);
    let result = StreamResult {
        schema: state.finalize(),
        chunk_times: report.chunk_times,
        elements: report.elements + resolved,
    };
    if let Some(p) = save_state {
        let carried = pending.len();
        // Persist the signature cache alongside the engine state (the
        // optional `[sigcache]` section) so a chained `--load-state` run
        // over same-shaped input resumes warm.
        context_snapshot_cached(&config, &state, &registry, None, &pending, Some(&cache))
            .write_atomic(Path::new(p))
            .map_err(|e| e.to_string())?;
        if carried > 0 {
            eprintln!("state saved to {p} ({carried} cross-input edge(s) carried)");
        } else {
            eprintln!("state saved to {p}");
        }
    }

    print_stream_schema(&result, max_resident, threads, format);
    Ok(ExitCode::SUCCESS)
}

/// `discover` over a directory tree of mixed-format inputs: enumerate,
/// partition across `--shards`, fold the per-file states up the merge tree
/// (`Discoverer::discover_sharded`) — byte-identical to the serial
/// single-shard run for every shard count — and optionally persist the
/// merged engine state.
fn discover_multi(
    path: &str,
    opts: &StreamOpts,
    discoverer: &Discoverer,
    format: OutputFormat,
    shards: usize,
    save_state: Option<&str>,
    load_state: Option<&str>,
) -> Result<ExitCode, String> {
    let source = MultiSource::enumerate(Path::new(path))
        .map_err(|e| format!("cannot enumerate {path}: {e}"))?;
    if source.is_empty() {
        return Err(format!(
            "no recognized inputs under {path}: expected *.pgt / *.jsonl files or \
             directories holding nodes.csv"
        ));
    }
    let threads = resolve_threads(opts);
    let config = SnapshotConfig::new(discoverer.config(), opts.chunk_size);
    let shards = shards.max(1);
    eprintln!(
        "discovering {} input(s) under {path}: {} shard(s) x {} worker thread(s)",
        source.len(),
        shards,
        threads
    );
    let mut result = discoverer
        .discover_sharded(&source, shards, opts.chunk_size, threads)
        .map_err(|e| format!("parse {path}: {e}"))?;
    if let Some(p) = load_state {
        // The sharded path absorbs per-file states; a loaded cache has no
        // absorb site here, so only the context is used.
        let (ctx, _cache) = load_discover_state(p, &config)?;
        result.state.merge(ctx.state);
        result.warnings.duplicate_nodes += result.registry.merge(&ctx.registry);
        // Re-resolve: edges unresolvable on either side alone may resolve
        // against the union registry.
        let mut pending = std::mem::take(&mut result.pending);
        result.warnings.unresolved_edges -= pending.len() as u64;
        pending.extend(ctx.pending);
        let (left, resolved) =
            discoverer.resolve_pending(&mut result.state, &result.registry, pending);
        result.elements += resolved;
        result.warnings.unresolved_edges += left.len() as u64;
        result.pending = left;
    }
    report_warnings(&result.warnings);
    let schema = result.state.finalize();
    if let Some(p) = save_state {
        let carried = result.pending.len();
        let ctx = ResumeContext {
            config,
            state: result.state,
            registry: result.registry,
            watch: None,
            pending: result.pending,
        };
        ctx.save(Path::new(p)).map_err(|e| e.to_string())?;
        if carried > 0 {
            eprintln!("state saved to {p} ({carried} cross-input edge(s) carried)");
        } else {
            eprintln!("state saved to {p}");
        }
    }
    match format {
        OutputFormat::Strict => print!("{}", pg_schema_strict(&schema, "Discovered")),
        OutputFormat::Loose => print!("{}", pg_schema_loose(&schema, "Discovered")),
        OutputFormat::Xsd => print!("{}", to_xsd(&schema)),
        OutputFormat::Summary => {
            println!(
                "{} elements from {} input(s) across {} shard(s) -> {} node types, \
                 {} edge types ({} abstract)",
                result.elements,
                result.inputs,
                shards,
                schema.node_types.len(),
                schema.edge_types.len(),
                schema.node_types.iter().filter(|t| t.is_abstract()).count(),
            );
            print_type_lines(&schema);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `pg-hive merge-state <out> <in>...` — fold saved engine states into one
/// snapshot. Snapshots written under different method/theta/seed/chunk-size
/// are refused with a named `snapshot:` error; carried cross-input edges
/// resolve against the merged registry and the rest stay pending in the
/// output, ready for the next merge.
///
/// The fold is **streaming**: the first snapshot becomes the base and each
/// further one is loaded, merged, and dropped before the next is opened, so
/// peak residency is two contexts no matter how many snapshots are folded.
/// `SchemaState::merge` is associative and commutative, so this is
/// byte-identical to materializing every context and folding all at once
/// (asserted e2e in `tests/tests/cli_merge_state.rs`).
fn merge_state(out: &str, inputs: &[String], format: OutputFormat) -> Result<ExitCode, String> {
    let mut iter = inputs.iter();
    let first = iter
        .next()
        .ok_or_else(|| "snapshot: merge needs at least one snapshot file".to_string())?;
    let mut ctx = ResumeContext::load(Path::new(first))
        .map_err(|e| format!("{e} (while loading {first})"))?;
    // A merged state is no longer any single watch's checkpoint, even when
    // only one input was given.
    ctx.watch = None;
    let mut collisions = 0u64;
    for p in iter {
        let next =
            ResumeContext::load(Path::new(p)).map_err(|e| format!("{e} (while loading {p})"))?;
        collisions += ctx.merge(next).map_err(|e| e.to_string())?;
    }
    // Rebuild the discoverer the snapshots were produced under (the guard
    // above proved they all agree) so pending-edge resolution embeds with
    // the same clustering parameters.
    let discoverer = Discoverer::new(PipelineConfig {
        method: ctx.config.method,
        theta: ctx.config.theta,
        seed: ctx.config.seed,
        ..PipelineConfig::default()
    });
    let pending = std::mem::take(&mut ctx.pending);
    let (left, resolved) = discoverer.resolve_pending(&mut ctx.state, &ctx.registry, pending);
    ctx.pending = left;
    ctx.save(Path::new(out)).map_err(|e| e.to_string())?;
    eprintln!(
        "merged {} snapshot(s) into {out}: {} pooled type(s), {} registered id(s), \
         {} duplicate id(s) across inputs, {} carried edge(s) resolved, {} still pending",
        inputs.len(),
        ctx.state.pooled_types(),
        ctx.registry.len(),
        collisions,
        resolved,
        ctx.pending.len()
    );
    let schema = ctx.state.finalize();
    match format {
        OutputFormat::Strict => print!("{}", pg_schema_strict(&schema, "Discovered")),
        OutputFormat::Loose => print!("{}", pg_schema_loose(&schema, "Discovered")),
        OutputFormat::Xsd => print!("{}", to_xsd(&schema)),
        OutputFormat::Summary => {
            println!(
                "merged schema: {} node types, {} edge types ({} abstract)",
                schema.node_types.len(),
                schema.edge_types.len(),
                schema.node_types.iter().filter(|t| t.is_abstract()).count(),
            );
            print_type_lines(&schema);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Print a streamed discovery's schema in the requested output format —
/// shared by the plain and stateful `discover --stream` paths so their
/// output cannot drift apart.
fn print_stream_schema(
    result: &StreamResult,
    max_resident: usize,
    threads: usize,
    format: OutputFormat,
) {
    match format {
        OutputFormat::Strict => print!("{}", pg_schema_strict(&result.schema, "Discovered")),
        OutputFormat::Loose => print!("{}", pg_schema_loose(&result.schema, "Discovered")),
        OutputFormat::Xsd => print!("{}", to_xsd(&result.schema)),
        OutputFormat::Summary => {
            let total: f64 = result.chunk_times.iter().map(|t| t.as_secs_f64()).sum();
            println!(
                "{} elements in {} chunk(s) (peak resident {} elements) -> \
                 {} node types, {} edge types ({} abstract), {total:.3}s compute \
                 across {} thread(s)",
                result.elements,
                result.chunk_times.len(),
                max_resident,
                result.schema.node_types.len(),
                result.schema.edge_types.len(),
                result
                    .schema
                    .node_types
                    .iter()
                    .filter(|t| t.is_abstract())
                    .count(),
                threads,
            );
            print_type_lines(&result.schema);
        }
    }
}

/// The `discover --stream` path: report the merged schema plus streaming
/// accounting.
fn discover_stream(
    path: &str,
    opts: &StreamOpts,
    discoverer: &Discoverer,
    format: OutputFormat,
) -> Result<ExitCode, String> {
    let (result, summary) = stream_discover(path, opts, discoverer, true)?;
    report_warnings(&summary.warnings);
    print_stream_schema(
        &result,
        summary.max_resident_elements,
        resolve_threads(opts),
        format,
    );
    Ok(ExitCode::SUCCESS)
}
