//! `pg-hive` — command-line schema discovery for property graphs.
//!
//! ```text
//! pg-hive discover <graph.pgt> [--method elsh|minhash] [--theta T]
//!                  [--batches N] [--format strict|loose|xsd|summary]
//!                  [--sample] [--seed S]
//! pg-hive validate <graph.pgt> <schema-graph.pgt> [--loose]
//! pg-hive stats    <graph.pgt>
//! ```
//!
//! Graphs are read in the line-oriented text format of
//! [`pg_hive_graph::loader`] (see `examples/quickstart.rs` for a sample).

use pg_hive_core::serialize::{pg_schema_loose, pg_schema_strict, to_xsd};
use pg_hive_core::{validate, Discoverer, PipelineConfig, SamplingConfig, ValidationMode};
use pg_hive_graph::loader::load_text;
use pg_hive_graph::GraphStats;
use std::process::ExitCode;

mod args;
use args::{Args, Command, OutputFormat};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };

    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Args) -> Result<ExitCode, String> {
    match args.command {
        Command::Discover {
            path,
            method,
            theta,
            batches,
            format,
            sample,
            seed,
        } => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let graph = load_text(&text).map_err(|e| format!("parse {path}: {e}"))?;
            let config = PipelineConfig {
                method,
                theta,
                seed,
                datatype_sampling: sample.then(SamplingConfig::default),
                ..PipelineConfig::default()
            };
            let discoverer = Discoverer::new(config);
            let result = if batches > 1 {
                discoverer.discover_incremental(&graph, batches)
            } else {
                discoverer.discover(&graph)
            };
            match format {
                OutputFormat::Strict => {
                    print!("{}", pg_schema_strict(&result.schema, "Discovered"))
                }
                OutputFormat::Loose => print!("{}", pg_schema_loose(&result.schema, "Discovered")),
                OutputFormat::Xsd => print!("{}", to_xsd(&result.schema)),
                OutputFormat::Summary => {
                    println!(
                        "{} nodes, {} edges -> {} node types, {} edge types \
                         ({} abstract), discovery {:.3}s",
                        graph.node_count(),
                        graph.edge_count(),
                        result.schema.node_types.len(),
                        result.schema.edge_types.len(),
                        result
                            .schema
                            .node_types
                            .iter()
                            .filter(|t| t.is_abstract())
                            .count(),
                        result.stats.timings.discovery().as_secs_f64()
                    );
                    for t in &result.schema.node_types {
                        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
                        println!(
                            "  node {{{}}} x{} ({} props)",
                            labels.join(","),
                            t.instance_count,
                            t.props.len()
                        );
                    }
                    for t in &result.schema.edge_types {
                        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
                        println!(
                            "  edge {{{}}} x{} ({} endpoint pairs)",
                            labels.join(","),
                            t.instance_count,
                            t.endpoints.len()
                        );
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Validate {
            data_path,
            schema_path,
            loose,
        } => {
            let data_text = std::fs::read_to_string(&data_path)
                .map_err(|e| format!("cannot read {data_path}: {e}"))?;
            let data = load_text(&data_text).map_err(|e| format!("parse {data_path}: {e}"))?;
            let schema_text = std::fs::read_to_string(&schema_path)
                .map_err(|e| format!("cannot read {schema_path}: {e}"))?;
            let schema_graph =
                load_text(&schema_text).map_err(|e| format!("parse {schema_path}: {e}"))?;
            // The "schema" argument is itself a graph: discover its schema,
            // then validate the data against it (schema-by-example).
            let schema = Discoverer::new(PipelineConfig::default())
                .discover(&schema_graph)
                .schema;
            let mode = if loose {
                ValidationMode::Loose
            } else {
                ValidationMode::Strict
            };
            let report = validate(&data, &schema, mode);
            if report.is_valid() {
                println!(
                    "valid: {} nodes / {} edges conform ({mode:?})",
                    report.nodes_checked, report.edges_checked
                );
                Ok(ExitCode::SUCCESS)
            } else {
                println!("{} violation(s):", report.violations.len());
                for v in report.violations.iter().take(50) {
                    println!("  {v}");
                }
                if report.violations.len() > 50 {
                    println!("  ... and {} more", report.violations.len() - 50);
                }
                Ok(ExitCode::FAILURE)
            }
        }
        Command::Stats { path } => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let graph = load_text(&text).map_err(|e| format!("parse {path}: {e}"))?;
            let s = GraphStats::compute(&graph);
            println!("nodes:          {}", s.nodes);
            println!("edges:          {}", s.edges);
            println!("node labels:    {}", s.node_labels);
            println!("edge labels:    {}", s.edge_labels);
            println!("node label sets:{}", s.node_label_sets);
            println!("node patterns:  {}", s.node_patterns);
            println!("edge patterns:  {}", s.edge_patterns);
            Ok(ExitCode::SUCCESS)
        }
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(ExitCode::SUCCESS)
        }
    }
}
