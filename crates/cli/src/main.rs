//! `pg-hive` — command-line schema discovery for property graphs.
//!
//! ```text
//! pg-hive discover <input> [--method elsh|minhash] [--theta T]
//!                  [--batches N] [--format strict|loose|xsd|summary]
//!                  [--sample] [--seed S]
//!                  [--input-format pgt|csv|jsonl] [--stream]
//!                  [--chunk-size N]
//! pg-hive validate <graph.pgt> <schema-graph.pgt> [--loose]
//! pg-hive stats    <input> [--input-format pgt|csv|jsonl] [--stream]
//! ```
//!
//! Inputs are read in one of three formats (see [`pg_hive_graph::stream`]):
//! the line-oriented `.pgt` text format of [`pg_hive_graph::loader`], CSV
//! (`<input>` is a directory with `nodes.csv` + optional `edges.csv`), or
//! JSON-Lines (one node/edge object per line).
//!
//! With `--stream`, `discover` feeds independent ~`--chunk-size`-element
//! chunks through `Discoverer::discover_stream`, so resident memory is
//! O(chunk) instead of O(dataset) (§4.6): per-chunk progress goes to
//! stderr, and the report includes the peak-resident element count plus
//! counted ingestion warnings (cross-chunk edges, dangling refs).

use pg_hive_core::schema::SchemaGraph;
use pg_hive_core::serialize::{pg_schema_loose, pg_schema_strict, to_xsd};
use pg_hive_core::{validate, Discoverer, PipelineConfig, SamplingConfig, ValidationMode};
use pg_hive_graph::loader::load_text;
use pg_hive_graph::stream::{csv::CsvSource, jsonl::JsonlSource, pgt::PgtSource};
use pg_hive_graph::{ChunkedTextReader, GraphSource, GraphStats, PropertyGraph, StreamWarnings};
use std::io::{BufReader, Write};
use std::path::Path;
use std::process::ExitCode;

mod args;
use args::{Args, Command, InputFormat, OutputFormat};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };

    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Open a streaming record source for `path` in the given wire format.
fn open_source(path: &str, format: InputFormat) -> Result<Box<dyn GraphSource>, String> {
    match format {
        InputFormat::Pgt => {
            let f = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok(Box::new(PgtSource::new(BufReader::new(f))))
        }
        InputFormat::Csv => CsvSource::open_dir(Path::new(path))
            .map(|s| Box::new(s) as Box<dyn GraphSource>)
            .map_err(|e| format!("cannot open csv dataset {path}: {e}")),
        InputFormat::Jsonl => {
            let f = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok(Box::new(JsonlSource::new(BufReader::new(f))))
        }
    }
}

/// Load a whole graph into memory (the non-streaming path).
fn load_graph(path: &str, format: InputFormat) -> Result<PropertyGraph, String> {
    match format {
        InputFormat::Pgt => {
            // Keep the strict loader here: it reports duplicate-id and
            // unknown-node errors with line numbers.
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            load_text(&text).map_err(|e| format!("parse {path}: {e}"))
        }
        _ => {
            let source = open_source(path, format)?;
            let (g, warnings) = pg_hive_graph::stream::read_all(source)
                .map_err(|e| format!("parse {path}: {e}"))?;
            report_warnings(&warnings);
            Ok(g)
        }
    }
}

fn report_warnings(w: &StreamWarnings) {
    if w.is_empty() {
        return;
    }
    eprintln!(
        "warning: {} cross-chunk edge(s) resolved through stubs, {} edge(s) dropped \
         (endpoint never declared; {} evicted from the pending buffer), {} edge(s) \
         arrived before an endpoint, {} duplicate node id(s)",
        w.cross_chunk_edges,
        w.unresolved_edges,
        w.evicted_edges,
        w.deferred_edges,
        w.duplicate_nodes
    );
}

fn print_type_lines(schema: &SchemaGraph) {
    for t in &schema.node_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        println!(
            "  node {{{}}} x{} ({} props)",
            labels.join(","),
            t.instance_count,
            t.props.len()
        );
    }
    for t in &schema.edge_types {
        let labels: Vec<&str> = t.labels.iter().map(String::as_str).collect();
        println!(
            "  edge {{{}}} x{} ({} endpoint pairs)",
            labels.join(","),
            t.instance_count,
            t.endpoints.len()
        );
    }
}

fn run(args: Args) -> Result<ExitCode, String> {
    match args.command {
        Command::Discover {
            path,
            method,
            theta,
            batches,
            format,
            sample,
            seed,
            input_format,
            stream,
            chunk_size,
        } => {
            let config = PipelineConfig {
                method,
                theta,
                seed,
                datatype_sampling: sample.then(SamplingConfig::default),
                ..PipelineConfig::default()
            };
            let discoverer = Discoverer::new(config);

            if stream {
                return discover_stream(&path, input_format, chunk_size, &discoverer, format);
            }

            let graph = load_graph(&path, input_format)?;
            let result = if batches > 1 {
                discoverer.discover_incremental(&graph, batches)
            } else {
                discoverer.discover(&graph)
            };
            match format {
                OutputFormat::Strict => {
                    print!("{}", pg_schema_strict(&result.schema, "Discovered"))
                }
                OutputFormat::Loose => print!("{}", pg_schema_loose(&result.schema, "Discovered")),
                OutputFormat::Xsd => print!("{}", to_xsd(&result.schema)),
                OutputFormat::Summary => {
                    println!(
                        "{} nodes, {} edges -> {} node types, {} edge types \
                         ({} abstract), discovery {:.3}s",
                        graph.node_count(),
                        graph.edge_count(),
                        result.schema.node_types.len(),
                        result.schema.edge_types.len(),
                        result
                            .schema
                            .node_types
                            .iter()
                            .filter(|t| t.is_abstract())
                            .count(),
                        result.stats.timings.discovery().as_secs_f64()
                    );
                    print_type_lines(&result.schema);
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Validate {
            data_path,
            schema_path,
            loose,
        } => {
            let data_text = std::fs::read_to_string(&data_path)
                .map_err(|e| format!("cannot read {data_path}: {e}"))?;
            let data = load_text(&data_text).map_err(|e| format!("parse {data_path}: {e}"))?;
            let schema_text = std::fs::read_to_string(&schema_path)
                .map_err(|e| format!("cannot read {schema_path}: {e}"))?;
            let schema_graph =
                load_text(&schema_text).map_err(|e| format!("parse {schema_path}: {e}"))?;
            // The "schema" argument is itself a graph: discover its schema,
            // then validate the data against it (schema-by-example).
            let schema = Discoverer::new(PipelineConfig::default())
                .discover(&schema_graph)
                .schema;
            let mode = if loose {
                ValidationMode::Loose
            } else {
                ValidationMode::Strict
            };
            let report = validate(&data, &schema, mode);
            if report.is_valid() {
                println!(
                    "valid: {} nodes / {} edges conform ({mode:?})",
                    report.nodes_checked, report.edges_checked
                );
                Ok(ExitCode::SUCCESS)
            } else {
                println!("{} violation(s):", report.violations.len());
                for v in report.violations.iter().take(50) {
                    println!("  {v}");
                }
                if report.violations.len() > 50 {
                    println!("  ... and {} more", report.violations.len() - 50);
                }
                Ok(ExitCode::FAILURE)
            }
        }
        Command::Stats {
            path,
            input_format,
            stream,
        } => {
            let s = if stream {
                // Fold records directly — no resident graph at all.
                let source = open_source(&path, input_format)?;
                let (s, dangling) = pg_hive_graph::stats::stream_stats(source)
                    .map_err(|e| format!("parse {path}: {e}"))?;
                if dangling > 0 {
                    eprintln!(
                        "warning: {dangling} edge(s) reference node ids never declared; \
                         their patterns count unlabeled endpoints"
                    );
                }
                s
            } else {
                GraphStats::compute(&load_graph(&path, input_format)?)
            };
            println!("nodes:          {}", s.nodes);
            println!("edges:          {}", s.edges);
            println!("node labels:    {}", s.node_labels);
            println!("edge labels:    {}", s.edge_labels);
            println!("node label sets:{}", s.node_label_sets);
            println!("node patterns:  {}", s.node_patterns);
            println!("edge patterns:  {}", s.edge_patterns);
            Ok(ExitCode::SUCCESS)
        }
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// The `discover --stream` path: chunked ingestion into
/// `Discoverer::discover_stream`, with per-chunk progress on stderr.
fn discover_stream(
    path: &str,
    input_format: InputFormat,
    chunk_size: usize,
    discoverer: &Discoverer,
    format: OutputFormat,
) -> Result<ExitCode, String> {
    let source = open_source(path, input_format)?;
    let mut reader = ChunkedTextReader::new(source, chunk_size);
    let mut stream_err: Option<String> = None;
    let mut chunk_no = 0usize;
    let result = discoverer.discover_stream(std::iter::from_fn(|| match reader.next_chunk() {
        Ok(Some(g)) => {
            chunk_no += 1;
            eprintln!(
                "chunk {chunk_no}: {} nodes, {} edges",
                g.node_count(),
                g.edge_count()
            );
            let _ = std::io::stderr().flush();
            Some(g)
        }
        Ok(None) => None,
        Err(e) => {
            stream_err = Some(e.to_string());
            None
        }
    }));
    if let Some(e) = stream_err {
        return Err(format!("parse {path}: {e}"));
    }
    let warnings = reader.warnings();
    report_warnings(&warnings);

    match format {
        OutputFormat::Strict => print!("{}", pg_schema_strict(&result.schema, "Discovered")),
        OutputFormat::Loose => print!("{}", pg_schema_loose(&result.schema, "Discovered")),
        OutputFormat::Xsd => print!("{}", to_xsd(&result.schema)),
        OutputFormat::Summary => {
            let total: f64 = result.chunk_times.iter().map(|t| t.as_secs_f64()).sum();
            println!(
                "{} elements in {} chunk(s) (peak resident {} elements) -> \
                 {} node types, {} edge types ({} abstract), {total:.3}s",
                result.elements,
                result.chunk_times.len(),
                reader.max_resident_elements(),
                result.schema.node_types.len(),
                result.schema.edge_types.len(),
                result
                    .schema
                    .node_types
                    .iter()
                    .filter(|t| t.is_abstract())
                    .count(),
            );
            print_type_lines(&result.schema);
        }
    }
    Ok(ExitCode::SUCCESS)
}
