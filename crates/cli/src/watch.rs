//! `pg-hive watch` — long-running schema-drift monitoring.
//!
//! The watcher keeps one resident canonical [`SchemaState`] and, on every
//! pass, re-ingests only the bytes **appended** to the input since the
//! previous pass (per-file byte offsets; a shrunken file is treated as a
//! rotation and re-ingested from scratch). Appended records are chunked and
//! absorbed into the resident state — incremental and associative, not
//! repeated full re-discovery — and the pass's finalized schema is diffed
//! against the previous one. Drift events are printed with the same
//! monotonicity verdict as `pg-hive diff`; with `--once` the process
//! performs exactly one re-check after the baseline and exits 1 when drift
//! was detected (0 otherwise), which is the CI-friendly mode.
//!
//! The input may also be a **directory tree** of mixed-format files
//! ([`MultiSource`] enumeration: `*.pgt`, `*.jsonl`, sub-directories
//! holding `nodes.csv`). Every enumerated input is tracked with its own
//! per-file offsets and absorbed in stable sorted order; the file set is
//! fixed at watch start (restart the watcher to pick up new files).
//!
//! Edges appended in a later pass usually reference nodes ingested in an
//! earlier one; the chunk reader's id → label-set registry is carried
//! across passes ([`ChunkedTextReader::with_registry`]), so such edges
//! resolve through labeled stubs and are counted as cross-chunk warnings
//! instead of being dropped. Warnings are aggregated **per category**
//! across passes — whenever the totals change, one breakdown line with the
//! running counts is printed, never the same warning repeated pass after
//! pass.
//!
//! Partially written trailing lines are left unconsumed (the delta is cut
//! at the last newline), so appending concurrently with a pass never
//! corrupts a record — it is simply picked up by the next pass.
//!
//! # Durability (`--state-dir`)
//!
//! With `--state-dir <dir>`, the watcher checkpoints its **full resumable
//! context** — the [`SchemaState`] pools, the id → label-set registry, the
//! per-file offsets/fingerprints, and the discovery-config guard — to
//! `<dir>/watch.snapshot` after every pass, atomically (temp file +
//! rename; see [`pg_hive_core::snapshot`]). On start, an existing
//! checkpoint is loaded and the run continues exactly where the killed
//! process stopped: the next pass ingests only bytes appended since the
//! last checkpoint, pass numbering continues, and a restart with no new
//! bytes never fires a spurious drift event. A corrupt, truncated,
//! future-version, or configuration-incompatible checkpoint is refused
//! with a named `snapshot:` error — never silently re-ingested.
//!
//! # Snapshot lifecycle (`--keep`, `--partition`)
//!
//! `--keep K` retains the last K rotated snapshots as
//! `<dir>/watch.snapshot.1` (most recent) through `.K`, pruning older
//! slots; the live `watch.snapshot` itself is always promoted atomically.
//! Without `--partition`, the previous checkpoint rotates into the chain on
//! every pass, so the retained files are the last K pass checkpoints.
//! With `--partition passes:<n>` the resident state is **rolled** into a
//! retained snapshot every n passes and a fresh child state takes over;
//! the reported schema is then the merge of the current partition and the
//! retained window — "the schema of the last K partitions". Dropping an
//! expired partition can therefore produce *non-monotone* drift: types
//! only old data supported disappear, which is exactly the point. When a
//! partition falls out of the window, registry bindings older than the
//! window are compacted away ([`LabelSetRegistry::compact_before`]),
//! bounding the otherwise append-only registry under rotation. An input
//! rotation resets the resident partition but leaves the retained window
//! intact — history already rolled is history. Retained snapshots are
//! ordinary engine states: `pg-hive merge-state` can fold any subset of
//! them back together offline.
//!
//! # Alerting (`--on-drift`)
//!
//! Each `--on-drift exec:<cmd>` / `--on-drift jsonl:<path>` flag attaches
//! a [`crate::sink::DriftSink`]; every drift pass delivers one structured
//! [`crate::sink::DriftEvent`] (pass number, timestamp, diff summary,
//! monotonicity verdict) to every sink.

use crate::args::{InputFormat, StreamOpts};
use crate::sink::{emit_all, unix_timestamp, DriftEvent, DriftSink};
use pg_hive_core::schema::SchemaGraph;
use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::sigcache::DEFAULT_CACHE_CAP;
use pg_hive_core::snapshot::{
    context_snapshot, context_snapshot_cached, sigcache_from_snapshot, FileCheckpoint,
    ResumeContext, Snapshot, SnapshotConfig, WatchCheckpoint,
};
use pg_hive_core::{diff_schemas, AbsorbReport, Discoverer, SchemaState, SignatureCache};
use pg_hive_graph::stream::{csv::CsvSource, jsonl::JsonlSource, pgt::PgtSource};
use pg_hive_graph::{
    ChunkedTextReader, LabelSetRegistry, MultiSource, RawGraphSource, Record, SourceKind,
    StreamWarnings,
};
use std::collections::VecDeque;
use std::io::{Cursor, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// File name of the checkpoint inside `--state-dir`. Rotated snapshots
/// live next to it as `watch.snapshot.1` (most recent) … `.K`.
const SNAPSHOT_FILE: &str = "watch.snapshot";

/// How many trailing consumed bytes are remembered to recognize a file
/// that was truncated and rewritten *past* the old offset between passes
/// (logrotate `copytruncate` + a fast writer): the length check alone
/// cannot see that.
const ROTATION_TAIL: usize = 64;

/// One watched file: consumed byte offset, the last consumed bytes (a
/// rotation fingerprint), plus, for CSV, the retained header line
/// (appended records do not repeat it).
struct TrackedFile {
    path: PathBuf,
    offset: u64,
    tail: Vec<u8>,
    header: Option<Vec<u8>>,
    required: bool,
}

enum FileDelta {
    Unchanged,
    Rotated,
    Appended(Vec<u8>),
}

impl TrackedFile {
    fn new(path: PathBuf, required: bool) -> Self {
        Self {
            path,
            offset: 0,
            tail: Vec::new(),
            header: None,
            required,
        }
    }

    fn reset(&mut self) {
        self.offset = 0;
        self.tail.clear();
        self.header = None;
    }

    /// Read the bytes appended since the last pass, cut at the last
    /// newline. `keep_header` retains the first-ever line separately and
    /// prepends it to every later delta (CSV headers).
    fn read_delta(&mut self, keep_header: bool) -> Result<FileDelta, String> {
        let len = match std::fs::metadata(&self.path) {
            Ok(m) => m.len(),
            Err(e) if self.required => {
                return Err(format!("cannot read {}: {e}", self.path.display()))
            }
            Err(_) => return Ok(FileDelta::Unchanged),
        };
        if len < self.offset {
            return Ok(FileDelta::Rotated);
        }
        let mut f = std::fs::File::open(&self.path)
            .map_err(|e| format!("cannot read {}: {e}", self.path.display()))?;
        // Same-or-larger length does not prove the same file: verify the
        // bytes we already consumed still end the way we remember before
        // trusting the offset.
        if !self.tail.is_empty() {
            let tail_start = self.offset - self.tail.len() as u64;
            f.seek(SeekFrom::Start(tail_start))
                .map_err(|e| format!("cannot seek {}: {e}", self.path.display()))?;
            let mut probe = vec![0u8; self.tail.len()];
            if f.read_exact(&mut probe).is_err() || probe != self.tail {
                return Ok(FileDelta::Rotated);
            }
        }
        if len == self.offset {
            return Ok(FileDelta::Unchanged);
        }
        f.seek(SeekFrom::Start(self.offset))
            .map_err(|e| format!("cannot seek {}: {e}", self.path.display()))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)
            .map_err(|e| format!("cannot read {}: {e}", self.path.display()))?;
        // A writer may be mid-append: consume only whole lines.
        let cut = buf.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        buf.truncate(cut);
        if buf.is_empty() {
            return Ok(FileDelta::Unchanged);
        }
        self.offset += buf.len() as u64;
        let keep = buf.len().min(ROTATION_TAIL);
        self.tail.extend_from_slice(&buf[buf.len() - keep..]);
        let excess = self.tail.len().saturating_sub(ROTATION_TAIL);
        self.tail.drain(..excess);
        if keep_header {
            match &self.header {
                None => {
                    let nl = buf
                        .iter()
                        .position(|&b| b == b'\n')
                        .map_or(buf.len(), |i| i + 1);
                    self.header = Some(buf[..nl].to_vec());
                    // This first delta already starts with the header.
                }
                Some(h) => {
                    let mut with_header = h.clone();
                    with_header.extend_from_slice(&buf);
                    buf = with_header;
                }
            }
        }
        Ok(FileDelta::Appended(buf))
    }
}

/// What one pass found on disk.
struct PassRead {
    /// Some input shrank (log rotation / truncation): the resident state
    /// and registry were invalidated and the sources below hold the full
    /// re-read content.
    rotated: bool,
    /// One parser per input that had appended (or, after rotation, any)
    /// records, in stable enumeration order; empty when nothing changed.
    sources: Vec<Box<dyn RawGraphSource>>,
}

/// One watched input: one file for pgt/jsonl, the `nodes.csv` (+ optional
/// `edges.csv`) pair for CSV.
struct WatchUnit {
    format: InputFormat,
    files: Vec<TrackedFile>,
}

impl WatchUnit {
    fn single(path: PathBuf, format: InputFormat) -> Self {
        let files = match format {
            InputFormat::Pgt | InputFormat::Jsonl => vec![TrackedFile::new(path, true)],
            InputFormat::Csv => vec![
                TrackedFile::new(path.join("nodes.csv"), true),
                TrackedFile::new(path.join("edges.csv"), false),
            ],
        };
        Self { format, files }
    }
}

/// The watched input set: one [`WatchUnit`] for a single-file (or CSV
/// dataset) input, one per enumerated entry for a directory tree.
struct WatchedInput {
    units: Vec<WatchUnit>,
}

impl WatchedInput {
    fn open(path: &str, format: InputFormat) -> Result<Self, String> {
        let p = Path::new(path);
        // A directory is a multi-source tree — unless it is the CSV dataset
        // directory the user explicitly asked for with --input-format csv.
        if p.is_dir() && !(format == InputFormat::Csv && p.join("nodes.csv").is_file()) {
            let ms =
                MultiSource::enumerate(p).map_err(|e| format!("cannot enumerate {path}: {e}"))?;
            if ms.is_empty() {
                return Err(format!(
                    "no recognized inputs under {path}: expected *.pgt / *.jsonl files or \
                     directories holding nodes.csv"
                ));
            }
            let units = ms
                .entries()
                .iter()
                .map(|e| {
                    let fmt = match e.kind {
                        SourceKind::Pgt => InputFormat::Pgt,
                        SourceKind::Csv => InputFormat::Csv,
                        SourceKind::Jsonl => InputFormat::Jsonl,
                    };
                    WatchUnit::single(e.path.clone(), fmt)
                })
                .collect();
            return Ok(Self { units });
        }
        Ok(Self {
            units: vec![WatchUnit::single(PathBuf::from(path), format)],
        })
    }

    /// Every tracked file across units, in enumeration order — the flat
    /// list a checkpoint persists.
    fn tracked_files(&self) -> impl Iterator<Item = &TrackedFile> {
        self.units.iter().flat_map(|u| u.files.iter())
    }

    fn read_pass(&mut self) -> Result<PassRead, String> {
        let mut deltas: Vec<Vec<FileDelta>> = Vec::with_capacity(self.units.len());
        let mut rotated = false;
        'scan: for u in &mut self.units {
            let keep_header = u.format == InputFormat::Csv;
            let mut ds = Vec::with_capacity(u.files.len());
            for f in &mut u.files {
                match f.read_delta(keep_header)? {
                    FileDelta::Rotated => {
                        rotated = true;
                        break 'scan;
                    }
                    d => ds.push(d),
                }
            }
            deltas.push(ds);
        }
        if rotated {
            // One shrunken file invalidates the whole resident state:
            // restart every offset and re-read every input's full content.
            deltas.clear();
            for u in &mut self.units {
                let keep_header = u.format == InputFormat::Csv;
                let mut ds = Vec::with_capacity(u.files.len());
                for f in &mut u.files {
                    f.reset();
                    ds.push(match f.read_delta(keep_header)? {
                        FileDelta::Rotated => FileDelta::Unchanged, // racing writer; next pass
                        d => d,
                    });
                }
                deltas.push(ds);
            }
        }
        let mut sources: Vec<Box<dyn RawGraphSource>> = Vec::new();
        for (u, ds) in self.units.iter().zip(deltas) {
            let mut bufs: Vec<Option<Vec<u8>>> = ds
                .into_iter()
                .map(|d| match d {
                    FileDelta::Appended(b) => Some(b),
                    _ => None,
                })
                .collect();
            if bufs.iter().all(Option::is_none) {
                continue;
            }
            let source: Box<dyn RawGraphSource> = match u.format {
                InputFormat::Pgt => Box::new(PgtSource::new(Cursor::new(
                    bufs[0].take().unwrap_or_default(),
                ))),
                InputFormat::Jsonl => Box::new(JsonlSource::new(Cursor::new(
                    bufs[0].take().unwrap_or_default(),
                ))),
                InputFormat::Csv => {
                    // An untouched nodes.csv still contributes its header so
                    // the source can parse appended edge records.
                    let nodes = bufs[0]
                        .take()
                        .or_else(|| u.files[0].header.clone())
                        .unwrap_or_default();
                    let edges = bufs[1].take();
                    Box::new(CsvSource::new(Cursor::new(nodes), edges.map(Cursor::new)))
                }
            };
            sources.push(source);
        }
        Ok(PassRead { rotated, sources })
    }
}

/// One aggregated per-category warning line: only categories that occurred,
/// each with its running total.
fn warning_breakdown(w: &StreamWarnings) -> String {
    let mut parts = Vec::new();
    for (count, what) in [
        (
            w.cross_chunk_edges,
            "cross-chunk edge(s) resolved through stubs",
        ),
        (
            w.unresolved_edges,
            "edge(s) dropped (endpoint never declared)",
        ),
        (w.evicted_edges, "edge(s) evicted from the pending buffer"),
        (w.deferred_edges, "edge(s) arrived before an endpoint"),
        (w.duplicate_nodes, "duplicate node id(s)"),
    ] {
        if count > 0 {
            parts.push(format!("{count} {what}"));
        }
    }
    parts.join(", ")
}

/// Chunk `source` (seeding the reader with the carried registry) and absorb
/// every chunk into the resident state. Edges whose endpoints are still
/// unknown at this source's EOF are pushed to `pending` instead of being
/// dropped: a directory tree is enumerated alphabetically, so an input can
/// reference nodes an input absorbed *later in the same pass* declares —
/// the pass resolves its leftovers once every source has been read.
fn absorb_source(
    source: Box<dyn RawGraphSource>,
    opts: &StreamOpts,
    threads: usize,
    discoverer: &Discoverer,
    run: &mut WatchRun,
    pending: &mut Vec<Record>,
) -> Result<AbsorbReport, String> {
    let mut reader = ChunkedTextReader::with_registry(
        source,
        opts.chunk_size,
        std::mem::take(&mut run.registry),
    );
    reader.set_carry_unresolved(true);
    let mut stream_err: Option<String> = None;
    // Absorb into a pass-local delta (through the cross-pass signature
    // cache), then merge the delta into both the resident state and the
    // combined fold — associativity makes this byte-identical to folding
    // chunk states straight into the resident state.
    let mut delta = discoverer.new_state();
    let report = discoverer.absorb_stream_cached(
        std::iter::from_fn(|| match reader.next_chunk() {
            Ok(c) => c,
            Err(e) => {
                stream_err = Some(e.to_string());
                None
            }
        }),
        &mut delta,
        threads,
        &run.cache,
    );
    if let Some(e) = stream_err {
        return Err(format!("parse error while watching: {e}"));
    }
    run.merge_delta(delta);
    pending.extend(reader.take_pending());
    run.warnings.absorb(&reader.warnings());
    run.registry = reader.into_registry();
    Ok(report)
}

/// End-of-pass leftover resolution: try every carried edge against the full
/// registry accumulated across all of this pass's sources; what still does
/// not resolve is counted as unresolved (its endpoint may yet arrive in a
/// later pass, but the resident state cannot hold unembedded records
/// indefinitely). Returns the number of edges resolved into the state.
fn resolve_pass_pending(discoverer: &Discoverer, run: &mut WatchRun, pending: Vec<Record>) -> u64 {
    if pending.is_empty() {
        return 0;
    }
    let mut delta = discoverer.new_state();
    let (left, resolved) = discoverer.resolve_pending(&mut delta, &run.registry, pending);
    run.merge_delta(delta);
    run.warnings.unresolved_edges += left.len() as u64;
    resolved
}

impl TrackedFile {
    fn to_checkpoint(&self) -> FileCheckpoint {
        FileCheckpoint {
            path: self.path.display().to_string(),
            offset: self.offset,
            tail: self.tail.clone(),
            header: self.header.clone(),
            required: self.required,
        }
    }

    fn restore(&mut self, cp: &FileCheckpoint) {
        self.offset = cp.offset;
        self.tail = cp.tail.clone();
        self.header = cp.header.clone();
    }
}

/// The mutable engine context the watch loop threads through passes —
/// exactly what a `--state-dir` checkpoint persists, plus the retained
/// partition window (`--partition`), whose states live in the rotated
/// snapshot files rather than the checkpoint itself.
struct WatchRun {
    /// The resident (current-partition) state.
    state: SchemaState,
    /// The resident ⊕ retained fold, maintained **incrementally**: every
    /// pass's delta state is merged into both `state` and this, so the
    /// reported schema comes from one `finalize_cached` call — O(1) on a
    /// no-drift pass, O(dirty pools) on a labeled-only append — instead of
    /// the old clone-everything-and-finalize on every pass. Rebuilt from
    /// scratch only on the structural events incremental maintenance
    /// cannot express: a partition expiring from the window, an input
    /// rotation resetting the resident state, or a checkpoint resume.
    combined: SchemaState,
    registry: LabelSetRegistry,
    warnings: StreamWarnings,
    pass: u64,
    /// Completed partition states, most recent first, capped at `--keep`.
    retained: VecDeque<SchemaState>,
    /// Cross-pass signature cache: chunks whose structure repeats an
    /// earlier pass (or an earlier chunk) skip embedding + LSH entirely.
    /// Persisted in the checkpoint so a restart resumes warm.
    cache: SignatureCache,
}

impl WatchRun {
    /// The schema this watch reports: the resident partition merged with
    /// every retained one ("the schema of the last K partitions"),
    /// finalized through the dirty-pool cache.
    fn merged_schema(&mut self) -> SchemaGraph {
        self.combined.finalize_cached()
    }

    /// Merge one pass delta into both the resident state and the combined
    /// fold — the incremental step that keeps `combined` equal to
    /// `state ⊕ retained` without ever re-cloning the window.
    fn merge_delta(&mut self, delta: SchemaState) {
        self.combined.merge(delta.clone());
        self.state.merge(delta);
    }

    /// Recompute `combined` from the resident state and the retained
    /// window — the slow path for window expiry / rotation / resume.
    fn rebuild_combined(&mut self) {
        let mut acc = self.state.clone();
        for s in &self.retained {
            acc.merge(s.clone());
        }
        self.combined = acc;
    }

    /// Roll the resident partition into the retained window: the resident
    /// state becomes the most recent retained snapshot, `fresh` takes over,
    /// and the registry starts a new generation. Once the window overflows
    /// `keep`, the oldest partition is dropped and every registry binding
    /// older than the window is compacted away — this is what bounds the
    /// otherwise append-only id → label-set registry under rotation.
    fn roll_partition(&mut self, keep: usize, fresh: SchemaState) {
        let done = std::mem::replace(&mut self.state, fresh);
        self.retained.push_front(done);
        self.registry.advance_generation();
        if self.retained.len() > keep {
            self.retained.truncate(keep);
            let min_gen = self.registry.generation().saturating_sub(keep as u32);
            self.registry.compact_before(min_gen);
            // A partition left the window: merge cannot subtract, so the
            // combined fold is rebuilt from what remains.
            self.rebuild_combined();
        }
        // No expiry → the fold's *content* is unchanged (the resident
        // state moved into the window and an empty state took its place),
        // so `combined` stays valid as-is.
    }
}

/// Shift the rotated snapshot chain one slot up (`.i` → `.i+1`), pruning
/// everything beyond `keep`, leaving slot `.1` free for the next rotation.
fn shift_rotated(dir: &Path, keep: usize) {
    let _ = std::fs::remove_file(dir.join(format!("{SNAPSHOT_FILE}.{keep}")));
    for i in (1..keep).rev() {
        let from = dir.join(format!("{SNAPSHOT_FILE}.{i}"));
        if from.exists() {
            let _ = std::fs::rename(&from, dir.join(format!("{SNAPSHOT_FILE}.{}", i + 1)));
        }
    }
}

/// Write the full resumable context to `<dir>/watch.snapshot` atomically
/// (temp file + rename — the promote step). With `rotate_keep` set
/// (`--keep` without `--partition`), the previous checkpoint is first
/// rotated into the `.1..K` chain instead of being overwritten.
fn save_checkpoint(
    dir: &Path,
    config: &SnapshotConfig,
    path: &str,
    format: InputFormat,
    input: &WatchedInput,
    run: &WatchRun,
    rotate_keep: Option<usize>,
) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", dir.display()))?;
    if let Some(keep) = rotate_keep {
        shift_rotated(dir, keep);
        let current = dir.join(SNAPSHOT_FILE);
        if current.exists() {
            let _ = std::fs::rename(&current, dir.join(format!("{SNAPSHOT_FILE}.1")));
        }
    }
    let watch = WatchCheckpoint {
        input: path.to_string(),
        format: format.name().to_string(),
        pass: run.pass,
        warnings: run.warnings,
        files: input
            .tracked_files()
            .map(TrackedFile::to_checkpoint)
            .collect(),
    };
    // Serialize from borrowed parts: the state pools and the registry (one
    // entry per node id ever seen) are the large pieces, and this runs
    // after *every* pass — cloning them into an owned ResumeContext first
    // would double the checkpoint's memory cost for nothing. The signature
    // cache rides along in its optional section so a restart resumes warm.
    context_snapshot_cached(
        config,
        &run.state,
        &run.registry,
        Some(&watch),
        &[],
        Some(&run.cache),
    )
    .write_atomic(&dir.join(SNAPSHOT_FILE))
    .map_err(|e| e.to_string())
}

/// Persist a just-completed partition as rotated snapshot `.1` (shifting
/// the chain first). The file is an ordinary engine state with no watch
/// progress — `pg-hive merge-state` can fold any subset of retained
/// partitions back together offline.
fn save_partition(
    dir: &Path,
    config: &SnapshotConfig,
    run: &WatchRun,
    keep: usize,
) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", dir.display()))?;
    shift_rotated(dir, keep);
    context_snapshot(config, &run.state, &run.registry, None, &[])
        .write_atomic(&dir.join(format!("{SNAPSHOT_FILE}.1")))
        .map_err(|e| e.to_string())
}

/// Load the retained partition states `.1..K` (most recent first), stopping
/// at the first missing slot.
fn load_retained(
    dir: &Path,
    keep: usize,
    config: &SnapshotConfig,
) -> Result<VecDeque<SchemaState>, String> {
    let mut retained = VecDeque::new();
    for i in 1..=keep {
        let p = dir.join(format!("{SNAPSHOT_FILE}.{i}"));
        if !p.exists() {
            break;
        }
        let ctx =
            ResumeContext::load(&p).map_err(|e| format!("{e} (while loading {})", p.display()))?;
        ctx.config
            .ensure_matches(config)
            .map_err(|e| e.to_string())?;
        retained.push_back(ctx.state);
    }
    Ok(retained)
}

/// Load `<dir>/watch.snapshot` if present, validate it against this run's
/// input and configuration, and restore the per-file read positions.
/// Returns `None` when no checkpoint exists (a fresh start); any *invalid*
/// checkpoint — corrupt, truncated, future-version, wrong input, or
/// incompatible configuration — is a named `snapshot:` error, never a
/// silent re-ingest.
fn try_resume(
    dir: &Path,
    config: &SnapshotConfig,
    path: &str,
    format: InputFormat,
    input: &mut WatchedInput,
) -> Result<Option<WatchRun>, String> {
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    if !snapshot_path.exists() {
        return Ok(None);
    }
    let load_err =
        |e: pg_hive_core::SnapshotError| format!("{e} (while loading {})", snapshot_path.display());
    let snap = Snapshot::read(&snapshot_path).map_err(load_err)?;
    let ctx = ResumeContext::from_snapshot(&snap).map_err(load_err)?;
    // The cache section is optional: pre-cache checkpoints resume cold.
    let cache = sigcache_from_snapshot(&snap, DEFAULT_CACHE_CAP).map_err(load_err)?;
    ctx.config
        .ensure_matches(config)
        .map_err(|e| e.to_string())?;
    let watch = ctx.watch.ok_or_else(|| {
        format!(
            "snapshot: {} has no watch progress — it was written by `discover --save-state`, \
             not `watch --state-dir`",
            snapshot_path.display()
        )
    })?;
    if watch.input != path {
        return Err(format!(
            "snapshot: the checkpoint was saved for input '{}', this run watches '{path}' — \
             point watch at the same input or use a different --state-dir",
            watch.input
        ));
    }
    if watch.format != format.name() {
        return Err(format!(
            "snapshot: the checkpoint was saved for --input-format {}, this run uses {}",
            watch.format,
            format.name()
        ));
    }
    let tracked = input.tracked_files().count();
    if watch.files.len() != tracked {
        return Err(format!(
            "snapshot: the checkpoint tracks {} file(s), this input has {} — the watched \
             file set is fixed at watch start; use a fresh --state-dir after changing it",
            watch.files.len(),
            tracked
        ));
    }
    let mut idx = 0;
    for unit in &mut input.units {
        for tracked in &mut unit.files {
            tracked.restore(&watch.files[idx]);
            idx += 1;
        }
    }
    Ok(Some(WatchRun {
        combined: ctx.state.clone(),
        state: ctx.state,
        registry: ctx.registry,
        warnings: watch.warnings,
        pass: watch.pass,
        retained: VecDeque::new(),
        cache,
    }))
}

/// Run the watch loop. `--once` performs the baseline pass plus exactly one
/// re-check and exits with the `diff` exit-code semantics (1 = drift);
/// without it the loop runs until the process is killed or the input
/// becomes unreadable. With `state_dir` set, the loop checkpoints after
/// every pass and auto-resumes from an existing checkpoint on start; each
/// drift event is also delivered to every `sink`. `keep` retains rotated
/// snapshots, and `partition_passes` rolls the resident state into the
/// retained window every n passes (see the module docs).
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface one-to-one
pub fn run_watch(
    path: &str,
    opts: &StreamOpts,
    discoverer: &Discoverer,
    interval: Duration,
    once: bool,
    state_dir: Option<&str>,
    keep: Option<usize>,
    partition_passes: Option<u64>,
    sinks: &[DriftSink],
) -> Result<ExitCode, String> {
    let mut input = WatchedInput::open(path, opts.input_format)?;
    let threads = crate::resolve_threads(opts);
    let config = SnapshotConfig::new(discoverer.config(), opts.chunk_size);
    let state_dir = state_dir.map(Path::new);
    // --keep without --partition rotates the previous checkpoint on every
    // pass; with --partition the rotated slots hold completed partitions.
    let rotate_keep = if partition_passes.is_none() {
        keep
    } else {
        None
    };
    let resumed = match state_dir {
        Some(dir) => try_resume(dir, &config, path, opts.input_format, &mut input)?,
        None => None,
    };

    let mut run;
    let mut schema;
    match resumed {
        Some(mut r) => {
            // Resume: the baseline is the checkpointed state (plus, with
            // --partition, the retained window reloaded from the rotated
            // snapshots), finalized — byte-identical to what the killed
            // process last saw, so a restart with no new bytes can never
            // fire a spurious drift event.
            if let (Some(dir), Some(k), Some(_)) = (state_dir, keep, partition_passes) {
                r.retained = load_retained(dir, k, &config)?;
                r.rebuild_combined();
            }
            run = r;
            schema = run.merged_schema();
            eprintln!(
                "watch {path}: resumed from checkpoint (pass {}, {} node type(s), {} edge \
                 type(s), {} registered id(s), {} retained partition(s)); re-checking every \
                 {}s{}",
                run.pass,
                schema.node_types.len(),
                schema.edge_types.len(),
                run.registry.len(),
                run.retained.len(),
                interval.as_secs(),
                if once { " (once)" } else { "" }
            );
        }
        None => {
            run = WatchRun {
                state: discoverer.new_state(),
                combined: discoverer.new_state(),
                registry: LabelSetRegistry::default(),
                warnings: StreamWarnings::default(),
                pass: 1,
                retained: VecDeque::new(),
                cache: SignatureCache::default(),
            };
            // Baseline pass.
            let read = input.read_pass()?;
            let mut elements = 0u64;
            let mut chunks = 0usize;
            let mut pending = Vec::new();
            for src in read.sources {
                let report = absorb_source(src, opts, threads, discoverer, &mut run, &mut pending)?;
                elements += report.elements;
                chunks += report.chunk_times.len();
            }
            elements += resolve_pass_pending(discoverer, &mut run, pending);
            if elements == 0 {
                // The named empty-input error: an empty (or CSV header-only)
                // input would otherwise masquerade as a stable empty schema
                // and every future pass would report drift against nothing.
                return Err(format!(
                    "empty input: {path} contains no graph elements (nodes or edges) — \
                     nothing to watch"
                ));
            }
            schema = run.merged_schema();
            eprintln!(
                "watch {path}: baseline {} element(s) in {} chunk(s) -> {} node type(s), \
                 {} edge type(s); re-checking every {}s{}",
                elements,
                chunks,
                schema.node_types.len(),
                schema.edge_types.len(),
                interval.as_secs(),
                if once { " (once)" } else { "" }
            );
            if let Some(dir) = state_dir {
                if let (Some(n), Some(k)) = (partition_passes, keep) {
                    if run.pass % n == 0 {
                        save_partition(dir, &config, &run, k)?;
                        run.roll_partition(k, discoverer.new_state());
                    }
                }
                save_checkpoint(
                    dir,
                    &config,
                    path,
                    opts.input_format,
                    &input,
                    &run,
                    rotate_keep,
                )?;
            }
        }
    }

    let mut drifted = false;
    loop {
        std::thread::sleep(interval);
        run.pass += 1;
        let pass = run.pass;
        let read = input.read_pass()?;
        if read.rotated {
            eprintln!("pass {pass}: input rotated/truncated — re-ingesting from scratch");
            run.state = discoverer.new_state();
            run.rebuild_combined();
            // Preserve the generation counter across the reset so any
            // retained partitions keep their place in the compaction
            // arithmetic.
            let generation = run.registry.generation();
            run.registry = LabelSetRegistry::default();
            for _ in 0..generation {
                run.registry.advance_generation();
            }
        }
        let warnings_before = run.warnings;
        let mut elements = 0u64;
        let mut pending = Vec::new();
        for src in read.sources {
            let report = absorb_source(src, opts, threads, discoverer, &mut run, &mut pending)?;
            elements += report.elements;
        }
        elements += resolve_pass_pending(discoverer, &mut run, pending);
        if run.warnings != warnings_before {
            eprintln!(
                "pass {pass}: warnings so far: {}",
                warning_breakdown(&run.warnings)
            );
        }
        let new_schema = run.merged_schema();
        let diff = diff_schemas(&schema, &new_schema);
        if diff.is_empty() {
            println!("pass {pass}: +{elements} element(s), no schema drift");
        } else {
            drifted = true;
            println!(
                "pass {pass}: +{elements} element(s), schema drift detected ({}):",
                if diff.is_monotone() {
                    "monotone: additions/relaxations only"
                } else {
                    "NON-monotone: contains removals or tightenings"
                }
            );
            print!("{diff}");
            emit_all(
                sinks,
                &DriftEvent {
                    tenant: None,
                    pass,
                    timestamp: unix_timestamp(),
                    elements_added: elements,
                    diff: &diff,
                },
            );
        }
        schema = new_schema;
        if let Some(dir) = state_dir {
            if let (Some(n), Some(k)) = (partition_passes, keep) {
                if run.pass % n == 0 {
                    save_partition(dir, &config, &run, k)?;
                    run.roll_partition(k, discoverer.new_state());
                }
            }
            save_checkpoint(
                dir,
                &config,
                path,
                opts.input_format,
                &input,
                &run,
                rotate_keep,
            )?;
        }
        if once {
            crate::report_warnings(&run.warnings);
            // Emit the final schema so CI (and the e2e suite) can assert it
            // is byte-identical to `discover --stream --format strict`.
            print!("{}", pg_schema_strict(&schema, "Discovered"));
            return Ok(if drifted {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_core::PipelineConfig;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pg-hive-watch-unit-{}-{name}", std::process::id()));
        p
    }

    fn appended(d: FileDelta) -> Vec<u8> {
        match d {
            FileDelta::Appended(b) => b,
            FileDelta::Unchanged => panic!("expected Appended, got Unchanged"),
            FileDelta::Rotated => panic!("expected Appended, got Rotated"),
        }
    }

    #[test]
    fn appended_bytes_are_consumed_once() {
        let p = temp("append");
        std::fs::write(&p, "N a Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N a Person -\n");
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Unchanged));
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b"N b Org -\n").unwrap();
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N b Org -\n");
    }

    #[test]
    fn partial_trailing_line_waits_for_the_next_pass() {
        let p = temp("partial");
        std::fs::write(&p, "N a Person -\nN b Org").unwrap(); // no trailing \n
        let mut t = TrackedFile::new(p.clone(), true);
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N a Person -\n");
        // The half-written line is not consumed...
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Unchanged));
        // ...until its newline lands.
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b" url=x\n").unwrap();
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N b Org url=x\n");
    }

    #[test]
    fn shrunken_file_is_a_rotation() {
        let p = temp("shrink");
        std::fs::write(&p, "N a Person -\nN b Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        appended(t.read_delta(false).unwrap());
        std::fs::write(&p, "N z Other -\n").unwrap();
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Rotated));
    }

    #[test]
    fn truncate_and_regrow_past_the_offset_is_a_rotation() {
        // Regression: the length check alone (len < offset) misses
        // logrotate copytruncate followed by a fast writer refilling the
        // file beyond the old offset; the consumed-tail fingerprint
        // catches it.
        let p = temp("regrow");
        std::fs::write(&p, "N a Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        appended(t.read_delta(false).unwrap());
        std::fs::write(&p, "N zz Other -\nN yy Other -\nN xx Other -\n").unwrap();
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Rotated));
    }

    #[test]
    fn csv_header_is_retained_and_prepended_to_later_deltas() {
        let p = temp("header");
        std::fs::write(&p, "id,labels,name\na,Person,Ann\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        // First delta starts with the header itself.
        assert_eq!(
            appended(t.read_delta(true).unwrap()),
            b"id,labels,name\na,Person,Ann\n"
        );
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b"b,Person,Bob\n").unwrap();
        // Later deltas get the retained header prepended.
        assert_eq!(
            appended(t.read_delta(true).unwrap()),
            b"id,labels,name\nb,Person,Bob\n"
        );
    }

    #[test]
    fn directory_input_enumerates_units_and_reads_mixed_deltas() {
        let root = temp("tree");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("a.pgt"), "N p1 Person -\n").unwrap();
        let csvdir = root.join("orgs");
        std::fs::create_dir_all(&csvdir).unwrap();
        std::fs::write(csvdir.join("nodes.csv"), "id,labels\no1,Org\n").unwrap();

        let mut input = WatchedInput::open(root.to_str().unwrap(), InputFormat::Pgt).unwrap();
        assert_eq!(input.units.len(), 2);
        // Sorted enumeration: a.pgt before orgs/.
        assert_eq!(input.units[0].format, InputFormat::Pgt);
        assert_eq!(input.units[1].format, InputFormat::Csv);
        assert_eq!(input.tracked_files().count(), 3); // a.pgt + nodes.csv + edges.csv

        let read = input.read_pass().unwrap();
        assert!(!read.rotated);
        assert_eq!(read.sources.len(), 2);

        // Appending to just one file yields just that unit's source.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join("a.pgt"))
            .unwrap();
        std::io::Write::write_all(&mut f, b"N p2 Person -\n").unwrap();
        let read = input.read_pass().unwrap();
        assert_eq!(read.sources.len(), 1);
        assert_eq!(read.sources[0].format_name(), "pgt");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn three_pass_warning_counts_aggregate_per_category() {
        // Satellite: warnings aggregate per category across passes with
        // running counts, instead of repeating one line per occurrence.
        let mut total = StreamWarnings::default();
        for _ in 0..3 {
            let pass = StreamWarnings {
                cross_chunk_edges: 2,
                duplicate_nodes: 1,
                ..StreamWarnings::default()
            };
            total.absorb(&pass);
        }
        assert_eq!(total.cross_chunk_edges, 6);
        assert_eq!(total.duplicate_nodes, 3);
        let line = warning_breakdown(&total);
        assert!(line.contains("6 cross-chunk edge(s)"), "{line}");
        assert!(line.contains("3 duplicate node id(s)"), "{line}");
        // Zero categories are deduped out of the breakdown entirely.
        assert!(!line.contains("dropped"), "{line}");
        assert!(!line.contains("evicted"), "{line}");
        assert_eq!(warning_breakdown(&StreamWarnings::default()), "");
    }

    #[test]
    fn partition_roll_retains_k_states_and_compacts_registry() {
        let discoverer = Discoverer::new(PipelineConfig::default());
        let opts = StreamOpts::default();
        let mut run = WatchRun {
            state: discoverer.new_state(),
            combined: discoverer.new_state(),
            registry: LabelSetRegistry::default(),
            warnings: StreamWarnings::default(),
            pass: 1,
            retained: VecDeque::new(),
            cache: SignatureCache::default(),
        };
        let absorb = |run: &mut WatchRun, text: &'static str| {
            let mut pending = Vec::new();
            absorb_source(
                Box::new(PgtSource::new(Cursor::new(text.as_bytes().to_vec()))),
                &opts,
                1,
                &discoverer,
                run,
                &mut pending,
            )
            .unwrap();
            assert!(pending.is_empty(), "node-only input carries no edges");
        };

        absorb(&mut run, "N a1 Person -\nN a2 Person -\n");
        assert_eq!(run.registry.len(), 2);
        run.roll_partition(1, discoverer.new_state());
        // Window: retained p1 + resident p2 — nothing compacted yet.
        assert_eq!(run.retained.len(), 1);
        assert_eq!(run.registry.len(), 2);

        absorb(&mut run, "N b1 Org -\n");
        assert_eq!(run.registry.len(), 3);
        run.roll_partition(1, discoverer.new_state());
        // p1 fell out of the window: its bindings are compacted away —
        // the registry stays bounded under rotation.
        assert_eq!(run.retained.len(), 1);
        assert_eq!(run.registry.len(), 1);

        absorb(&mut run, "N c1 Org -\n");
        run.roll_partition(1, discoverer.new_state());
        assert_eq!(run.registry.len(), 1);

        // The reported schema covers only the retained window: the last
        // partition's Org, not the long-expired Person partition.
        let schema = run.merged_schema();
        assert_eq!(schema.node_types.len(), 1);
        assert!(schema.node_types[0].labels.contains("Org"));
    }

    #[test]
    fn first_roll_generation_and_gc_accounting_start_correct_from_pass_one() {
        // Regression (satellite): with `--partition passes:1` the baseline
        // pass itself rolls. The very first roll must advance the registry
        // generation to 1 *without* compacting anything — pass-1 bindings
        // belong to the just-retained partition, which is still inside the
        // window — and the GC arithmetic must expire exactly that
        // partition's bindings when (and only when) it leaves the window
        // one roll later.
        let discoverer = Discoverer::new(PipelineConfig::default());
        let opts = StreamOpts::default();
        let mut run = WatchRun {
            state: discoverer.new_state(),
            combined: discoverer.new_state(),
            registry: LabelSetRegistry::default(),
            warnings: StreamWarnings::default(),
            pass: 1,
            retained: VecDeque::new(),
            cache: SignatureCache::default(),
        };
        let mut pending = Vec::new();
        absorb_source(
            Box::new(PgtSource::new(Cursor::new(
                b"N a1 Person -\nN a2 Person -\n".to_vec(),
            ))),
            &opts,
            1,
            &discoverer,
            &mut run,
            &mut pending,
        )
        .unwrap();
        assert_eq!(run.registry.generation(), 0, "bindings land in gen 0");

        // Pass 1 rolls (passes:1 → 1 % 1 == 0).
        run.roll_partition(1, discoverer.new_state());
        assert_eq!(run.registry.generation(), 1, "first roll advances to 1");
        assert_eq!(
            run.registry.len(),
            2,
            "first roll must not GC the just-retained partition's bindings"
        );
        assert_eq!(run.retained.len(), 1);
        // The reported schema still sees partition 1.
        assert_eq!(run.merged_schema().node_types.len(), 1);

        // Pass 2 absorbs into generation 1, then rolls: partition 1 (and
        // exactly its generation-0 bindings) leaves the window.
        absorb_source(
            Box::new(PgtSource::new(Cursor::new(b"N b1 Org -\n".to_vec()))),
            &opts,
            1,
            &discoverer,
            &mut run,
            &mut pending,
        )
        .unwrap();
        assert_eq!(run.registry.len(), 3);
        run.roll_partition(1, discoverer.new_state());
        assert_eq!(run.registry.generation(), 2);
        assert_eq!(
            run.registry.len(),
            1,
            "second roll GCs exactly the expired partition's gen-0 bindings"
        );
        let schema = run.merged_schema();
        assert_eq!(schema.node_types.len(), 1, "Person partition expired");
        assert!(schema.node_types[0].labels.contains("Org"));
    }
}
