//! `pg-hive watch` — long-running schema-drift monitoring.
//!
//! The watcher keeps one resident canonical [`SchemaState`] and, on every
//! pass, re-ingests only the bytes **appended** to the input since the
//! previous pass (per-file byte offsets; a shrunken file is treated as a
//! rotation and re-ingested from scratch). Appended records are chunked and
//! absorbed into the resident state — incremental and associative, not
//! repeated full re-discovery — and the pass's finalized schema is diffed
//! against the previous one. Drift events are printed with the same
//! monotonicity verdict as `pg-hive diff`; with `--once` the process
//! performs exactly one re-check after the baseline and exits 1 when drift
//! was detected (0 otherwise), which is the CI-friendly mode.
//!
//! Edges appended in a later pass usually reference nodes ingested in an
//! earlier one; the chunk reader's id → label-set registry is carried
//! across passes ([`ChunkedTextReader::with_registry`]), so such edges
//! resolve through labeled stubs and are counted as cross-chunk warnings
//! instead of being dropped.
//!
//! Partially written trailing lines are left unconsumed (the delta is cut
//! at the last newline), so appending concurrently with a pass never
//! corrupts a record — it is simply picked up by the next pass.
//!
//! # Durability (`--state-dir`)
//!
//! With `--state-dir <dir>`, the watcher checkpoints its **full resumable
//! context** — the [`SchemaState`] pools, the id → label-set registry, the
//! per-file offsets/fingerprints, and the discovery-config guard — to
//! `<dir>/watch.snapshot` after every pass, atomically (temp file +
//! rename; see [`pg_hive_core::snapshot`]). On start, an existing
//! checkpoint is loaded and the run continues exactly where the killed
//! process stopped: the next pass ingests only bytes appended since the
//! last checkpoint, pass numbering continues, and a restart with no new
//! bytes never fires a spurious drift event. A corrupt, truncated,
//! future-version, or configuration-incompatible checkpoint is refused
//! with a named `snapshot:` error — never silently re-ingested.
//!
//! # Alerting (`--on-drift`)
//!
//! Each `--on-drift exec:<cmd>` / `--on-drift jsonl:<path>` flag attaches
//! a [`crate::sink::DriftSink`]; every drift pass delivers one structured
//! [`crate::sink::DriftEvent`] (pass number, timestamp, diff summary,
//! monotonicity verdict) to every sink.

use crate::args::{InputFormat, StreamOpts};
use crate::sink::{emit_all, unix_timestamp, DriftEvent, DriftSink};
use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::snapshot::{
    context_snapshot, FileCheckpoint, ResumeContext, SnapshotConfig, WatchCheckpoint,
};
use pg_hive_core::{diff_schemas, AbsorbReport, Discoverer, SchemaState};
use pg_hive_graph::stream::{csv::CsvSource, jsonl::JsonlSource, pgt::PgtSource};
use pg_hive_graph::{ChunkedTextReader, LabelSetRegistry, RawGraphSource, StreamWarnings};
use std::io::{Cursor, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// File name of the checkpoint inside `--state-dir`.
const SNAPSHOT_FILE: &str = "watch.snapshot";

/// How many trailing consumed bytes are remembered to recognize a file
/// that was truncated and rewritten *past* the old offset between passes
/// (logrotate `copytruncate` + a fast writer): the length check alone
/// cannot see that.
const ROTATION_TAIL: usize = 64;

/// One watched file: consumed byte offset, the last consumed bytes (a
/// rotation fingerprint), plus, for CSV, the retained header line
/// (appended records do not repeat it).
struct TrackedFile {
    path: PathBuf,
    offset: u64,
    tail: Vec<u8>,
    header: Option<Vec<u8>>,
    required: bool,
}

enum FileDelta {
    Unchanged,
    Rotated,
    Appended(Vec<u8>),
}

impl TrackedFile {
    fn new(path: PathBuf, required: bool) -> Self {
        Self {
            path,
            offset: 0,
            tail: Vec::new(),
            header: None,
            required,
        }
    }

    fn reset(&mut self) {
        self.offset = 0;
        self.tail.clear();
        self.header = None;
    }

    /// Read the bytes appended since the last pass, cut at the last
    /// newline. `keep_header` retains the first-ever line separately and
    /// prepends it to every later delta (CSV headers).
    fn read_delta(&mut self, keep_header: bool) -> Result<FileDelta, String> {
        let len = match std::fs::metadata(&self.path) {
            Ok(m) => m.len(),
            Err(e) if self.required => {
                return Err(format!("cannot read {}: {e}", self.path.display()))
            }
            Err(_) => return Ok(FileDelta::Unchanged),
        };
        if len < self.offset {
            return Ok(FileDelta::Rotated);
        }
        let mut f = std::fs::File::open(&self.path)
            .map_err(|e| format!("cannot read {}: {e}", self.path.display()))?;
        // Same-or-larger length does not prove the same file: verify the
        // bytes we already consumed still end the way we remember before
        // trusting the offset.
        if !self.tail.is_empty() {
            let tail_start = self.offset - self.tail.len() as u64;
            f.seek(SeekFrom::Start(tail_start))
                .map_err(|e| format!("cannot seek {}: {e}", self.path.display()))?;
            let mut probe = vec![0u8; self.tail.len()];
            if f.read_exact(&mut probe).is_err() || probe != self.tail {
                return Ok(FileDelta::Rotated);
            }
        }
        if len == self.offset {
            return Ok(FileDelta::Unchanged);
        }
        f.seek(SeekFrom::Start(self.offset))
            .map_err(|e| format!("cannot seek {}: {e}", self.path.display()))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)
            .map_err(|e| format!("cannot read {}: {e}", self.path.display()))?;
        // A writer may be mid-append: consume only whole lines.
        let cut = buf.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        buf.truncate(cut);
        if buf.is_empty() {
            return Ok(FileDelta::Unchanged);
        }
        self.offset += buf.len() as u64;
        let keep = buf.len().min(ROTATION_TAIL);
        self.tail.extend_from_slice(&buf[buf.len() - keep..]);
        let excess = self.tail.len().saturating_sub(ROTATION_TAIL);
        self.tail.drain(..excess);
        if keep_header {
            match &self.header {
                None => {
                    let nl = buf
                        .iter()
                        .position(|&b| b == b'\n')
                        .map_or(buf.len(), |i| i + 1);
                    self.header = Some(buf[..nl].to_vec());
                    // This first delta already starts with the header.
                }
                Some(h) => {
                    let mut with_header = h.clone();
                    with_header.extend_from_slice(&buf);
                    buf = with_header;
                }
            }
        }
        Ok(FileDelta::Appended(buf))
    }
}

/// What one pass found on disk.
struct PassRead {
    /// The input shrank (log rotation / truncation): the resident state and
    /// registry were invalidated and the content below is the full file.
    rotated: bool,
    /// Parser over the appended (or, after rotation, full) records; `None`
    /// when nothing new was appended.
    source: Option<Box<dyn RawGraphSource>>,
}

/// A watched input: one file for pgt/jsonl, the `nodes.csv` (+ optional
/// `edges.csv`) pair for CSV.
struct WatchedInput {
    format: InputFormat,
    files: Vec<TrackedFile>,
}

impl WatchedInput {
    fn open(path: &str, format: InputFormat) -> Result<Self, String> {
        let files = match format {
            InputFormat::Pgt | InputFormat::Jsonl => {
                vec![TrackedFile::new(PathBuf::from(path), true)]
            }
            InputFormat::Csv => {
                let dir = PathBuf::from(path);
                vec![
                    TrackedFile::new(dir.join("nodes.csv"), true),
                    TrackedFile::new(dir.join("edges.csv"), false),
                ]
            }
        };
        Ok(Self { format, files })
    }

    fn read_pass(&mut self) -> Result<PassRead, String> {
        let keep_header = self.format == InputFormat::Csv;
        let mut deltas = Vec::with_capacity(self.files.len());
        let mut rotated = false;
        for f in &mut self.files {
            match f.read_delta(keep_header)? {
                FileDelta::Rotated => {
                    rotated = true;
                    break;
                }
                d => deltas.push(d),
            }
        }
        if rotated {
            // One shrunken file invalidates the whole input: restart every
            // offset and re-read the full content.
            deltas.clear();
            for f in &mut self.files {
                f.reset();
                deltas.push(match f.read_delta(keep_header)? {
                    FileDelta::Rotated => FileDelta::Unchanged, // racing writer; next pass
                    d => d,
                });
            }
        }
        let mut bufs: Vec<Option<Vec<u8>>> = deltas
            .into_iter()
            .map(|d| match d {
                FileDelta::Appended(b) => Some(b),
                _ => None,
            })
            .collect();
        if bufs.iter().all(Option::is_none) {
            return Ok(PassRead {
                rotated,
                source: None,
            });
        }
        let source: Box<dyn RawGraphSource> = match self.format {
            InputFormat::Pgt => Box::new(PgtSource::new(Cursor::new(
                bufs[0].take().unwrap_or_default(),
            ))),
            InputFormat::Jsonl => Box::new(JsonlSource::new(Cursor::new(
                bufs[0].take().unwrap_or_default(),
            ))),
            InputFormat::Csv => {
                // An untouched nodes.csv still contributes its header so the
                // source can parse appended edge records.
                let nodes = bufs[0]
                    .take()
                    .or_else(|| self.files[0].header.clone())
                    .unwrap_or_default();
                let edges = bufs[1].take();
                Box::new(CsvSource::new(Cursor::new(nodes), edges.map(Cursor::new)))
            }
        };
        Ok(PassRead {
            rotated,
            source: Some(source),
        })
    }
}

fn add_warnings(total: &mut StreamWarnings, w: StreamWarnings) {
    total.cross_chunk_edges += w.cross_chunk_edges;
    total.unresolved_edges += w.unresolved_edges;
    total.deferred_edges += w.deferred_edges;
    total.evicted_edges += w.evicted_edges;
    total.duplicate_nodes += w.duplicate_nodes;
}

/// Chunk `source` (seeding the reader with the carried registry) and absorb
/// every chunk into the resident state.
fn absorb_source(
    source: Box<dyn RawGraphSource>,
    opts: &StreamOpts,
    threads: usize,
    discoverer: &Discoverer,
    state: &mut SchemaState,
    registry: &mut LabelSetRegistry,
    warnings: &mut StreamWarnings,
) -> Result<AbsorbReport, String> {
    let mut reader =
        ChunkedTextReader::with_registry(source, opts.chunk_size, std::mem::take(registry));
    let mut stream_err: Option<String> = None;
    let report = discoverer.absorb_stream(
        std::iter::from_fn(|| match reader.next_chunk() {
            Ok(c) => c,
            Err(e) => {
                stream_err = Some(e.to_string());
                None
            }
        }),
        state,
        threads,
    );
    if let Some(e) = stream_err {
        return Err(format!("parse error while watching: {e}"));
    }
    add_warnings(warnings, reader.warnings());
    *registry = reader.into_registry();
    Ok(report)
}

impl TrackedFile {
    fn to_checkpoint(&self) -> FileCheckpoint {
        FileCheckpoint {
            path: self.path.display().to_string(),
            offset: self.offset,
            tail: self.tail.clone(),
            header: self.header.clone(),
            required: self.required,
        }
    }

    fn restore(&mut self, cp: &FileCheckpoint) {
        self.offset = cp.offset;
        self.tail = cp.tail.clone();
        self.header = cp.header.clone();
    }
}

/// The mutable engine context the watch loop threads through passes —
/// exactly what a `--state-dir` checkpoint persists.
struct WatchRun {
    state: SchemaState,
    registry: LabelSetRegistry,
    warnings: StreamWarnings,
    pass: u64,
}

/// Write the full resumable context to `<dir>/watch.snapshot` atomically.
fn save_checkpoint(
    dir: &Path,
    config: &SnapshotConfig,
    path: &str,
    format: InputFormat,
    input: &WatchedInput,
    run: &WatchRun,
) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", dir.display()))?;
    let watch = WatchCheckpoint {
        input: path.to_string(),
        format: format.name().to_string(),
        pass: run.pass,
        warnings: run.warnings,
        files: input.files.iter().map(TrackedFile::to_checkpoint).collect(),
    };
    // Serialize from borrowed parts: the state pools and the registry (one
    // entry per node id ever seen) are the large pieces, and this runs
    // after *every* pass — cloning them into an owned ResumeContext first
    // would double the checkpoint's memory cost for nothing.
    context_snapshot(config, &run.state, &run.registry, Some(&watch))
        .write_atomic(&dir.join(SNAPSHOT_FILE))
        .map_err(|e| e.to_string())
}

/// Load `<dir>/watch.snapshot` if present, validate it against this run's
/// input and configuration, and restore the per-file read positions.
/// Returns `None` when no checkpoint exists (a fresh start); any *invalid*
/// checkpoint — corrupt, truncated, future-version, wrong input, or
/// incompatible configuration — is a named `snapshot:` error, never a
/// silent re-ingest.
fn try_resume(
    dir: &Path,
    config: &SnapshotConfig,
    path: &str,
    format: InputFormat,
    input: &mut WatchedInput,
) -> Result<Option<WatchRun>, String> {
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    if !snapshot_path.exists() {
        return Ok(None);
    }
    let ctx = ResumeContext::load(&snapshot_path)
        .map_err(|e| format!("{e} (while loading {})", snapshot_path.display()))?;
    ctx.config
        .ensure_matches(config)
        .map_err(|e| e.to_string())?;
    let watch = ctx.watch.ok_or_else(|| {
        format!(
            "snapshot: {} has no watch progress — it was written by `discover --save-state`, \
             not `watch --state-dir`",
            snapshot_path.display()
        )
    })?;
    if watch.input != path {
        return Err(format!(
            "snapshot: the checkpoint was saved for input '{}', this run watches '{path}' — \
             point watch at the same input or use a different --state-dir",
            watch.input
        ));
    }
    if watch.format != format.name() {
        return Err(format!(
            "snapshot: the checkpoint was saved for --input-format {}, this run uses {}",
            watch.format,
            format.name()
        ));
    }
    if watch.files.len() != input.files.len() {
        return Err(format!(
            "snapshot: the checkpoint tracks {} file(s), this input has {}",
            watch.files.len(),
            input.files.len()
        ));
    }
    for (tracked, cp) in input.files.iter_mut().zip(&watch.files) {
        tracked.restore(cp);
    }
    Ok(Some(WatchRun {
        state: ctx.state,
        registry: ctx.registry,
        warnings: watch.warnings,
        pass: watch.pass,
    }))
}

/// Run the watch loop. `--once` performs the baseline pass plus exactly one
/// re-check and exits with the `diff` exit-code semantics (1 = drift);
/// without it the loop runs until the process is killed or the input
/// becomes unreadable. With `state_dir` set, the loop checkpoints after
/// every pass and auto-resumes from an existing checkpoint on start; each
/// drift event is also delivered to every `sink`.
pub fn run_watch(
    path: &str,
    opts: &StreamOpts,
    discoverer: &Discoverer,
    interval: Duration,
    once: bool,
    state_dir: Option<&str>,
    sinks: &[DriftSink],
) -> Result<ExitCode, String> {
    let mut input = WatchedInput::open(path, opts.input_format)?;
    let threads = crate::resolve_threads(opts);
    let config = SnapshotConfig::new(discoverer.config(), opts.chunk_size);
    let state_dir = state_dir.map(Path::new);
    let resumed = match state_dir {
        Some(dir) => try_resume(dir, &config, path, opts.input_format, &mut input)?,
        None => None,
    };

    let mut run;
    let mut schema;
    match resumed {
        Some(r) => {
            // Resume: the baseline is the checkpointed state, finalized —
            // byte-identical to what the killed process last saw, so a
            // restart with no new bytes can never fire a spurious drift
            // event.
            run = r;
            schema = run.state.finalize();
            eprintln!(
                "watch {path}: resumed from checkpoint (pass {}, {} node type(s), {} edge \
                 type(s), {} registered id(s)); re-checking every {}s{}",
                run.pass,
                schema.node_types.len(),
                schema.edge_types.len(),
                run.registry.len(),
                interval.as_secs(),
                if once { " (once)" } else { "" }
            );
        }
        None => {
            run = WatchRun {
                state: discoverer.new_state(),
                registry: LabelSetRegistry::default(),
                warnings: StreamWarnings::default(),
                pass: 1,
            };
            // Baseline pass.
            let read = input.read_pass()?;
            let baseline = match read.source {
                Some(src) => absorb_source(
                    src,
                    opts,
                    threads,
                    discoverer,
                    &mut run.state,
                    &mut run.registry,
                    &mut run.warnings,
                )?,
                None => AbsorbReport {
                    elements: 0,
                    chunk_times: Vec::new(),
                },
            };
            if baseline.elements == 0 {
                // The named empty-input error: an empty (or CSV header-only)
                // input would otherwise masquerade as a stable empty schema
                // and every future pass would report drift against nothing.
                return Err(format!(
                    "empty input: {path} contains no graph elements (nodes or edges) — \
                     nothing to watch"
                ));
            }
            schema = run.state.finalize();
            eprintln!(
                "watch {path}: baseline {} element(s) in {} chunk(s) -> {} node type(s), \
                 {} edge type(s); re-checking every {}s{}",
                baseline.elements,
                baseline.chunk_times.len(),
                schema.node_types.len(),
                schema.edge_types.len(),
                interval.as_secs(),
                if once { " (once)" } else { "" }
            );
            if let Some(dir) = state_dir {
                save_checkpoint(dir, &config, path, opts.input_format, &input, &run)?;
            }
        }
    }

    let mut drifted = false;
    loop {
        std::thread::sleep(interval);
        run.pass += 1;
        let pass = run.pass;
        let read = input.read_pass()?;
        if read.rotated {
            eprintln!("pass {pass}: input rotated/truncated — re-ingesting from scratch");
            run.state = discoverer.new_state();
            run.registry = LabelSetRegistry::default();
        }
        let absorbed = match read.source {
            Some(src) => absorb_source(
                src,
                opts,
                threads,
                discoverer,
                &mut run.state,
                &mut run.registry,
                &mut run.warnings,
            )?,
            None => AbsorbReport {
                elements: 0,
                chunk_times: Vec::new(),
            },
        };
        let new_schema = run.state.finalize();
        let diff = diff_schemas(&schema, &new_schema);
        if diff.is_empty() {
            println!(
                "pass {pass}: +{} element(s), no schema drift",
                absorbed.elements
            );
        } else {
            drifted = true;
            println!(
                "pass {pass}: +{} element(s), schema drift detected ({}):",
                absorbed.elements,
                if diff.is_monotone() {
                    "monotone: additions/relaxations only"
                } else {
                    "NON-monotone: contains removals or tightenings"
                }
            );
            print!("{diff}");
            emit_all(
                sinks,
                &DriftEvent {
                    pass,
                    timestamp: unix_timestamp(),
                    elements_added: absorbed.elements,
                    diff: &diff,
                },
            );
        }
        schema = new_schema;
        if let Some(dir) = state_dir {
            save_checkpoint(dir, &config, path, opts.input_format, &input, &run)?;
        }
        if once {
            crate::report_warnings(&run.warnings);
            // Emit the final schema so CI (and the e2e suite) can assert it
            // is byte-identical to `discover --stream --format strict`.
            print!("{}", pg_schema_strict(&schema, "Discovered"));
            return Ok(if drifted {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pg-hive-watch-unit-{}-{name}", std::process::id()));
        p
    }

    fn appended(d: FileDelta) -> Vec<u8> {
        match d {
            FileDelta::Appended(b) => b,
            FileDelta::Unchanged => panic!("expected Appended, got Unchanged"),
            FileDelta::Rotated => panic!("expected Appended, got Rotated"),
        }
    }

    #[test]
    fn appended_bytes_are_consumed_once() {
        let p = temp("append");
        std::fs::write(&p, "N a Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N a Person -\n");
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Unchanged));
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b"N b Org -\n").unwrap();
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N b Org -\n");
    }

    #[test]
    fn partial_trailing_line_waits_for_the_next_pass() {
        let p = temp("partial");
        std::fs::write(&p, "N a Person -\nN b Org").unwrap(); // no trailing \n
        let mut t = TrackedFile::new(p.clone(), true);
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N a Person -\n");
        // The half-written line is not consumed...
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Unchanged));
        // ...until its newline lands.
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b" url=x\n").unwrap();
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N b Org url=x\n");
    }

    #[test]
    fn shrunken_file_is_a_rotation() {
        let p = temp("shrink");
        std::fs::write(&p, "N a Person -\nN b Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        appended(t.read_delta(false).unwrap());
        std::fs::write(&p, "N z Other -\n").unwrap();
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Rotated));
    }

    #[test]
    fn truncate_and_regrow_past_the_offset_is_a_rotation() {
        // Regression: the length check alone (len < offset) misses
        // logrotate copytruncate followed by a fast writer refilling the
        // file beyond the old offset; the consumed-tail fingerprint
        // catches it.
        let p = temp("regrow");
        std::fs::write(&p, "N a Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        appended(t.read_delta(false).unwrap());
        std::fs::write(&p, "N zz Other -\nN yy Other -\nN xx Other -\n").unwrap();
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Rotated));
    }

    #[test]
    fn csv_header_is_retained_and_prepended_to_later_deltas() {
        let p = temp("header");
        std::fs::write(&p, "id,labels,name\na,Person,Ann\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        // First delta starts with the header itself.
        assert_eq!(
            appended(t.read_delta(true).unwrap()),
            b"id,labels,name\na,Person,Ann\n"
        );
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b"b,Person,Bob\n").unwrap();
        // Later deltas get the retained header prepended.
        assert_eq!(
            appended(t.read_delta(true).unwrap()),
            b"id,labels,name\nb,Person,Bob\n"
        );
    }
}
