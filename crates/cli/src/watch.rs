//! `pg-hive watch` — long-running schema-drift monitoring.
//!
//! The watcher keeps one resident canonical [`SchemaState`] and, on every
//! pass, re-ingests only the bytes **appended** to the input since the
//! previous pass (per-file byte offsets; a shrunken file is treated as a
//! rotation and re-ingested from scratch). Appended records are chunked and
//! absorbed into the resident state — incremental and associative, not
//! repeated full re-discovery — and the pass's finalized schema is diffed
//! against the previous one. Drift events are printed with the same
//! monotonicity verdict as `pg-hive diff`; with `--once` the process
//! performs exactly one re-check after the baseline and exits 1 when drift
//! was detected (0 otherwise), which is the CI-friendly mode.
//!
//! Edges appended in a later pass usually reference nodes ingested in an
//! earlier one; the chunk reader's id → label-set registry is carried
//! across passes ([`ChunkedTextReader::with_registry`]), so such edges
//! resolve through labeled stubs and are counted as cross-chunk warnings
//! instead of being dropped.
//!
//! Partially written trailing lines are left unconsumed (the delta is cut
//! at the last newline), so appending concurrently with a pass never
//! corrupts a record — it is simply picked up by the next pass.

use crate::args::{InputFormat, StreamOpts};
use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::{diff_schemas, AbsorbReport, Discoverer, SchemaState};
use pg_hive_graph::stream::{csv::CsvSource, jsonl::JsonlSource, pgt::PgtSource};
use pg_hive_graph::{ChunkedTextReader, GraphSource, LabelSetRegistry, StreamWarnings};
use std::io::{Cursor, Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// How many trailing consumed bytes are remembered to recognize a file
/// that was truncated and rewritten *past* the old offset between passes
/// (logrotate `copytruncate` + a fast writer): the length check alone
/// cannot see that.
const ROTATION_TAIL: usize = 64;

/// One watched file: consumed byte offset, the last consumed bytes (a
/// rotation fingerprint), plus, for CSV, the retained header line
/// (appended records do not repeat it).
struct TrackedFile {
    path: PathBuf,
    offset: u64,
    tail: Vec<u8>,
    header: Option<Vec<u8>>,
    required: bool,
}

enum FileDelta {
    Unchanged,
    Rotated,
    Appended(Vec<u8>),
}

impl TrackedFile {
    fn new(path: PathBuf, required: bool) -> Self {
        Self {
            path,
            offset: 0,
            tail: Vec::new(),
            header: None,
            required,
        }
    }

    fn reset(&mut self) {
        self.offset = 0;
        self.tail.clear();
        self.header = None;
    }

    /// Read the bytes appended since the last pass, cut at the last
    /// newline. `keep_header` retains the first-ever line separately and
    /// prepends it to every later delta (CSV headers).
    fn read_delta(&mut self, keep_header: bool) -> Result<FileDelta, String> {
        let len = match std::fs::metadata(&self.path) {
            Ok(m) => m.len(),
            Err(e) if self.required => {
                return Err(format!("cannot read {}: {e}", self.path.display()))
            }
            Err(_) => return Ok(FileDelta::Unchanged),
        };
        if len < self.offset {
            return Ok(FileDelta::Rotated);
        }
        let mut f = std::fs::File::open(&self.path)
            .map_err(|e| format!("cannot read {}: {e}", self.path.display()))?;
        // Same-or-larger length does not prove the same file: verify the
        // bytes we already consumed still end the way we remember before
        // trusting the offset.
        if !self.tail.is_empty() {
            let tail_start = self.offset - self.tail.len() as u64;
            f.seek(SeekFrom::Start(tail_start))
                .map_err(|e| format!("cannot seek {}: {e}", self.path.display()))?;
            let mut probe = vec![0u8; self.tail.len()];
            if f.read_exact(&mut probe).is_err() || probe != self.tail {
                return Ok(FileDelta::Rotated);
            }
        }
        if len == self.offset {
            return Ok(FileDelta::Unchanged);
        }
        f.seek(SeekFrom::Start(self.offset))
            .map_err(|e| format!("cannot seek {}: {e}", self.path.display()))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)
            .map_err(|e| format!("cannot read {}: {e}", self.path.display()))?;
        // A writer may be mid-append: consume only whole lines.
        let cut = buf.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        buf.truncate(cut);
        if buf.is_empty() {
            return Ok(FileDelta::Unchanged);
        }
        self.offset += buf.len() as u64;
        let keep = buf.len().min(ROTATION_TAIL);
        self.tail.extend_from_slice(&buf[buf.len() - keep..]);
        let excess = self.tail.len().saturating_sub(ROTATION_TAIL);
        self.tail.drain(..excess);
        if keep_header {
            match &self.header {
                None => {
                    let nl = buf
                        .iter()
                        .position(|&b| b == b'\n')
                        .map_or(buf.len(), |i| i + 1);
                    self.header = Some(buf[..nl].to_vec());
                    // This first delta already starts with the header.
                }
                Some(h) => {
                    let mut with_header = h.clone();
                    with_header.extend_from_slice(&buf);
                    buf = with_header;
                }
            }
        }
        Ok(FileDelta::Appended(buf))
    }
}

/// What one pass found on disk.
struct PassRead {
    /// The input shrank (log rotation / truncation): the resident state and
    /// registry were invalidated and the content below is the full file.
    rotated: bool,
    /// Parser over the appended (or, after rotation, full) records; `None`
    /// when nothing new was appended.
    source: Option<Box<dyn GraphSource>>,
}

/// A watched input: one file for pgt/jsonl, the `nodes.csv` (+ optional
/// `edges.csv`) pair for CSV.
struct WatchedInput {
    format: InputFormat,
    files: Vec<TrackedFile>,
}

impl WatchedInput {
    fn open(path: &str, format: InputFormat) -> Result<Self, String> {
        let files = match format {
            InputFormat::Pgt | InputFormat::Jsonl => {
                vec![TrackedFile::new(PathBuf::from(path), true)]
            }
            InputFormat::Csv => {
                let dir = PathBuf::from(path);
                vec![
                    TrackedFile::new(dir.join("nodes.csv"), true),
                    TrackedFile::new(dir.join("edges.csv"), false),
                ]
            }
        };
        Ok(Self { format, files })
    }

    fn read_pass(&mut self) -> Result<PassRead, String> {
        let keep_header = self.format == InputFormat::Csv;
        let mut deltas = Vec::with_capacity(self.files.len());
        let mut rotated = false;
        for f in &mut self.files {
            match f.read_delta(keep_header)? {
                FileDelta::Rotated => {
                    rotated = true;
                    break;
                }
                d => deltas.push(d),
            }
        }
        if rotated {
            // One shrunken file invalidates the whole input: restart every
            // offset and re-read the full content.
            deltas.clear();
            for f in &mut self.files {
                f.reset();
                deltas.push(match f.read_delta(keep_header)? {
                    FileDelta::Rotated => FileDelta::Unchanged, // racing writer; next pass
                    d => d,
                });
            }
        }
        let mut bufs: Vec<Option<Vec<u8>>> = deltas
            .into_iter()
            .map(|d| match d {
                FileDelta::Appended(b) => Some(b),
                _ => None,
            })
            .collect();
        if bufs.iter().all(Option::is_none) {
            return Ok(PassRead {
                rotated,
                source: None,
            });
        }
        let source: Box<dyn GraphSource> = match self.format {
            InputFormat::Pgt => Box::new(PgtSource::new(Cursor::new(
                bufs[0].take().unwrap_or_default(),
            ))),
            InputFormat::Jsonl => Box::new(JsonlSource::new(Cursor::new(
                bufs[0].take().unwrap_or_default(),
            ))),
            InputFormat::Csv => {
                // An untouched nodes.csv still contributes its header so the
                // source can parse appended edge records.
                let nodes = bufs[0]
                    .take()
                    .or_else(|| self.files[0].header.clone())
                    .unwrap_or_default();
                let edges = bufs[1].take();
                Box::new(CsvSource::new(Cursor::new(nodes), edges.map(Cursor::new)))
            }
        };
        Ok(PassRead {
            rotated,
            source: Some(source),
        })
    }
}

fn add_warnings(total: &mut StreamWarnings, w: StreamWarnings) {
    total.cross_chunk_edges += w.cross_chunk_edges;
    total.unresolved_edges += w.unresolved_edges;
    total.deferred_edges += w.deferred_edges;
    total.evicted_edges += w.evicted_edges;
    total.duplicate_nodes += w.duplicate_nodes;
}

/// Chunk `source` (seeding the reader with the carried registry) and absorb
/// every chunk into the resident state.
fn absorb_source(
    source: Box<dyn GraphSource>,
    opts: &StreamOpts,
    threads: usize,
    discoverer: &Discoverer,
    state: &mut SchemaState,
    registry: &mut LabelSetRegistry,
    warnings: &mut StreamWarnings,
) -> Result<AbsorbReport, String> {
    let mut reader =
        ChunkedTextReader::with_registry(source, opts.chunk_size, std::mem::take(registry));
    let mut stream_err: Option<String> = None;
    let report = discoverer.absorb_stream(
        std::iter::from_fn(|| match reader.next_chunk() {
            Ok(c) => c,
            Err(e) => {
                stream_err = Some(e.to_string());
                None
            }
        }),
        state,
        threads,
    );
    if let Some(e) = stream_err {
        return Err(format!("parse error while watching: {e}"));
    }
    add_warnings(warnings, reader.warnings());
    *registry = reader.into_registry();
    Ok(report)
}

/// Run the watch loop. `--once` performs the baseline pass plus exactly one
/// re-check and exits with the `diff` exit-code semantics (1 = drift);
/// without it the loop runs until the process is killed or the input
/// becomes unreadable.
pub fn run_watch(
    path: &str,
    opts: &StreamOpts,
    discoverer: &Discoverer,
    interval: Duration,
    once: bool,
) -> Result<ExitCode, String> {
    let mut input = WatchedInput::open(path, opts.input_format)?;
    let threads = crate::resolve_threads(opts);
    let mut state = discoverer.new_state();
    let mut registry = LabelSetRegistry::default();
    let mut warnings = StreamWarnings::default();

    // Baseline pass.
    let read = input.read_pass()?;
    let baseline = match read.source {
        Some(src) => absorb_source(
            src,
            opts,
            threads,
            discoverer,
            &mut state,
            &mut registry,
            &mut warnings,
        )?,
        None => AbsorbReport {
            elements: 0,
            chunk_times: Vec::new(),
        },
    };
    if baseline.elements == 0 {
        // The named empty-input error: an empty (or CSV header-only) input
        // would otherwise masquerade as a stable empty schema and every
        // future pass would report drift against nothing.
        return Err(format!(
            "empty input: {path} contains no graph elements (nodes or edges) — nothing to watch"
        ));
    }
    let mut schema = state.finalize();
    eprintln!(
        "watch {path}: baseline {} element(s) in {} chunk(s) -> {} node type(s), {} edge type(s); \
         re-checking every {}s{}",
        baseline.elements,
        baseline.chunk_times.len(),
        schema.node_types.len(),
        schema.edge_types.len(),
        interval.as_secs(),
        if once { " (once)" } else { "" }
    );

    let mut drifted = false;
    let mut pass = 1usize;
    loop {
        std::thread::sleep(interval);
        pass += 1;
        let read = input.read_pass()?;
        if read.rotated {
            eprintln!("pass {pass}: input rotated/truncated — re-ingesting from scratch");
            state = discoverer.new_state();
            registry = LabelSetRegistry::default();
        }
        let absorbed = match read.source {
            Some(src) => absorb_source(
                src,
                opts,
                threads,
                discoverer,
                &mut state,
                &mut registry,
                &mut warnings,
            )?,
            None => AbsorbReport {
                elements: 0,
                chunk_times: Vec::new(),
            },
        };
        let new_schema = state.finalize();
        let diff = diff_schemas(&schema, &new_schema);
        if diff.is_empty() {
            println!(
                "pass {pass}: +{} element(s), no schema drift",
                absorbed.elements
            );
        } else {
            drifted = true;
            println!(
                "pass {pass}: +{} element(s), schema drift detected ({}):",
                absorbed.elements,
                if diff.is_monotone() {
                    "monotone: additions/relaxations only"
                } else {
                    "NON-monotone: contains removals or tightenings"
                }
            );
            print!("{diff}");
        }
        schema = new_schema;
        if once {
            crate::report_warnings(&warnings);
            // Emit the final schema so CI (and the e2e suite) can assert it
            // is byte-identical to `discover --stream --format strict`.
            print!("{}", pg_schema_strict(&schema, "Discovered"));
            return Ok(if drifted {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pg-hive-watch-unit-{}-{name}", std::process::id()));
        p
    }

    fn appended(d: FileDelta) -> Vec<u8> {
        match d {
            FileDelta::Appended(b) => b,
            FileDelta::Unchanged => panic!("expected Appended, got Unchanged"),
            FileDelta::Rotated => panic!("expected Appended, got Rotated"),
        }
    }

    #[test]
    fn appended_bytes_are_consumed_once() {
        let p = temp("append");
        std::fs::write(&p, "N a Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N a Person -\n");
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Unchanged));
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b"N b Org -\n").unwrap();
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N b Org -\n");
    }

    #[test]
    fn partial_trailing_line_waits_for_the_next_pass() {
        let p = temp("partial");
        std::fs::write(&p, "N a Person -\nN b Org").unwrap(); // no trailing \n
        let mut t = TrackedFile::new(p.clone(), true);
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N a Person -\n");
        // The half-written line is not consumed...
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Unchanged));
        // ...until its newline lands.
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b" url=x\n").unwrap();
        assert_eq!(appended(t.read_delta(false).unwrap()), b"N b Org url=x\n");
    }

    #[test]
    fn shrunken_file_is_a_rotation() {
        let p = temp("shrink");
        std::fs::write(&p, "N a Person -\nN b Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        appended(t.read_delta(false).unwrap());
        std::fs::write(&p, "N z Other -\n").unwrap();
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Rotated));
    }

    #[test]
    fn truncate_and_regrow_past_the_offset_is_a_rotation() {
        // Regression: the length check alone (len < offset) misses
        // logrotate copytruncate followed by a fast writer refilling the
        // file beyond the old offset; the consumed-tail fingerprint
        // catches it.
        let p = temp("regrow");
        std::fs::write(&p, "N a Person -\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        appended(t.read_delta(false).unwrap());
        std::fs::write(&p, "N zz Other -\nN yy Other -\nN xx Other -\n").unwrap();
        assert!(matches!(t.read_delta(false).unwrap(), FileDelta::Rotated));
    }

    #[test]
    fn csv_header_is_retained_and_prepended_to_later_deltas() {
        let p = temp("header");
        std::fs::write(&p, "id,labels,name\na,Person,Ann\n").unwrap();
        let mut t = TrackedFile::new(p.clone(), true);
        // First delta starts with the header itself.
        assert_eq!(
            appended(t.read_delta(true).unwrap()),
            b"id,labels,name\na,Person,Ann\n"
        );
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        std::io::Write::write_all(&mut f, b"b,Person,Bob\n").unwrap();
        // Later deltas get the retained header prepended.
        assert_eq!(
            appended(t.read_delta(true).unwrap()),
            b"id,labels,name\nb,Person,Bob\n"
        );
    }
}
