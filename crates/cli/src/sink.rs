//! Drift-event sinks: turn a `pg-hive watch` drift detection into an
//! operational signal.
//!
//! Printing a diff to stdout is fine for a human at a terminal; a
//! long-running monitor needs to *alert*. Each `--on-drift` flag attaches
//! one sink, and every drift pass emits one structured [`DriftEvent`] to
//! every sink:
//!
//! - `jsonl:<path>` appends the event as one JSON object per line — a
//!   durable, machine-readable drift log that survives the process and
//!   composes with `jq`, log shippers, and the e2e suite;
//! - `exec:<cmd>` runs `<cmd>` through `sh -c` with the event exported in
//!   the environment (`PGHIVE_DRIFT_EVENT` holds the full JSON;
//!   `PGHIVE_DRIFT_PASS` / `_TIMESTAMP` / `_MONOTONE` / `_SUMMARY` the
//!   common fields) — webhooks, pagers, `make rebuild-downstream`.
//!
//! Sink failures are reported to stderr and never kill the monitor: an
//! unreachable pager must not stop drift *detection*.

use crate::args::DriftSinkSpec;
use pg_hive_core::SchemaDiff;
use std::io::Write;
use std::path::PathBuf;

/// One structured schema-drift event, as delivered to every sink.
pub struct DriftEvent<'a> {
    /// Originating tenant, for multi-tenant `serve` drift; `None` for the
    /// single-state `watch` monitor.
    pub tenant: Option<&'a str>,
    /// Watch pass number (continues across `--state-dir` restarts).
    pub pass: u64,
    /// Unix timestamp (milliseconds) of the detection. Whole-second
    /// resolution collapsed distinct passes of a fast watch loop onto the
    /// same instant; millisecond stamps keep the jsonl log totally ordered.
    pub timestamp: u64,
    /// Elements (nodes + edges) absorbed by the detecting pass.
    pub elements_added: u64,
    /// The schema diff that constitutes the drift.
    pub diff: &'a SchemaDiff,
}

impl DriftEvent<'_> {
    /// Render the event as a single-line JSON object. Hand-rolled: the
    /// vendored serde is a no-op API subset (see `vendor/README.md`), so
    /// the few fields are emitted directly.
    pub fn to_json(&self) -> String {
        let tenant = match self.tenant {
            Some(t) => format!("\"tenant\":\"{}\",", json_escape(t)),
            None => String::new(),
        };
        format!(
            "{{\"event\":\"schema-drift\",{tenant}\"pass\":{},\"timestamp\":{},\
             \"elements_added\":{},\"monotone\":{},\
             \"added_node_types\":{},\"removed_node_types\":{},\"changed_node_types\":{},\
             \"added_edge_types\":{},\"removed_edge_types\":{},\"changed_edge_types\":{},\
             \"summary\":\"{}\"}}",
            self.pass,
            self.timestamp,
            self.elements_added,
            self.diff.is_monotone(),
            self.diff.added_node_types.len(),
            self.diff.removed_node_types.len(),
            self.diff.changed_node_types.len(),
            self.diff.added_edge_types.len(),
            self.diff.removed_edge_types.len(),
            self.diff.changed_edge_types.len(),
            json_escape(&self.diff.to_string()),
        )
    }

    fn verdict(&self) -> &'static str {
        if self.diff.is_monotone() {
            "monotone"
        } else {
            "non-monotone"
        }
    }
}

/// Escape a string for embedding in a hand-rolled JSON document. Shared by
/// the drift events and the `validate --report` violation events.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A materialized `--on-drift` sink.
pub enum DriftSink {
    /// Run a shell command per event.
    Exec(String),
    /// Append one JSON line per event.
    Jsonl(PathBuf),
}

impl DriftSink {
    /// Build from the parsed flag value.
    pub fn from_spec(spec: &DriftSinkSpec) -> Self {
        match spec {
            DriftSinkSpec::Exec(cmd) => DriftSink::Exec(cmd.clone()),
            DriftSinkSpec::Jsonl(path) => DriftSink::Jsonl(PathBuf::from(path)),
        }
    }

    /// Deliver one event. Errors describe the sink, so the caller can
    /// report them without aborting the watch loop.
    pub fn emit(&self, event: &DriftEvent<'_>) -> Result<(), String> {
        match self {
            DriftSink::Jsonl(path) => {
                append_jsonl(path, &event.to_json()).map_err(|e| format!("drift sink {e}"))
            }
            DriftSink::Exec(cmd) => {
                let status = std::process::Command::new("sh")
                    .arg("-c")
                    .arg(cmd)
                    .env("PGHIVE_DRIFT_TENANT", event.tenant.unwrap_or(""))
                    .env("PGHIVE_DRIFT_EVENT", event.to_json())
                    .env("PGHIVE_DRIFT_PASS", event.pass.to_string())
                    .env("PGHIVE_DRIFT_TIMESTAMP", event.timestamp.to_string())
                    .env("PGHIVE_DRIFT_MONOTONE", event.verdict())
                    .env("PGHIVE_DRIFT_SUMMARY", event.diff.to_string())
                    .status()
                    .map_err(|e| format!("drift sink exec:{cmd}: {e}"))?;
                if status.success() {
                    Ok(())
                } else {
                    Err(format!("drift sink exec:{cmd}: exited with {status}"))
                }
            }
        }
    }
}

/// Deliver `event` to every sink, reporting (not propagating) failures —
/// an unreachable sink must not stop drift detection.
pub fn emit_all(sinks: &[DriftSink], event: &DriftEvent<'_>) {
    for sink in sinks {
        if let Err(e) = sink.emit(event) {
            eprintln!("warning: {e}");
        }
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Render one `validate --report` violation as a single-line JSON event,
/// with the same hand-rolled codec (and [`json_escape`]) as the drift
/// events — one grep-able grammar across every pg-hive jsonl log.
pub fn violation_event_json(v: &pg_hive_core::StreamViolation) -> String {
    format!(
        "{{\"event\":\"schema-violation\",\"category\":\"{}\",\
         \"element\":\"{}\",\"detail\":\"{}\"}}",
        v.kind.name(),
        json_escape(&v.element),
        json_escape(&v.detail),
    )
}

/// Append one line to a jsonl file, creating it on first use — the shared
/// delivery path of the jsonl drift sink and `validate --report`.
pub fn append_jsonl(path: &std::path::Path, line: &str) -> Result<(), String> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("jsonl sink {}: {e}", path.display()))?;
    writeln!(f, "{line}").map_err(|e| format!("jsonl sink {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_core::label_set;

    fn sample_diff() -> SchemaDiff {
        SchemaDiff {
            added_node_types: vec![label_set(&["Place"])],
            added_edge_types: vec![label_set(&["BORN_IN"])],
            ..SchemaDiff::default()
        }
    }

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pg-hive-sink-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn event_json_is_structured_and_escaped() {
        let diff = sample_diff();
        let event = DriftEvent {
            tenant: None,
            pass: 3,
            timestamp: 1700000000,
            elements_added: 2,
            diff: &diff,
        };
        let json = event.to_json();
        assert!(json.contains("\"event\":\"schema-drift\""), "{json}");
        assert!(json.contains("\"pass\":3"), "{json}");
        assert!(json.contains("\"monotone\":true"), "{json}");
        assert!(json.contains("\"added_node_types\":1"), "{json}");
        // The multi-line diff summary is escaped into the single line.
        assert!(json.contains("+ node type Place\\n"), "{json}");
        assert_eq!(json.lines().count(), 1);
    }

    /// Extract the numeric value of `"field":N` from a hand-rolled JSON
    /// line — the parsing half of the timestamp round-trip.
    fn json_u64_field(json: &str, field: &str) -> u64 {
        let needle = format!("\"{field}\":");
        let start = json.find(&needle).expect("field present") + needle.len();
        json[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("numeric field")
    }

    #[test]
    fn timestamp_is_millisecond_resolution_and_round_trips() {
        // unix_timestamp() must be in milliseconds: any plausible wall
        // clock (2020..2100) lands far outside the seconds range.
        let ts = unix_timestamp();
        assert!(ts > 1_577_836_800_000, "{ts} is not in milliseconds");
        assert!(ts < 4_102_444_800_000, "{ts} is implausibly late");

        // And the emitted event carries it back out intact.
        let diff = sample_diff();
        let event = DriftEvent {
            tenant: None,
            pass: 7,
            timestamp: ts,
            elements_added: 1,
            diff: &diff,
        };
        assert_eq!(json_u64_field(&event.to_json(), "timestamp"), ts);
    }

    #[test]
    fn violation_event_uses_the_shared_codec() {
        let v = pg_hive_core::StreamViolation {
            kind: pg_hive_core::ViolationKind::MissingKey,
            element: "n\"3".into(),
            detail: "mandatory key 'age' absent".into(),
        };
        let json = violation_event_json(&v);
        assert!(json.contains("\"event\":\"schema-violation\""), "{json}");
        assert!(json.contains("\"category\":\"missing-key\""), "{json}");
        assert!(json.contains("\"element\":\"n\\\"3\""), "escaped: {json}");
        assert_eq!(json.lines().count(), 1);
    }

    #[test]
    fn tenant_field_appears_only_for_serve_events() {
        let diff = sample_diff();
        let with = DriftEvent {
            tenant: Some("team-a"),
            pass: 1,
            timestamp: 1,
            elements_added: 0,
            diff: &diff,
        }
        .to_json();
        assert!(with.contains("\"tenant\":\"team-a\""), "{with}");
        let without = DriftEvent {
            tenant: None,
            pass: 1,
            timestamp: 1,
            elements_added: 0,
            diff: &diff,
        }
        .to_json();
        assert!(!without.contains("tenant"), "{without}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn jsonl_sink_appends_one_line_per_event() {
        let path = temp("jsonl");
        let sink = DriftSink::Jsonl(path.clone());
        let diff = sample_diff();
        for pass in [2u64, 3] {
            sink.emit(&DriftEvent {
                tenant: None,
                pass,
                timestamp: 1,
                elements_added: 0,
                diff: &diff,
            })
            .unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"pass\":2"));
        assert!(lines[1].contains("\"pass\":3"));
    }

    #[test]
    fn exec_sink_exports_the_event_environment() {
        let out = temp("exec");
        let sink = DriftSink::Exec(format!(
            "printf '%s %s %s' \"$PGHIVE_DRIFT_PASS\" \"$PGHIVE_DRIFT_MONOTONE\" \
             \"$PGHIVE_DRIFT_TENANT\" > {}",
            out.display()
        ));
        let diff = sample_diff();
        sink.emit(&DriftEvent {
            tenant: Some("prod"),
            pass: 9,
            timestamp: 1,
            elements_added: 4,
            diff: &diff,
        })
        .unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "9 monotone prod");

        // A failing command surfaces as a named error, not a panic.
        let err = DriftSink::Exec("exit 3".into())
            .emit(&DriftEvent {
                tenant: None,
                pass: 1,
                timestamp: 1,
                elements_added: 0,
                diff: &diff,
            })
            .unwrap_err();
        assert!(err.contains("exec:exit 3"), "{err}");
    }
}
