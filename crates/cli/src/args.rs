//! Hand-rolled argument parsing — keeps the CLI dependency-free.

use pg_hive_core::ClusterMethod;

/// The `pg-hive help` text — the single source of truth for the flag
/// surface (CI checks that every subcommand and flag named here also
/// appears in `docs/CLI.md`).
pub const USAGE: &str = "\
pg-hive — hybrid incremental schema discovery for property graphs

USAGE:
  pg-hive discover <input> [OPTIONS]       infer the schema of a graph
  pg-hive diff     <old> <new> [OPTIONS]   discover both schemas and report
                                           what changed (exit 1 on changes)
  pg-hive watch    <input> [OPTIONS]       monitor a growing/rotating input
                                           for schema drift (long-running;
                                           --once = one re-check, exit 1 on
                                           drift)
  pg-hive merge-state <out> <in>...        merge saved engine states (from
                                           --save-state / watch rotation)
                                           into one snapshot; refuses
                                           incompatible method/theta/seed/
                                           chunk-size with a snapshot: error
  pg-hive validate <schema> <input> [OPTIONS]
                                           stream instance data against a
                                           schema — <schema> is a saved
                                           snapshot (--save-state / watch)
                                           or a reference graph to discover
                                           one from; exit 1 on violations
  pg-hive stats    <input> [OPTIONS]       structural statistics (Table 2)
  pg-hive serve    [OPTIONS]               long-running multi-tenant schema
                                           service over HTTP/1.1: POST
                                           /v1/<tenant>/ingest absorbs
                                           records, GET /v1/<tenant>/schema
                                           returns the canonical schema
                                           (see docs/SERVE.md)
  pg-hive help                             this message

INPUT FORMATS (discover, diff, watch, validate, stats):
  --input-format pgt|csv|jsonl  (default: pgt)
     pgt    line-oriented text graph (<input> is a .pgt file)
     csv    <input> is a directory holding nodes.csv (+ optional edges.csv):
            headers `id,labels,<key>,...` / `src,tgt,labels,<key>,...`,
            `;`-separated labels, empty cell = absent property
     jsonl  one JSON object per line: {\"type\":\"node\",\"id\":...,
            \"labels\":[...],\"props\":{...}} / {\"type\":\"edge\",\"src\":...}
  With --stream, discover and watch also accept a *directory tree* of
  mixed-format inputs: every *.pgt / *.jsonl file and every sub-directory
  holding nodes.csv is one input, enumerated in sorted order. validate
  accepts directory trees directly (validation always streams)
  (--input-format is then ignored for recognition)

STREAMING (discover, diff, validate, stats):
  --stream                 process the input in independent chunks with
                           O(chunk) resident memory (discovery merges
                           per-chunk schemas, §4.6); cross-chunk edges are
                           resolved through a compact id→labels registry
                           and reported as warnings
  --chunk-size <N>         elements per chunk (default: 100000; N >= 1).
                           stats folds records one at a time and ignores it
  --threads <N>            worker threads discovering chunks concurrently
                           (default: all available cores; N >= 1; results
                           are byte-identical for every thread count).
                           stats folds a single record stream, so --threads
                           has no effect there
  --read-ahead <N>         chunks parsed ahead of the workers by the
                           producer thread (default: 2; N >= 1)

DISCOVER / DIFF / WATCH OPTIONS:
  --method elsh|minhash    LSH family (default: elsh)
  --theta <0..1>           Jaccard merge threshold (default: 0.9)
  --seed <N>               RNG seed (default: 42)

DISCOVER OPTIONS:
  --batches <N>            incremental batches (default: 1 = static;
                           incompatible with --stream)
  --format strict|loose|xsd|summary   output (default: summary)
  --sample                 sample-based datatype inference
  --shards <N>             with --stream over a directory tree: partition
                           the enumerated inputs round-robin across N
                           shards, each folding its files on its own
                           worker pool; the merged schema is byte-identical
                           to the serial run for every N (default: 1)
  --save-state <FILE>      after a --stream run, persist the resumable
                           engine state (schema pools + id->labels
                           registry + carried cross-input edges + config
                           guard) as an atomic snapshot
  --load-state <FILE>      seed a --stream run from a saved snapshot and
                           absorb this input on top; refuses snapshots
                           written under different method/theta/seed/
                           chunk-size with a named snapshot: error

MERGE-STATE OPTIONS:
  --format strict|loose|xsd|summary   after merging, print the merged
                           schema in this format (default: summary).
                           Carried cross-input edges resolve against the
                           merged registry; the rest stay pending in <out>

VALIDATE OPTIONS:
  --max-violations <N>     stop reading input after N violations (early
                           exit; exit code is still 1)
  --report jsonl:<FILE>    append one structured JSON violation event per
                           line to <FILE> (same event codec as the drift
                           sinks: {\"event\":\"schema-violation\",
                           \"category\":...,\"element\":...,\"detail\":...})

WATCH OPTIONS:
  --interval <SECS>        seconds between drift-check passes (default: 30;
                           >= 1). Each pass ingests only newly appended
                           records into the resident schema state
  --once                   baseline + exactly one re-check, then exit
                           (0 = no drift, 1 = drift) — the CI mode
  --state-dir <DIR>        durable watch: checkpoint the full resumable
                           state to <DIR>/watch.snapshot after every pass
                           (atomic temp-file + rename) and auto-resume
                           from it on start, so a restart re-ingests only
                           bytes appended since the last checkpoint and
                           never fires a spurious drift event
  --keep <K>               retain the last K rotated snapshots as
                           <DIR>/watch.snapshot.1..K (1 = most recent;
                           older ones are pruned). Requires --state-dir
  --partition passes:<N>   roll the resident state into a retained
                           snapshot every N passes; the reported schema
                           is then the merge of the current partition and
                           the last K retained ones, and registry entries
                           older than the retention window are compacted
                           away. Requires --state-dir and --keep
  --on-drift exec:<CMD>    run <CMD> via `sh -c` on every drift event
                           (event JSON in $PGHIVE_DRIFT_EVENT plus
                           PGHIVE_DRIFT_PASS/_TIMESTAMP/_MONOTONE/_SUMMARY)
  --on-drift jsonl:<FILE>  append one structured JSON drift event per line
                           to <FILE>; repeatable (all sinks fire)

SERVE OPTIONS (plus --method/--theta/--seed/--chunk-size as above):
  --addr <HOST:PORT>       listen address (default: 127.0.0.1:7171; port 0
                           picks an ephemeral port; the bound address is
                           printed on stdout as 'serving on http://...')
  --workers <N>            connection worker threads (default: 4; >= 1)
  --read-timeout <SECS>    socket read timeout bounding slow clients
                           (default: 10; >= 1)
  --max-body <MB>          largest accepted request body in MiB
                           (default: 64; >= 1)
  --state-dir <DIR>        durable tenants: POST /v1/<tenant>/checkpoint
                           writes <DIR>/<tenant>.snapshot (atomic temp-file
                           + rename) and startup warm-resumes every tenant
                           snapshot found in <DIR>
  --keep <K>               retain the last K rotated snapshots per tenant
                           as <DIR>/<tenant>.snapshot.1..K; chains are
                           keyed by tenant name and never mix. Requires
                           --state-dir
  --on-drift exec:<CMD> | jsonl:<FILE>
                           as for watch, fired on every ingest pass that
                           changed a tenant's schema; events carry a
                           \"tenant\" field, exec sinks additionally get
                           $PGHIVE_DRIFT_TENANT, and a '{tenant}'
                           placeholder in a jsonl path expands to the
                           tenant name; repeatable";

/// Output format of `discover`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// PG-Schema STRICT text.
    Strict,
    /// PG-Schema LOOSE text.
    Loose,
    /// XML Schema (XSD).
    Xsd,
    /// Human-readable one-line summary plus the type inventory.
    Summary,
}

/// Wire format of the graph input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputFormat {
    /// Line-oriented `.pgt` text (the default).
    #[default]
    Pgt,
    /// A directory holding `nodes.csv` + optional `edges.csv`.
    Csv,
    /// JSON-Lines: one node/edge object per line.
    Jsonl,
}

impl InputFormat {
    fn parse(s: Option<&str>) -> Result<Self, String> {
        match s {
            Some("pgt") => Ok(InputFormat::Pgt),
            Some("csv") => Ok(InputFormat::Csv),
            Some("jsonl") => Ok(InputFormat::Jsonl),
            other => Err(format!(
                "--input-format expects pgt|csv|jsonl, got {other:?}"
            )),
        }
    }

    /// Stable wire-format name, as recorded in snapshot files.
    pub fn name(self) -> &'static str {
        match self {
            InputFormat::Pgt => "pgt",
            InputFormat::Csv => "csv",
            InputFormat::Jsonl => "jsonl",
        }
    }
}

/// One parsed `--on-drift` sink specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftSinkSpec {
    /// `exec:<cmd>` — run a shell command per drift event.
    Exec(String),
    /// `jsonl:<path>` — append one JSON event per line to a file.
    Jsonl(String),
}

impl DriftSinkSpec {
    fn parse(arg: Option<String>) -> Result<Self, String> {
        let arg = arg.ok_or("--on-drift needs a value")?;
        match arg.split_once(':') {
            Some(("exec", cmd)) if !cmd.is_empty() => Ok(DriftSinkSpec::Exec(cmd.to_string())),
            Some(("jsonl", path)) if !path.is_empty() => Ok(DriftSinkSpec::Jsonl(path.to_string())),
            _ => Err(format!(
                "--on-drift expects exec:<command> or jsonl:<path>, got '{arg}'"
            )),
        }
    }
}

/// Parse the `validate --report` destination. Only the jsonl sink makes
/// sense for a batch verb (there is no long-running loop to exec from),
/// so the grammar is the drift-sink `jsonl:` arm alone.
fn parse_report(arg: Option<String>) -> Result<String, String> {
    let arg = arg.ok_or("--report needs a value")?;
    match arg.split_once(':') {
        Some(("jsonl", path)) if !path.is_empty() => Ok(path.to_string()),
        _ => Err(format!("--report expects jsonl:<path>, got '{arg}'")),
    }
}

/// Default `--chunk-size`.
pub const DEFAULT_CHUNK_SIZE: usize = 100_000;

/// Default `--read-ahead` depth (parsed chunks buffered ahead of the
/// workers).
pub const DEFAULT_READ_AHEAD: usize = 2;

/// Ingestion options shared by `discover`, `diff`, `watch` and `stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOpts {
    /// Wire format of the input (`--input-format`).
    pub input_format: InputFormat,
    /// Whether `--stream` chunked ingestion was requested.
    pub stream: bool,
    /// Elements per chunk (`--chunk-size`, ≥ 1).
    pub chunk_size: usize,
    /// Worker threads for per-chunk discovery; `None` = all available
    /// cores. Always ≥ 1 when set (0 is rejected at parse time).
    pub threads: Option<usize>,
    /// Chunks the producer thread parses ahead (`--read-ahead`, ≥ 1).
    pub read_ahead: usize,
}

impl Default for StreamOpts {
    fn default() -> Self {
        Self {
            input_format: InputFormat::Pgt,
            stream: false,
            chunk_size: DEFAULT_CHUNK_SIZE,
            threads: None,
            read_ahead: DEFAULT_READ_AHEAD,
        }
    }
}

impl StreamOpts {
    /// Try to consume `flag` (and its value from `it`) as one of the shared
    /// ingestion flags. `Ok(true)` when consumed, `Ok(false)` when the flag
    /// is not an ingestion flag.
    fn consume<I: Iterator<Item = String>>(
        &mut self,
        flag: &str,
        it: &mut I,
    ) -> Result<bool, String> {
        match flag {
            "--input-format" => {
                self.input_format = InputFormat::parse(it.next().as_deref())?;
            }
            "--stream" => self.stream = true,
            "--chunk-size" => {
                self.chunk_size = parse_positive("--chunk-size", it.next())?;
            }
            "--threads" => {
                self.threads = Some(parse_positive("--threads", it.next())?);
            }
            "--read-ahead" => {
                self.read_ahead = parse_positive("--read-ahead", it.next())?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Parsed sub-command.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // field meanings are given by USAGE and docs/CLI.md
pub enum Command {
    /// `pg-hive discover` — infer the schema of a graph.
    Discover {
        path: String,
        method: ClusterMethod,
        theta: f64,
        batches: usize,
        format: OutputFormat,
        sample: bool,
        seed: u64,
        stream: StreamOpts,
        shards: usize,
        save_state: Option<String>,
        load_state: Option<String>,
    },
    /// `pg-hive diff` — discover two snapshots and report what changed.
    Diff {
        old_path: String,
        new_path: String,
        method: ClusterMethod,
        theta: f64,
        seed: u64,
        stream: StreamOpts,
    },
    /// `pg-hive watch` — long-running (optionally durable) drift monitor.
    Watch {
        path: String,
        method: ClusterMethod,
        theta: f64,
        seed: u64,
        interval_secs: u64,
        once: bool,
        stream: StreamOpts,
        state_dir: Option<String>,
        keep: Option<usize>,
        partition_passes: Option<u64>,
        on_drift: Vec<DriftSinkSpec>,
    },
    /// `pg-hive merge-state` — fold saved engine states into one snapshot.
    MergeState {
        out: String,
        inputs: Vec<String>,
        format: OutputFormat,
    },
    /// `pg-hive validate` — stream instance data against a schema.
    Validate {
        /// Saved snapshot, or a reference input to discover a schema from.
        schema_path: String,
        /// The instance data to check (file or directory tree).
        input_path: String,
        method: ClusterMethod,
        theta: f64,
        seed: u64,
        stream: StreamOpts,
        /// Early-exit violation cap (`--max-violations`).
        max_violations: Option<u64>,
        /// `--report jsonl:<path>` destination.
        report: Option<String>,
    },
    /// `pg-hive stats` — structural statistics.
    Stats { path: String, stream: StreamOpts },
    /// `pg-hive serve` — long-running multi-tenant schema service.
    Serve {
        addr: String,
        method: ClusterMethod,
        theta: f64,
        seed: u64,
        chunk_size: usize,
        workers: usize,
        read_timeout_secs: u64,
        max_body_mb: usize,
        state_dir: Option<String>,
        keep: Option<usize>,
        on_drift: Vec<DriftSinkSpec>,
    },
    /// `pg-hive help`.
    Help,
}

/// Top-level parsed arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// The sub-command to run.
    pub command: Command,
}

impl Args {
    /// Parse from an iterator of argument strings (without `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut it = args.into_iter();
        let Some(cmd) = it.next() else {
            return Ok(Args {
                command: Command::Help,
            });
        };
        match cmd.as_str() {
            "help" | "--help" | "-h" => Ok(Args {
                command: Command::Help,
            }),
            "stats" => {
                let path = it.next().ok_or("stats needs a graph file")?;
                let mut stream = StreamOpts::default();
                while let Some(flag) = it.next() {
                    if !stream.consume(&flag, &mut it)? {
                        return Err(format!("unknown flag '{flag}'"));
                    }
                }
                Ok(Args {
                    command: Command::Stats { path, stream },
                })
            }
            "validate" => {
                let schema_path = it
                    .next()
                    .ok_or("validate needs a schema (snapshot or reference input)")?;
                let input_path = it.next().ok_or("validate needs an input to check")?;
                let mut method = ClusterMethod::Elsh;
                let mut theta = 0.9;
                let mut seed = 42u64;
                let mut stream = StreamOpts::default();
                let mut max_violations = None;
                let mut report = None;
                while let Some(flag) = it.next() {
                    if stream.consume(&flag, &mut it)? {
                        continue;
                    }
                    match flag.as_str() {
                        "--method" => method = parse_method(it.next())?,
                        "--theta" => theta = parse_theta(it.next())?,
                        "--seed" => seed = parse_seed(it.next())?,
                        "--max-violations" => {
                            max_violations =
                                Some(parse_positive("--max-violations", it.next())? as u64)
                        }
                        "--report" => report = Some(parse_report(it.next())?),
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                Ok(Args {
                    command: Command::Validate {
                        schema_path,
                        input_path,
                        method,
                        theta,
                        seed,
                        stream,
                        max_violations,
                        report,
                    },
                })
            }
            "diff" => {
                let old_path = it.next().ok_or("diff needs an old graph file")?;
                let new_path = it.next().ok_or("diff needs a new graph file")?;
                let mut method = ClusterMethod::Elsh;
                let mut theta = 0.9;
                let mut seed = 42u64;
                let mut stream = StreamOpts::default();
                while let Some(flag) = it.next() {
                    if stream.consume(&flag, &mut it)? {
                        continue;
                    }
                    match flag.as_str() {
                        "--method" => method = parse_method(it.next())?,
                        "--theta" => theta = parse_theta(it.next())?,
                        "--seed" => seed = parse_seed(it.next())?,
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                Ok(Args {
                    command: Command::Diff {
                        old_path,
                        new_path,
                        method,
                        theta,
                        seed,
                        stream,
                    },
                })
            }
            "watch" => {
                let path = it.next().ok_or("watch needs a graph input")?;
                let mut method = ClusterMethod::Elsh;
                let mut theta = 0.9;
                let mut seed = 42u64;
                let mut interval_secs = 30u64;
                let mut once = false;
                let mut stream = StreamOpts::default();
                let mut state_dir = None;
                let mut keep = None;
                let mut partition_passes = None;
                let mut on_drift = Vec::new();
                while let Some(flag) = it.next() {
                    if stream.consume(&flag, &mut it)? {
                        continue;
                    }
                    match flag.as_str() {
                        "--method" => method = parse_method(it.next())?,
                        "--theta" => theta = parse_theta(it.next())?,
                        "--seed" => seed = parse_seed(it.next())?,
                        "--interval" => {
                            interval_secs = parse_positive("--interval", it.next())? as u64;
                        }
                        "--once" => once = true,
                        "--state-dir" => {
                            state_dir = Some(it.next().ok_or("--state-dir needs a directory")?);
                        }
                        "--keep" => keep = Some(parse_positive("--keep", it.next())?),
                        "--partition" => partition_passes = Some(parse_partition(it.next())?),
                        "--on-drift" => on_drift.push(DriftSinkSpec::parse(it.next())?),
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                if keep.is_some() && state_dir.is_none() {
                    return Err(
                        "--keep requires --state-dir (retained snapshots live in the state dir)"
                            .into(),
                    );
                }
                if partition_passes.is_some() && keep.is_none() {
                    return Err("--partition requires --state-dir and --keep (each rolled \
                         partition becomes a retained snapshot)"
                        .into());
                }
                Ok(Args {
                    command: Command::Watch {
                        path,
                        method,
                        theta,
                        seed,
                        interval_secs,
                        once,
                        stream,
                        state_dir,
                        keep,
                        partition_passes,
                        on_drift,
                    },
                })
            }
            "discover" => {
                let path = it.next().ok_or("discover needs a graph file")?;
                let mut method = ClusterMethod::Elsh;
                let mut theta = 0.9;
                let mut batches = 1usize;
                let mut format = OutputFormat::Summary;
                let mut sample = false;
                let mut seed = 42u64;
                let mut stream = StreamOpts::default();
                let mut shards = None;
                let mut save_state = None;
                let mut load_state = None;
                while let Some(flag) = it.next() {
                    if stream.consume(&flag, &mut it)? {
                        continue;
                    }
                    match flag.as_str() {
                        "--method" => method = parse_method(it.next())?,
                        "--theta" => theta = parse_theta(it.next())?,
                        "--shards" => shards = Some(parse_positive("--shards", it.next())?),
                        "--save-state" => {
                            save_state = Some(it.next().ok_or("--save-state needs a file path")?);
                        }
                        "--load-state" => {
                            load_state = Some(it.next().ok_or("--load-state needs a file path")?);
                        }
                        "--batches" => {
                            batches = it
                                .next()
                                .ok_or("--batches needs a value")?
                                .parse()
                                .map_err(|e| format!("--batches: {e}"))?;
                            if batches == 0 {
                                return Err("--batches must be >= 1".into());
                            }
                        }
                        "--format" => format = parse_format(it.next())?,
                        "--sample" => sample = true,
                        "--seed" => seed = parse_seed(it.next())?,
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                if stream.stream && batches > 1 {
                    return Err("--stream and --batches are incompatible: streaming chunks \
                         are the batches"
                        .into());
                }
                if (save_state.is_some() || load_state.is_some()) && !stream.stream {
                    return Err(
                        "--save-state/--load-state require --stream (they checkpoint \
                         the streaming engine's resident state)"
                            .into(),
                    );
                }
                if shards.is_some() && !stream.stream {
                    return Err("--shards requires --stream (shards partition the streamed \
                         multi-source enumeration)"
                        .into());
                }
                Ok(Args {
                    command: Command::Discover {
                        path,
                        method,
                        theta,
                        batches,
                        format,
                        sample,
                        seed,
                        stream,
                        shards: shards.unwrap_or(1),
                        save_state,
                        load_state,
                    },
                })
            }
            "serve" => {
                let mut addr = "127.0.0.1:7171".to_string();
                let mut method = ClusterMethod::Elsh;
                let mut theta = 0.9;
                let mut seed = 42u64;
                let mut chunk_size = DEFAULT_CHUNK_SIZE;
                let mut workers = 4usize;
                let mut read_timeout_secs = 10u64;
                let mut max_body_mb = 64usize;
                let mut state_dir = None;
                let mut keep = None;
                let mut on_drift = Vec::new();
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--addr" => addr = it.next().ok_or("--addr needs host:port")?,
                        "--method" => method = parse_method(it.next())?,
                        "--theta" => theta = parse_theta(it.next())?,
                        "--seed" => seed = parse_seed(it.next())?,
                        "--chunk-size" => {
                            chunk_size = parse_positive("--chunk-size", it.next())?;
                        }
                        "--workers" => workers = parse_positive("--workers", it.next())?,
                        "--read-timeout" => {
                            read_timeout_secs = parse_positive("--read-timeout", it.next())? as u64;
                        }
                        "--max-body" => max_body_mb = parse_positive("--max-body", it.next())?,
                        "--state-dir" => {
                            state_dir = Some(it.next().ok_or("--state-dir needs a directory")?);
                        }
                        "--keep" => keep = Some(parse_positive("--keep", it.next())?),
                        "--on-drift" => on_drift.push(DriftSinkSpec::parse(it.next())?),
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                if keep.is_some() && state_dir.is_none() {
                    return Err(
                        "--keep requires --state-dir (retained snapshots live in the state dir)"
                            .into(),
                    );
                }
                Ok(Args {
                    command: Command::Serve {
                        addr,
                        method,
                        theta,
                        seed,
                        chunk_size,
                        workers,
                        read_timeout_secs,
                        max_body_mb,
                        state_dir,
                        keep,
                        on_drift,
                    },
                })
            }
            "merge-state" => {
                let out = it
                    .next()
                    .ok_or("merge-state needs an output snapshot path")?;
                let mut inputs = Vec::new();
                let mut format = OutputFormat::Summary;
                while let Some(arg) = it.next() {
                    match arg.as_str() {
                        "--format" => format = parse_format(it.next())?,
                        flag if flag.starts_with("--") => {
                            return Err(format!("unknown flag '{flag}'"))
                        }
                        _ => inputs.push(arg),
                    }
                }
                if inputs.is_empty() {
                    return Err(
                        "usage: merge-state <out> <in>... needs at least one input snapshot".into(),
                    );
                }
                Ok(Args {
                    command: Command::MergeState {
                        out,
                        inputs,
                        format,
                    },
                })
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn parse_method(arg: Option<String>) -> Result<ClusterMethod, String> {
    match arg.as_deref() {
        Some("elsh") => Ok(ClusterMethod::Elsh),
        Some("minhash") => Ok(ClusterMethod::MinHash),
        other => Err(format!("--method expects elsh|minhash, got {other:?}")),
    }
}

fn parse_theta(arg: Option<String>) -> Result<f64, String> {
    let theta: f64 = arg
        .ok_or("--theta needs a value")?
        .parse()
        .map_err(|e| format!("--theta: {e}"))?;
    if !(0.0..=1.0).contains(&theta) {
        return Err("--theta must be in [0, 1]".into());
    }
    Ok(theta)
}

fn parse_seed(arg: Option<String>) -> Result<u64, String> {
    arg.ok_or("--seed needs a value")?
        .parse()
        .map_err(|e| format!("--seed: {e}"))
}

fn parse_format(arg: Option<String>) -> Result<OutputFormat, String> {
    match arg.as_deref() {
        Some("strict") => Ok(OutputFormat::Strict),
        Some("loose") => Ok(OutputFormat::Loose),
        Some("xsd") => Ok(OutputFormat::Xsd),
        Some("summary") => Ok(OutputFormat::Summary),
        other => Err(format!(
            "--format expects strict|loose|xsd|summary, got {other:?}"
        )),
    }
}

/// Parse `--partition passes:<n>` — the only partitioning dimension today,
/// but the `key:value` grammar leaves room for size- or time-based ones.
fn parse_partition(arg: Option<String>) -> Result<u64, String> {
    let arg = arg.ok_or("--partition needs a value")?;
    match arg.split_once(':') {
        Some(("passes", n)) => {
            let n: u64 = n.parse().map_err(|e| format!("--partition passes: {e}"))?;
            if n == 0 {
                return Err("--partition passes must be >= 1".into());
            }
            Ok(n)
        }
        _ => Err(format!("--partition expects passes:<n>, got '{arg}'")),
    }
}

/// Parse a flag value that must be a positive integer — `0` would mean "no
/// chunks" / "no workers" / "no buffer" and silently degenerate, so it is
/// rejected with the flag's name in the error.
fn parse_positive(flag: &str, arg: Option<String>) -> Result<usize, String> {
    let n: usize = arg
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag} must be >= 1"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn no_args_is_help() {
        assert!(matches!(parse(&[]).unwrap().command, Command::Help));
    }

    #[test]
    fn discover_defaults() {
        let a = parse(&["discover", "g.pgt"]).unwrap();
        let Command::Discover {
            path,
            method,
            theta,
            batches,
            format,
            sample,
            seed,
            stream,
            shards,
            save_state,
            load_state,
        } = a.command
        else {
            panic!()
        };
        assert_eq!(shards, 1);
        assert_eq!(save_state, None);
        assert_eq!(load_state, None);
        assert_eq!(path, "g.pgt");
        assert_eq!(method, ClusterMethod::Elsh);
        assert_eq!(theta, 0.9);
        assert_eq!(batches, 1);
        assert_eq!(format, OutputFormat::Summary);
        assert!(!sample);
        assert_eq!(seed, 42);
        assert_eq!(stream, StreamOpts::default());
        assert_eq!(stream.input_format, InputFormat::Pgt);
        assert!(!stream.stream);
        assert_eq!(stream.chunk_size, DEFAULT_CHUNK_SIZE);
        assert_eq!(stream.threads, None);
        assert_eq!(stream.read_ahead, DEFAULT_READ_AHEAD);
    }

    #[test]
    fn discover_full_flags() {
        let a = parse(&[
            "discover",
            "g.pgt",
            "--method",
            "minhash",
            "--theta",
            "0.8",
            "--batches",
            "10",
            "--format",
            "strict",
            "--sample",
            "--seed",
            "7",
        ])
        .unwrap();
        let Command::Discover {
            method,
            theta,
            batches,
            format,
            sample,
            seed,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(method, ClusterMethod::MinHash);
        assert_eq!(theta, 0.8);
        assert_eq!(batches, 10);
        assert_eq!(format, OutputFormat::Strict);
        assert!(sample);
        assert_eq!(seed, 7);
    }

    #[test]
    fn discover_streaming_flags() {
        let a = parse(&[
            "discover",
            "dump",
            "--stream",
            "--chunk-size",
            "5000",
            "--input-format",
            "csv",
            "--threads",
            "3",
            "--read-ahead",
            "5",
        ])
        .unwrap();
        let Command::Discover { stream, .. } = a.command else {
            panic!()
        };
        assert!(stream.stream);
        assert_eq!(stream.chunk_size, 5000);
        assert_eq!(stream.input_format, InputFormat::Csv);
        assert_eq!(stream.threads, Some(3));
        assert_eq!(stream.read_ahead, 5);
    }

    #[test]
    fn stream_excludes_batches() {
        assert!(parse(&["discover", "g", "--stream", "--batches", "4"]).is_err());
        assert!(parse(&["discover", "g", "--stream", "--batches", "1"]).is_ok());
    }

    #[test]
    fn chunk_size_validated() {
        assert!(parse(&["discover", "g", "--chunk-size", "0"]).is_err());
        assert!(parse(&["discover", "g", "--chunk-size", "nope"]).is_err());
        assert!(parse(&["stats", "g", "--chunk-size", "0"]).is_err());
        assert!(parse(&["diff", "a", "b", "--chunk-size", "0"]).is_err());
    }

    #[test]
    fn zero_threads_and_read_ahead_rejected_everywhere() {
        // Regression: 0 would mean "no workers" / "no buffer" and must be a
        // parse error with the flag name, not degenerate behavior.
        for cmd in [&["discover", "g"][..], &["stats", "g"], &["diff", "a", "b"]] {
            let mut with_threads = cmd.to_vec();
            with_threads.extend(["--threads", "0"]);
            let err = parse(&with_threads).unwrap_err();
            assert!(err.contains("--threads must be >= 1"), "{err}");
            let mut with_ra = cmd.to_vec();
            with_ra.extend(["--read-ahead", "0"]);
            let err = parse(&with_ra).unwrap_err();
            assert!(err.contains("--read-ahead must be >= 1"), "{err}");
        }
        assert!(parse(&["discover", "g", "--threads", "4"]).is_ok());
        assert!(parse(&["discover", "g", "--threads", "-2"]).is_err());
        assert!(parse(&["discover", "g", "--read-ahead", "nope"]).is_err());
    }

    #[test]
    fn input_format_validated() {
        assert!(parse(&["discover", "g", "--input-format", "xml"]).is_err());
        assert!(parse(&["stats", "g", "--input-format", "jsonl"]).is_ok());
    }

    #[test]
    fn invalid_theta_rejected() {
        assert!(parse(&["discover", "g", "--theta", "1.5"]).is_err());
        assert!(parse(&["discover", "g", "--theta", "nope"]).is_err());
    }

    #[test]
    fn zero_batches_rejected() {
        assert!(parse(&["discover", "g", "--batches", "0"]).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        assert!(parse(&["discover", "g", "--frobnicate"]).is_err());
        assert!(parse(&["stats", "g", "--batches", "2"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
    }

    #[test]
    fn validate_parses() {
        let a = parse(&[
            "validate",
            "schema.snap",
            "data.pgt",
            "--input-format",
            "jsonl",
            "--stream",
            "--chunk-size",
            "7",
            "--threads",
            "2",
            "--max-violations",
            "5",
            "--report",
            "jsonl:viol.jsonl",
        ])
        .unwrap();
        let Command::Validate {
            schema_path,
            input_path,
            stream,
            max_violations,
            report,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(schema_path, "schema.snap");
        assert_eq!(input_path, "data.pgt");
        assert!(stream.stream);
        assert_eq!(stream.chunk_size, 7);
        assert_eq!(stream.threads, Some(2));
        assert_eq!(max_violations, Some(5));
        assert_eq!(report.as_deref(), Some("viol.jsonl"));
    }

    #[test]
    fn validate_rejects_bad_flags() {
        let err = parse(&["validate", "s", "d", "--report", "exec:echo"]).unwrap_err();
        assert!(err.contains("--report expects jsonl:<path>"), "{err}");
        let err = parse(&["validate", "s", "d", "--max-violations", "0"]).unwrap_err();
        assert!(err.contains("--max-violations must be >= 1"), "{err}");
        let err = parse(&["validate", "s"]).unwrap_err();
        assert!(err.contains("validate needs an input"), "{err}");
    }

    #[test]
    fn stats_parses() {
        let a = parse(&["stats", "g.pgt", "--stream"]).unwrap();
        let Command::Stats { stream, .. } = a.command else {
            panic!()
        };
        assert!(stream.stream);
    }

    #[test]
    fn watch_parses_with_defaults_and_flags() {
        let a = parse(&["watch", "g.pgt"]).unwrap();
        let Command::Watch {
            path,
            interval_secs,
            once,
            stream,
            state_dir,
            on_drift,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(path, "g.pgt");
        assert_eq!(interval_secs, 30);
        assert!(!once);
        assert_eq!(stream, StreamOpts::default());
        assert_eq!(state_dir, None);
        assert!(on_drift.is_empty());

        let a = parse(&[
            "watch",
            "dir",
            "--input-format",
            "csv",
            "--interval",
            "5",
            "--once",
            "--threads",
            "2",
            "--read-ahead",
            "4",
            "--chunk-size",
            "100",
            "--theta",
            "0.8",
        ])
        .unwrap();
        let Command::Watch {
            interval_secs,
            once,
            theta,
            stream,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(interval_secs, 5);
        assert!(once);
        assert_eq!(theta, 0.8);
        assert_eq!(stream.input_format, InputFormat::Csv);
        assert_eq!(stream.threads, Some(2));
        assert_eq!(stream.chunk_size, 100);
    }

    #[test]
    fn watch_state_dir_and_drift_sinks_parse() {
        let a = parse(&[
            "watch",
            "g.pgt",
            "--state-dir",
            "statedir",
            "--on-drift",
            "jsonl:events.jsonl",
            "--on-drift",
            "exec:notify-send drift",
        ])
        .unwrap();
        let Command::Watch {
            state_dir,
            on_drift,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(state_dir.as_deref(), Some("statedir"));
        assert_eq!(
            on_drift,
            vec![
                DriftSinkSpec::Jsonl("events.jsonl".into()),
                DriftSinkSpec::Exec("notify-send drift".into()),
            ]
        );

        // Malformed sink specs are parse errors with the flag's grammar.
        for bad in ["frob:x", "exec:", "jsonl:", "no-colon"] {
            let err = parse(&["watch", "g", "--on-drift", bad]).unwrap_err();
            assert!(err.contains("exec:<command> or jsonl:<path>"), "{err}");
        }
        assert!(parse(&["watch", "g", "--state-dir"]).is_err());
        assert!(parse(&["watch", "g", "--on-drift"]).is_err());
    }

    #[test]
    fn discover_state_flags_require_stream() {
        let a = parse(&[
            "discover",
            "g.pgt",
            "--stream",
            "--save-state",
            "s.snap",
            "--load-state",
            "old.snap",
        ])
        .unwrap();
        let Command::Discover {
            save_state,
            load_state,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(save_state.as_deref(), Some("s.snap"));
        assert_eq!(load_state.as_deref(), Some("old.snap"));

        for flags in [
            &["discover", "g", "--save-state", "s.snap"][..],
            &["discover", "g", "--load-state", "s.snap"],
        ] {
            let err = parse(flags).unwrap_err();
            assert!(err.contains("require --stream"), "{err}");
        }
        assert!(parse(&["discover", "g", "--stream", "--save-state"]).is_err());
    }

    #[test]
    fn input_format_names_round_trip() {
        for (fmt, name) in [
            (InputFormat::Pgt, "pgt"),
            (InputFormat::Csv, "csv"),
            (InputFormat::Jsonl, "jsonl"),
        ] {
            assert_eq!(fmt.name(), name);
            assert_eq!(InputFormat::parse(Some(name)).unwrap(), fmt);
        }
    }

    #[test]
    fn shards_parse_and_require_stream() {
        let a = parse(&["discover", "tree", "--stream", "--shards", "4"]).unwrap();
        let Command::Discover { shards, .. } = a.command else {
            panic!()
        };
        assert_eq!(shards, 4);

        let err = parse(&["discover", "tree", "--shards", "4"]).unwrap_err();
        assert!(err.contains("--shards requires --stream"), "{err}");
        let err = parse(&["discover", "tree", "--stream", "--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards must be >= 1"), "{err}");
        assert!(parse(&["discover", "tree", "--stream", "--shards", "nope"]).is_err());
    }

    #[test]
    fn merge_state_parses_out_inputs_and_format() {
        let a = parse(&["merge-state", "out.snap", "a.snap", "b.snap", "c.snap"]).unwrap();
        let Command::MergeState {
            out,
            inputs,
            format,
        } = a.command
        else {
            panic!()
        };
        assert_eq!(out, "out.snap");
        assert_eq!(inputs, vec!["a.snap", "b.snap", "c.snap"]);
        assert_eq!(format, OutputFormat::Summary);

        let a = parse(&["merge-state", "o", "a", "--format", "strict"]).unwrap();
        let Command::MergeState { format, .. } = a.command else {
            panic!()
        };
        assert_eq!(format, OutputFormat::Strict);

        assert!(parse(&["merge-state"]).is_err());
        let err = parse(&["merge-state", "out.snap"]).unwrap_err();
        assert!(err.contains("at least one input snapshot"), "{err}");
        assert!(parse(&["merge-state", "o", "a", "--frobnicate"]).is_err());
        assert!(parse(&["merge-state", "o", "a", "--format", "nope"]).is_err());
    }

    #[test]
    fn watch_keep_and_partition_parse_with_guards() {
        let a = parse(&[
            "watch",
            "tree",
            "--state-dir",
            "sd",
            "--keep",
            "3",
            "--partition",
            "passes:5",
        ])
        .unwrap();
        let Command::Watch {
            keep,
            partition_passes,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(keep, Some(3));
        assert_eq!(partition_passes, Some(5));

        let err = parse(&["watch", "g", "--keep", "3"]).unwrap_err();
        assert!(err.contains("--keep requires --state-dir"), "{err}");
        let err =
            parse(&["watch", "g", "--state-dir", "sd", "--partition", "passes:5"]).unwrap_err();
        assert!(
            err.contains("--partition requires --state-dir and --keep"),
            "{err}"
        );
        let err = parse(&[
            "watch",
            "g",
            "--state-dir",
            "sd",
            "--keep",
            "2",
            "--partition",
            "rows:5",
        ])
        .unwrap_err();
        assert!(err.contains("--partition expects passes:<n>"), "{err}");
        let err = parse(&[
            "watch",
            "g",
            "--state-dir",
            "sd",
            "--keep",
            "2",
            "--partition",
            "passes:0",
        ])
        .unwrap_err();
        assert!(err.contains("--partition passes must be >= 1"), "{err}");
        let err = parse(&["watch", "g", "--state-dir", "sd", "--keep", "0"]).unwrap_err();
        assert!(err.contains("--keep must be >= 1"), "{err}");
    }

    #[test]
    fn watch_rejects_zero_interval_and_unknown_flags() {
        let err = parse(&["watch", "g", "--interval", "0"]).unwrap_err();
        assert!(err.contains("--interval must be >= 1"), "{err}");
        assert!(parse(&["watch", "g", "--batches", "2"]).is_err());
        assert!(parse(&["watch"]).is_err());
    }

    #[test]
    fn diff_parses() {
        let a = parse(&[
            "diff",
            "old.pgt",
            "new.pgt",
            "--theta",
            "0.8",
            "--stream",
            "--threads",
            "2",
        ])
        .unwrap();
        let Command::Diff {
            old_path,
            new_path,
            theta,
            stream,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(old_path, "old.pgt");
        assert_eq!(new_path, "new.pgt");
        assert_eq!(theta, 0.8);
        assert!(stream.stream);
        assert_eq!(stream.threads, Some(2));
        assert!(parse(&["diff", "only-one"]).is_err());
    }

    #[test]
    fn serve_defaults() {
        let a = parse(&["serve"]).unwrap();
        let Command::Serve {
            addr,
            method,
            theta,
            seed,
            chunk_size,
            workers,
            read_timeout_secs,
            max_body_mb,
            state_dir,
            keep,
            on_drift,
        } = a.command
        else {
            panic!()
        };
        assert_eq!(addr, "127.0.0.1:7171");
        assert_eq!(method, ClusterMethod::Elsh);
        assert_eq!(theta, 0.9);
        assert_eq!(seed, 42);
        assert_eq!(chunk_size, DEFAULT_CHUNK_SIZE);
        assert_eq!(workers, 4);
        assert_eq!(read_timeout_secs, 10);
        assert_eq!(max_body_mb, 64);
        assert_eq!(state_dir, None);
        assert_eq!(keep, None);
        assert!(on_drift.is_empty());
    }

    #[test]
    fn serve_full_flags() {
        let a = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:0",
            "--method",
            "minhash",
            "--theta",
            "0.8",
            "--seed",
            "7",
            "--chunk-size",
            "500",
            "--workers",
            "2",
            "--read-timeout",
            "3",
            "--max-body",
            "8",
            "--state-dir",
            "/tmp/hive",
            "--keep",
            "2",
            "--on-drift",
            "jsonl:/tmp/{tenant}.jsonl",
            "--on-drift",
            "exec:echo hi",
        ])
        .unwrap();
        let Command::Serve {
            addr,
            method,
            theta,
            seed,
            chunk_size,
            workers,
            read_timeout_secs,
            max_body_mb,
            state_dir,
            keep,
            on_drift,
        } = a.command
        else {
            panic!()
        };
        assert_eq!(addr, "0.0.0.0:0");
        assert_eq!(method, ClusterMethod::MinHash);
        assert_eq!(theta, 0.8);
        assert_eq!(seed, 7);
        assert_eq!(chunk_size, 500);
        assert_eq!(workers, 2);
        assert_eq!(read_timeout_secs, 3);
        assert_eq!(max_body_mb, 8);
        assert_eq!(state_dir.as_deref(), Some("/tmp/hive"));
        assert_eq!(keep, Some(2));
        assert_eq!(
            on_drift,
            vec![
                DriftSinkSpec::Jsonl("/tmp/{tenant}.jsonl".into()),
                DriftSinkSpec::Exec("echo hi".into()),
            ]
        );
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(
            parse(&["serve", "--keep", "2"]).is_err(),
            "--keep without --state-dir"
        );
        assert!(parse(&["serve", "--workers", "0"]).is_err());
        assert!(parse(&["serve", "--read-timeout", "0"]).is_err());
        assert!(
            parse(&["serve", "--stream"]).is_err(),
            "serve has no --stream"
        );
        assert!(parse(&["serve", "--on-drift", "bogus:x"]).is_err());
    }
}
