//! Hand-rolled argument parsing — keeps the CLI dependency-free.

use pg_hive_core::ClusterMethod;

pub const USAGE: &str = "\
pg-hive — hybrid incremental schema discovery for property graphs

USAGE:
  pg-hive discover <graph.pgt> [OPTIONS]   infer the schema of a graph
  pg-hive validate <data.pgt> <reference.pgt> [--loose]
                                           check data against the schema
                                           discovered from a reference graph
  pg-hive stats    <graph.pgt>             structural statistics (Table 2)
  pg-hive help                             this message

DISCOVER OPTIONS:
  --method elsh|minhash    LSH family (default: elsh)
  --theta <0..1>           Jaccard merge threshold (default: 0.9)
  --batches <N>            incremental batches (default: 1 = static)
  --format strict|loose|xsd|summary   output (default: summary)
  --sample                 sample-based datatype inference
  --seed <N>               RNG seed (default: 42)";

/// Output format of `discover`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    Strict,
    Loose,
    Xsd,
    Summary,
}

/// Parsed sub-command.
#[derive(Debug, Clone)]
pub enum Command {
    Discover {
        path: String,
        method: ClusterMethod,
        theta: f64,
        batches: usize,
        format: OutputFormat,
        sample: bool,
        seed: u64,
    },
    Validate {
        data_path: String,
        schema_path: String,
        loose: bool,
    },
    Stats {
        path: String,
    },
    Help,
}

/// Top-level parsed arguments.
#[derive(Debug, Clone)]
pub struct Args {
    pub command: Command,
}

impl Args {
    /// Parse from an iterator of argument strings (without argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut it = args.into_iter();
        let Some(cmd) = it.next() else {
            return Ok(Args {
                command: Command::Help,
            });
        };
        match cmd.as_str() {
            "help" | "--help" | "-h" => Ok(Args {
                command: Command::Help,
            }),
            "stats" => {
                let path = it.next().ok_or("stats needs a graph file")?;
                Ok(Args {
                    command: Command::Stats { path },
                })
            }
            "validate" => {
                let data_path = it.next().ok_or("validate needs a data file")?;
                let schema_path = it.next().ok_or("validate needs a reference file")?;
                let mut loose = false;
                for flag in it {
                    match flag.as_str() {
                        "--loose" => loose = true,
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                Ok(Args {
                    command: Command::Validate {
                        data_path,
                        schema_path,
                        loose,
                    },
                })
            }
            "discover" => {
                let path = it.next().ok_or("discover needs a graph file")?;
                let mut method = ClusterMethod::Elsh;
                let mut theta = 0.9;
                let mut batches = 1usize;
                let mut format = OutputFormat::Summary;
                let mut sample = false;
                let mut seed = 42u64;
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--method" => {
                            method = match it.next().as_deref() {
                                Some("elsh") => ClusterMethod::Elsh,
                                Some("minhash") => ClusterMethod::MinHash,
                                other => {
                                    return Err(format!(
                                        "--method expects elsh|minhash, got {other:?}"
                                    ))
                                }
                            }
                        }
                        "--theta" => {
                            theta = it
                                .next()
                                .ok_or("--theta needs a value")?
                                .parse()
                                .map_err(|e| format!("--theta: {e}"))?;
                            if !(0.0..=1.0).contains(&theta) {
                                return Err("--theta must be in [0, 1]".into());
                            }
                        }
                        "--batches" => {
                            batches = it
                                .next()
                                .ok_or("--batches needs a value")?
                                .parse()
                                .map_err(|e| format!("--batches: {e}"))?;
                            if batches == 0 {
                                return Err("--batches must be >= 1".into());
                            }
                        }
                        "--format" => {
                            format = match it.next().as_deref() {
                                Some("strict") => OutputFormat::Strict,
                                Some("loose") => OutputFormat::Loose,
                                Some("xsd") => OutputFormat::Xsd,
                                Some("summary") => OutputFormat::Summary,
                                other => {
                                    return Err(format!(
                                        "--format expects strict|loose|xsd|summary, got {other:?}"
                                    ))
                                }
                            }
                        }
                        "--sample" => sample = true,
                        "--seed" => {
                            seed = it
                                .next()
                                .ok_or("--seed needs a value")?
                                .parse()
                                .map_err(|e| format!("--seed: {e}"))?;
                        }
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                Ok(Args {
                    command: Command::Discover {
                        path,
                        method,
                        theta,
                        batches,
                        format,
                        sample,
                        seed,
                    },
                })
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn no_args_is_help() {
        assert!(matches!(parse(&[]).unwrap().command, Command::Help));
    }

    #[test]
    fn discover_defaults() {
        let a = parse(&["discover", "g.pgt"]).unwrap();
        let Command::Discover {
            path,
            method,
            theta,
            batches,
            format,
            sample,
            seed,
        } = a.command
        else {
            panic!()
        };
        assert_eq!(path, "g.pgt");
        assert_eq!(method, ClusterMethod::Elsh);
        assert_eq!(theta, 0.9);
        assert_eq!(batches, 1);
        assert_eq!(format, OutputFormat::Summary);
        assert!(!sample);
        assert_eq!(seed, 42);
    }

    #[test]
    fn discover_full_flags() {
        let a = parse(&[
            "discover",
            "g.pgt",
            "--method",
            "minhash",
            "--theta",
            "0.8",
            "--batches",
            "10",
            "--format",
            "strict",
            "--sample",
            "--seed",
            "7",
        ])
        .unwrap();
        let Command::Discover {
            method,
            theta,
            batches,
            format,
            sample,
            seed,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(method, ClusterMethod::MinHash);
        assert_eq!(theta, 0.8);
        assert_eq!(batches, 10);
        assert_eq!(format, OutputFormat::Strict);
        assert!(sample);
        assert_eq!(seed, 7);
    }

    #[test]
    fn invalid_theta_rejected() {
        assert!(parse(&["discover", "g", "--theta", "1.5"]).is_err());
        assert!(parse(&["discover", "g", "--theta", "nope"]).is_err());
    }

    #[test]
    fn zero_batches_rejected() {
        assert!(parse(&["discover", "g", "--batches", "0"]).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        assert!(parse(&["discover", "g", "--frobnicate"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
    }

    #[test]
    fn validate_parses() {
        let a = parse(&["validate", "d.pgt", "s.pgt", "--loose"]).unwrap();
        let Command::Validate {
            data_path,
            schema_path,
            loose,
        } = a.command
        else {
            panic!()
        };
        assert_eq!(data_path, "d.pgt");
        assert_eq!(schema_path, "s.pgt");
        assert!(loose);
    }

    #[test]
    fn stats_parses() {
        let a = parse(&["stats", "g.pgt"]).unwrap();
        assert!(matches!(a.command, Command::Stats { .. }));
    }
}
