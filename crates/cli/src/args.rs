//! Hand-rolled argument parsing — keeps the CLI dependency-free.

use pg_hive_core::ClusterMethod;

pub const USAGE: &str = "\
pg-hive — hybrid incremental schema discovery for property graphs

USAGE:
  pg-hive discover <input> [OPTIONS]       infer the schema of a graph
  pg-hive validate <data.pgt> <reference.pgt> [--loose]
                                           check data against the schema
                                           discovered from a reference graph
  pg-hive stats    <input> [OPTIONS]       structural statistics (Table 2)
  pg-hive help                             this message

INPUT FORMATS (discover, stats):
  --input-format pgt|csv|jsonl  (default: pgt)
     pgt    line-oriented text graph (<input> is a .pgt file)
     csv    <input> is a directory holding nodes.csv (+ optional edges.csv):
            headers `id,labels,<key>,...` / `src,tgt,labels,<key>,...`,
            `;`-separated labels, empty cell = absent property
     jsonl  one JSON object per line: {\"type\":\"node\",\"id\":...,
            \"labels\":[...],\"props\":{...}} / {\"type\":\"edge\",\"src\":...}

STREAMING (discover, stats):
  --stream                 process the input in independent chunks with
                           O(chunk) resident memory (discovery merges
                           per-chunk schemas, §4.6); cross-chunk edges are
                           resolved through a compact id→labels registry
                           and reported as warnings
  --chunk-size <N>         elements per chunk (default: 100000)

DISCOVER OPTIONS:
  --method elsh|minhash    LSH family (default: elsh)
  --theta <0..1>           Jaccard merge threshold (default: 0.9)
  --batches <N>            incremental batches (default: 1 = static;
                           incompatible with --stream)
  --format strict|loose|xsd|summary   output (default: summary)
  --sample                 sample-based datatype inference
  --seed <N>               RNG seed (default: 42)";

/// Output format of `discover`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    Strict,
    Loose,
    Xsd,
    Summary,
}

/// Wire format of the graph input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputFormat {
    #[default]
    Pgt,
    Csv,
    Jsonl,
}

impl InputFormat {
    fn parse(s: Option<&str>) -> Result<Self, String> {
        match s {
            Some("pgt") => Ok(InputFormat::Pgt),
            Some("csv") => Ok(InputFormat::Csv),
            Some("jsonl") => Ok(InputFormat::Jsonl),
            other => Err(format!(
                "--input-format expects pgt|csv|jsonl, got {other:?}"
            )),
        }
    }
}

/// Default `--chunk-size`.
pub const DEFAULT_CHUNK_SIZE: usize = 100_000;

/// Parsed sub-command.
#[derive(Debug, Clone)]
pub enum Command {
    Discover {
        path: String,
        method: ClusterMethod,
        theta: f64,
        batches: usize,
        format: OutputFormat,
        sample: bool,
        seed: u64,
        input_format: InputFormat,
        stream: bool,
        chunk_size: usize,
    },
    Validate {
        data_path: String,
        schema_path: String,
        loose: bool,
    },
    Stats {
        path: String,
        input_format: InputFormat,
        stream: bool,
    },
    Help,
}

/// Top-level parsed arguments.
#[derive(Debug, Clone)]
pub struct Args {
    pub command: Command,
}

impl Args {
    /// Parse from an iterator of argument strings (without argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut it = args.into_iter();
        let Some(cmd) = it.next() else {
            return Ok(Args {
                command: Command::Help,
            });
        };
        match cmd.as_str() {
            "help" | "--help" | "-h" => Ok(Args {
                command: Command::Help,
            }),
            "stats" => {
                let path = it.next().ok_or("stats needs a graph file")?;
                let mut input_format = InputFormat::Pgt;
                let mut stream = false;
                let mut chunk_size = DEFAULT_CHUNK_SIZE;
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--input-format" => {
                            input_format = InputFormat::parse(it.next().as_deref())?;
                        }
                        "--stream" => stream = true,
                        "--chunk-size" => {
                            chunk_size = parse_chunk_size(it.next())?;
                        }
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                // Streaming stats folds records directly; chunk size is
                // accepted for symmetry but has no effect.
                let _ = chunk_size;
                Ok(Args {
                    command: Command::Stats {
                        path,
                        input_format,
                        stream,
                    },
                })
            }
            "validate" => {
                let data_path = it.next().ok_or("validate needs a data file")?;
                let schema_path = it.next().ok_or("validate needs a reference file")?;
                let mut loose = false;
                for flag in it {
                    match flag.as_str() {
                        "--loose" => loose = true,
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                Ok(Args {
                    command: Command::Validate {
                        data_path,
                        schema_path,
                        loose,
                    },
                })
            }
            "discover" => {
                let path = it.next().ok_or("discover needs a graph file")?;
                let mut method = ClusterMethod::Elsh;
                let mut theta = 0.9;
                let mut batches = 1usize;
                let mut format = OutputFormat::Summary;
                let mut sample = false;
                let mut seed = 42u64;
                let mut input_format = InputFormat::Pgt;
                let mut stream = false;
                let mut chunk_size = DEFAULT_CHUNK_SIZE;
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--method" => {
                            method = match it.next().as_deref() {
                                Some("elsh") => ClusterMethod::Elsh,
                                Some("minhash") => ClusterMethod::MinHash,
                                other => {
                                    return Err(format!(
                                        "--method expects elsh|minhash, got {other:?}"
                                    ))
                                }
                            }
                        }
                        "--theta" => {
                            theta = it
                                .next()
                                .ok_or("--theta needs a value")?
                                .parse()
                                .map_err(|e| format!("--theta: {e}"))?;
                            if !(0.0..=1.0).contains(&theta) {
                                return Err("--theta must be in [0, 1]".into());
                            }
                        }
                        "--batches" => {
                            batches = it
                                .next()
                                .ok_or("--batches needs a value")?
                                .parse()
                                .map_err(|e| format!("--batches: {e}"))?;
                            if batches == 0 {
                                return Err("--batches must be >= 1".into());
                            }
                        }
                        "--format" => {
                            format = match it.next().as_deref() {
                                Some("strict") => OutputFormat::Strict,
                                Some("loose") => OutputFormat::Loose,
                                Some("xsd") => OutputFormat::Xsd,
                                Some("summary") => OutputFormat::Summary,
                                other => {
                                    return Err(format!(
                                        "--format expects strict|loose|xsd|summary, got {other:?}"
                                    ))
                                }
                            }
                        }
                        "--sample" => sample = true,
                        "--seed" => {
                            seed = it
                                .next()
                                .ok_or("--seed needs a value")?
                                .parse()
                                .map_err(|e| format!("--seed: {e}"))?;
                        }
                        "--input-format" => {
                            input_format = InputFormat::parse(it.next().as_deref())?;
                        }
                        "--stream" => stream = true,
                        "--chunk-size" => {
                            chunk_size = parse_chunk_size(it.next())?;
                        }
                        other => return Err(format!("unknown flag '{other}'")),
                    }
                }
                if stream && batches > 1 {
                    return Err("--stream and --batches are incompatible: streaming chunks \
                         are the batches"
                        .into());
                }
                Ok(Args {
                    command: Command::Discover {
                        path,
                        method,
                        theta,
                        batches,
                        format,
                        sample,
                        seed,
                        input_format,
                        stream,
                        chunk_size,
                    },
                })
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn parse_chunk_size(arg: Option<String>) -> Result<usize, String> {
    let n: usize = arg
        .ok_or("--chunk-size needs a value")?
        .parse()
        .map_err(|e| format!("--chunk-size: {e}"))?;
    if n == 0 {
        return Err("--chunk-size must be >= 1".into());
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn no_args_is_help() {
        assert!(matches!(parse(&[]).unwrap().command, Command::Help));
    }

    #[test]
    fn discover_defaults() {
        let a = parse(&["discover", "g.pgt"]).unwrap();
        let Command::Discover {
            path,
            method,
            theta,
            batches,
            format,
            sample,
            seed,
            input_format,
            stream,
            chunk_size,
        } = a.command
        else {
            panic!()
        };
        assert_eq!(path, "g.pgt");
        assert_eq!(method, ClusterMethod::Elsh);
        assert_eq!(theta, 0.9);
        assert_eq!(batches, 1);
        assert_eq!(format, OutputFormat::Summary);
        assert!(!sample);
        assert_eq!(seed, 42);
        assert_eq!(input_format, InputFormat::Pgt);
        assert!(!stream);
        assert_eq!(chunk_size, DEFAULT_CHUNK_SIZE);
    }

    #[test]
    fn discover_full_flags() {
        let a = parse(&[
            "discover",
            "g.pgt",
            "--method",
            "minhash",
            "--theta",
            "0.8",
            "--batches",
            "10",
            "--format",
            "strict",
            "--sample",
            "--seed",
            "7",
        ])
        .unwrap();
        let Command::Discover {
            method,
            theta,
            batches,
            format,
            sample,
            seed,
            ..
        } = a.command
        else {
            panic!()
        };
        assert_eq!(method, ClusterMethod::MinHash);
        assert_eq!(theta, 0.8);
        assert_eq!(batches, 10);
        assert_eq!(format, OutputFormat::Strict);
        assert!(sample);
        assert_eq!(seed, 7);
    }

    #[test]
    fn discover_streaming_flags() {
        let a = parse(&[
            "discover",
            "dump",
            "--stream",
            "--chunk-size",
            "5000",
            "--input-format",
            "csv",
        ])
        .unwrap();
        let Command::Discover {
            stream,
            chunk_size,
            input_format,
            ..
        } = a.command
        else {
            panic!()
        };
        assert!(stream);
        assert_eq!(chunk_size, 5000);
        assert_eq!(input_format, InputFormat::Csv);
    }

    #[test]
    fn stream_excludes_batches() {
        assert!(parse(&["discover", "g", "--stream", "--batches", "4"]).is_err());
        assert!(parse(&["discover", "g", "--stream", "--batches", "1"]).is_ok());
    }

    #[test]
    fn chunk_size_validated() {
        assert!(parse(&["discover", "g", "--chunk-size", "0"]).is_err());
        assert!(parse(&["discover", "g", "--chunk-size", "nope"]).is_err());
        assert!(parse(&["stats", "g", "--chunk-size", "0"]).is_err());
    }

    #[test]
    fn input_format_validated() {
        assert!(parse(&["discover", "g", "--input-format", "xml"]).is_err());
        assert!(parse(&["stats", "g", "--input-format", "jsonl"]).is_ok());
    }

    #[test]
    fn invalid_theta_rejected() {
        assert!(parse(&["discover", "g", "--theta", "1.5"]).is_err());
        assert!(parse(&["discover", "g", "--theta", "nope"]).is_err());
    }

    #[test]
    fn zero_batches_rejected() {
        assert!(parse(&["discover", "g", "--batches", "0"]).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        assert!(parse(&["discover", "g", "--frobnicate"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
    }

    #[test]
    fn validate_parses() {
        let a = parse(&["validate", "d.pgt", "s.pgt", "--loose"]).unwrap();
        let Command::Validate {
            data_path,
            schema_path,
            loose,
        } = a.command
        else {
            panic!()
        };
        assert_eq!(data_path, "d.pgt");
        assert_eq!(schema_path, "s.pgt");
        assert!(loose);
    }

    #[test]
    fn stats_parses() {
        let a = parse(&["stats", "g.pgt", "--stream"]).unwrap();
        let Command::Stats { stream: true, .. } = a.command else {
            panic!()
        };
    }
}
