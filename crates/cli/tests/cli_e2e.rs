//! End-to-end tests of the `pg-hive` binary via `CARGO_BIN_EXE`.

use std::io::Write;
use std::process::Command;

const DEMO: &str = "\
N a Person name=Ann,age=30
N b Person name=Bob,age=40
N c - name=Cid,age=50
N o Org url=x.com
E a o WORKS_AT from=2001
E b o WORKS_AT from=2002
";

fn write_temp(content: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "pg-hive-e2e-{}-{}.pgt",
        std::process::id(),
        content.len()
    ));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_pg-hive"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn discover_summary() {
    let path = write_temp(DEMO);
    let (stdout, _, code) = run(&["discover", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("2 node types"), "{stdout}");
    assert!(
        stdout.contains("node {Person} x3"),
        "unlabeled Cid merged: {stdout}"
    );
    assert!(stdout.contains("edge {WORKS_AT} x2"));
}

#[test]
fn discover_strict_schema() {
    let path = write_temp(DEMO);
    let (stdout, _, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--format",
        "strict",
        "--method",
        "minhash",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("STRICT"));
    assert!(stdout.contains("age INT"), "{stdout}");
}

#[test]
fn discover_xsd() {
    let path = write_temp(DEMO);
    let (stdout, _, code) = run(&["discover", path.to_str().unwrap(), "--format", "xsd"]);
    assert_eq!(code, Some(0));
    assert!(stdout.starts_with("<?xml"));
    assert!(stdout.contains("xs:complexType"));
}

#[test]
fn validate_self_passes_and_mismatch_fails() {
    // Strict validation types elements by label set, so the reference must
    // be fully labeled (the unlabeled node in DEMO merges into Person at
    // discovery time but cannot be strictly matched as raw data).
    let labeled = DEMO.replace("N c - ", "N c Person ");
    let path = write_temp(&labeled);
    let (stdout, _, code) = run(&["validate", path.to_str().unwrap(), path.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("valid"));

    let bad = write_temp("N z Alien tentacles=7\n");
    let (stdout, _, code) = run(&["validate", bad.to_str().unwrap(), path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("violation"), "{stdout}");
}

#[test]
fn stats_counts() {
    let path = write_temp(DEMO);
    let (stdout, _, code) = run(&["stats", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("nodes:          4"));
    assert!(stdout.contains("edges:          2"));
}

#[test]
fn bad_usage_exits_2() {
    let (_, stderr, code) = run(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_file_is_an_error() {
    let (_, stderr, code) = run(&["discover", "/nonexistent/x.pgt"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let (stdout, _, code) = run(&["help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("USAGE"));
}
