//! End-to-end tests of the `pg-hive` binary via `CARGO_BIN_EXE`.

use std::io::Write;
use std::process::Command;

const DEMO: &str = "\
N a Person name=Ann,age=30
N b Person name=Bob,age=40
N c - name=Cid,age=50
N o Org url=x.com
E a o WORKS_AT from=2001
E b o WORKS_AT from=2002
";

fn write_temp(content: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "pg-hive-e2e-{}-{}.pgt",
        std::process::id(),
        content.len()
    ));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_pg-hive"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn discover_summary() {
    let path = write_temp(DEMO);
    let (stdout, _, code) = run(&["discover", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("2 node types"), "{stdout}");
    assert!(
        stdout.contains("node {Person} x3"),
        "unlabeled Cid merged: {stdout}"
    );
    assert!(stdout.contains("edge {WORKS_AT} x2"));
}

#[test]
fn discover_strict_schema() {
    let path = write_temp(DEMO);
    let (stdout, _, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--format",
        "strict",
        "--method",
        "minhash",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("STRICT"));
    assert!(stdout.contains("age INT"), "{stdout}");
}

#[test]
fn discover_xsd() {
    let path = write_temp(DEMO);
    let (stdout, _, code) = run(&["discover", path.to_str().unwrap(), "--format", "xsd"]);
    assert_eq!(code, Some(0));
    assert!(stdout.starts_with("<?xml"));
    assert!(stdout.contains("xs:complexType"));
}

#[test]
fn validate_self_passes_and_mismatch_fails() {
    // `validate <schema> <input>`: here the schema argument is a reference
    // input, discovered on the fly. Streaming validation types elements by
    // label set, so the reference must be fully labeled (the unlabeled
    // node in DEMO merges into Person at discovery time but cannot be
    // strictly matched as raw data).
    let labeled = DEMO.replace("N c - ", "N c Person ");
    let path = write_temp(&labeled);
    let (stdout, _, code) = run(&["validate", path.to_str().unwrap(), path.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("valid"), "{stdout}");

    // A foreign record fails with exit-code symmetry to `diff`.
    let mut mutated = labeled.clone();
    mutated.push_str("N z Alien tentacles=7\n");
    let bad = write_temp(&mutated);
    let (stdout, _, code) = run(&["validate", path.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("violation"), "{stdout}");
    assert!(stdout.contains("unknown-node-labels"), "{stdout}");
}

#[test]
fn validate_snapshot_schema_report_and_max_violations() {
    // Schema from a saved snapshot instead of re-discovering the reference.
    let labeled = DEMO.replace("N c - ", "N c Person ");
    let data = write_temp_named("validate-snap-data", &labeled);
    let snap = write_temp_named("validate-snap", "placeholder");
    let (_, stderr, code) = run(&[
        "discover",
        data.to_str().unwrap(),
        "--stream",
        "--save-state",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");

    let (stdout, stderr, code) = run(&["validate", snap.to_str().unwrap(), data.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(stderr.contains("schema from snapshot"), "{stderr}");
    assert!(stdout.contains("valid"), "{stdout}");

    // Two injected defects, capped at one: early exit, and the jsonl
    // report carries exactly the reported violation as a structured event.
    let mut mutated = labeled.clone();
    mutated.push_str("N z Alien tentacles=7\nN y Alien tentacles=9\n");
    let bad = write_temp_named("validate-snap-bad", &mutated);
    let report = std::env::temp_dir().join(format!(
        "pg-hive-e2e-{}-validate-report.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&report);
    let (stdout, stderr, code) = run(&[
        "validate",
        snap.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--max-violations",
        "1",
        "--report",
        &format!("jsonl:{}", report.display()),
    ]);
    assert_eq!(code, Some(1), "{stdout}{stderr}");
    assert!(stderr.contains("stopped early"), "{stderr}");
    let events = std::fs::read_to_string(&report).unwrap();
    let lines: Vec<&str> = events.lines().collect();
    assert_eq!(
        lines.len(),
        1,
        "one capped violation -> one event: {events}"
    );
    assert!(
        lines[0].contains("\"event\":\"schema-violation\""),
        "{events}"
    );
    assert!(
        lines[0].contains("\"category\":\"unknown-node-labels\""),
        "{events}"
    );
}

#[test]
fn validate_accepts_directory_trees_with_cross_file_edges() {
    // Nodes and edges land in different shards of the tree: endpoint
    // checks must resolve across files via the deferred-edge buffer.
    let dir = write_temp_dir(
        "validate-tree",
        &[
            (
                "nodes.pgt",
                "N a Person name=Ann,age=30\nN o Org url=x.com\n",
            ),
            ("edges.pgt", "E a o WORKS_AT from=2001\n"),
        ],
    );
    let (stdout, stderr, code) = run(&["validate", dir.to_str().unwrap(), dir.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(stdout.contains("valid"), "{stdout}");

    // A ghost endpoint inside the tree is a dangling-endpoint violation.
    let broken = write_temp_dir(
        "validate-tree-broken",
        &[
            (
                "nodes.pgt",
                "N a Person name=Ann,age=30\nN o Org url=x.com\n",
            ),
            ("edges.pgt", "E a ghost WORKS_AT from=2001\n"),
        ],
    );
    let (stdout, _, code) = run(&["validate", dir.to_str().unwrap(), broken.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("dangling-endpoint"), "{stdout}");
}

#[test]
fn stats_counts() {
    let path = write_temp(DEMO);
    let (stdout, _, code) = run(&["stats", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("nodes:          4"));
    assert!(stdout.contains("edges:          2"));
}

fn write_temp_dir(name: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("pg-hive-e2e-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (file, content) in files {
        std::fs::write(dir.join(file), content).unwrap();
    }
    dir
}

const NODES_CSV: &str = "\
id,labels,name,age,url
a,Person,Ann,30,
b,Person,Bob,40,
c,,Cid,50,
o,Org,,,x.com
";

const EDGES_CSV: &str = "\
src,tgt,labels,from
a,o,WORKS_AT,2001
b,o,WORKS_AT,2002
";

#[test]
fn discover_csv_matches_pgt_inventory() {
    let dir = write_temp_dir("csv", &[("nodes.csv", NODES_CSV), ("edges.csv", EDGES_CSV)]);
    let (stdout, _, code) = run(&["discover", dir.to_str().unwrap(), "--input-format", "csv"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("node {Person} x3"), "{stdout}");
    assert!(stdout.contains("node {Org} x1"), "{stdout}");
    assert!(stdout.contains("edge {WORKS_AT} x2"), "{stdout}");
}

#[test]
fn discover_stream_reports_chunks_and_same_inventory() {
    let dir = write_temp_dir(
        "csv-stream",
        &[("nodes.csv", NODES_CSV), ("edges.csv", EDGES_CSV)],
    );
    let (stdout, stderr, code) = run(&[
        "discover",
        dir.to_str().unwrap(),
        "--input-format",
        "csv",
        "--stream",
        "--chunk-size",
        "3",
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("chunk 1:"), "{stderr}");
    assert!(stdout.contains("peak resident"), "{stdout}");
    // Same labeled-type inventory as the non-streaming run.
    assert!(stdout.contains("node {Person}"), "{stdout}");
    assert!(stdout.contains("node {Org}"), "{stdout}");
    assert!(stdout.contains("edge {WORKS_AT} x2"), "{stdout}");
}

#[test]
fn discover_jsonl_input() {
    let jsonl = "\
{\"type\":\"node\",\"id\":\"a\",\"labels\":[\"Person\"],\"props\":{\"name\":\"Ann\",\"age\":30}}
{\"type\":\"node\",\"id\":\"o\",\"labels\":[\"Org\"],\"props\":{\"url\":\"x.com\"}}
{\"type\":\"edge\",\"src\":\"a\",\"tgt\":\"o\",\"labels\":[\"WORKS_AT\"],\"props\":{\"from\":2001}}
";
    let mut path = std::env::temp_dir();
    path.push(format!("pg-hive-e2e-{}.jsonl", std::process::id()));
    std::fs::write(&path, jsonl).unwrap();
    let (stdout, _, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--input-format",
        "jsonl",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("node {Person} x1"), "{stdout}");
    assert!(stdout.contains("edge {WORKS_AT} x1"), "{stdout}");
}

#[test]
fn stats_stream_matches_resident() {
    let dir = write_temp_dir(
        "csv-stats",
        &[("nodes.csv", NODES_CSV), ("edges.csv", EDGES_CSV)],
    );
    let (resident, _, code) = run(&["stats", dir.to_str().unwrap(), "--input-format", "csv"]);
    assert_eq!(code, Some(0));
    let (streamed, _, code) = run(&[
        "stats",
        dir.to_str().unwrap(),
        "--input-format",
        "csv",
        "--stream",
    ]);
    assert_eq!(code, Some(0));
    assert_eq!(resident, streamed, "streaming stats must agree");
    assert!(streamed.contains("nodes:          4"), "{streamed}");
}

#[test]
fn stream_pgt_with_forward_edge_references() {
    // Regression companion to the loader fix: edges before nodes work in
    // both the resident and the streaming path.
    let reordered = "\
E a o WORKS_AT from=2001
N a Person name=Ann,age=30
N o Org url=x.com
";
    let path = write_temp(reordered);
    let (stdout, _, code) = run(&["discover", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("edge {WORKS_AT} x1"), "{stdout}");
    let (stdout, _, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--stream",
        "--chunk-size",
        "2",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("edge {WORKS_AT} x1"), "{stdout}");
}

#[test]
fn discover_stream_parallel_matches_serial_output() {
    // The pipeline-parallel engine must print the same schema for any
    // --threads / --read-ahead combination.
    let mut big = String::new();
    for i in 0..60 {
        big.push_str(&format!("N p{i} Person name=p{i},age={}\n", 20 + i));
    }
    for i in 0..6 {
        big.push_str(&format!("N o{i} Org url=o{i}.com\n"));
    }
    for i in 0..60 {
        big.push_str(&format!("E p{i} o{} WORKS_AT from=200{}\n", i % 6, i % 10));
    }
    let path = write_temp(&big);
    let serial = run(&[
        "discover",
        path.to_str().unwrap(),
        "--stream",
        "--chunk-size",
        "10",
        "--threads",
        "1",
        "--format",
        "strict",
    ]);
    assert_eq!(serial.2, Some(0), "{}", serial.1);
    for (threads, read_ahead) in [("2", "1"), ("4", "3")] {
        let par = run(&[
            "discover",
            path.to_str().unwrap(),
            "--stream",
            "--chunk-size",
            "10",
            "--threads",
            threads,
            "--read-ahead",
            read_ahead,
            "--format",
            "strict",
        ]);
        assert_eq!(par.2, Some(0), "{}", par.1);
        assert_eq!(par.0, serial.0, "threads={threads} diverged from serial");
    }
}

#[test]
fn diff_reports_changes_and_exit_codes() {
    let old = write_temp(DEMO);
    let (stdout, _, code) = run(&["diff", old.to_str().unwrap(), old.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("no schema changes"), "{stdout}");

    let evolved = format!("{DEMO}N p Place name=GR\nE o p LOCATED_IN -\n");
    let new = write_temp(&evolved);
    let (stdout, _, code) = run(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("+ node type Place"), "{stdout}");
    assert!(stdout.contains("+ edge type LOCATED_IN"), "{stdout}");
    assert!(stdout.contains("monotone"), "{stdout}");

    // Streaming diff agrees.
    let (streamed, stderr, code) = run(&[
        "diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--stream",
        "--chunk-size",
        "4",
        "--threads",
        "2",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(streamed.contains("+ node type Place"), "{streamed}");
}

/// A uniquely named temp file — for tests that must own their file
/// exclusively (the watch tests keep it open across >1 s while other
/// tests recreate the shared `write_temp(DEMO)` path concurrently).
fn write_temp_named(name: &str, content: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("pg-hive-e2e-{}-{name}.pgt", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn watch_once_without_changes_matches_discover_stream_schema() {
    let path = write_temp_named("watch-stable", DEMO);
    let (discover_out, _, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--stream",
        "--chunk-size",
        "3",
        "--format",
        "strict",
    ]);
    assert_eq!(code, Some(0));
    let (watch_out, watch_err, code) = run(&[
        "watch",
        path.to_str().unwrap(),
        "--once",
        "--interval",
        "1",
        "--chunk-size",
        "3",
    ]);
    assert_eq!(code, Some(0), "no drift on an unchanged file: {watch_err}");
    assert!(watch_out.contains("no schema drift"), "{watch_out}");
    // The final schema watch emits is byte-identical to the streaming
    // discover path — both finalize the same canonical SchemaState.
    let schema_part = &watch_out[watch_out.find("CREATE GRAPH TYPE").expect("schema emitted")..];
    assert_eq!(schema_part, discover_out, "watch diverged from discover");
}

#[test]
fn watch_once_detects_appended_drift_with_exit_1() {
    use std::io::Read;
    let path = write_temp_named("watch-drift", DEMO);
    // Spawn watch with captured pipes and append only after its stderr
    // shows the baseline pass finished — no fixed-sleep race against
    // process startup on a loaded machine.
    let mut child = Command::new(env!("CARGO_BIN_EXE_pg-hive"))
        .args([
            "watch",
            path.to_str().unwrap(),
            "--once",
            "--interval",
            "1",
            "--chunk-size",
            "4",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut child_err = child.stderr.take().unwrap();
    let mut stderr = String::new();
    let mut byte = [0u8; 1];
    while !stderr.contains("baseline") {
        assert_ne!(
            child_err.read(&mut byte).expect("stderr readable"),
            0,
            "watch exited before printing a baseline: {stderr}"
        );
        stderr.push(byte[0] as char);
    }
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(b"N p Place name=GR\nE o p LOCATED_IN since=2020\n")
        .unwrap();
    drop(f);
    let out = child.wait_with_output().expect("watch terminates");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let mut rest = String::new();
    child_err.read_to_string(&mut rest).unwrap();
    stderr.push_str(&rest);
    assert_eq!(
        out.status.code(),
        Some(1),
        "drift must exit 1: {stderr}\n{stdout}"
    );
    assert!(stdout.contains("schema drift detected"), "{stdout}");
    assert!(stdout.contains("monotone"), "{stdout}");
    assert!(stdout.contains("+ node type Place"), "{stdout}");
    assert!(stdout.contains("+ edge type LOCATED_IN"), "{stdout}");
    // The appended edge references node `o` from the baseline pass: the
    // carried registry resolves it instead of dropping it.
    assert!(
        stderr.contains("cross-chunk edge"),
        "cross-pass edge resolved through the registry: {stderr}"
    );
}

#[test]
fn watch_and_diff_reject_empty_or_header_only_input() {
    // Regression: an empty / CSV header-only input used to discover a
    // legitimate-looking empty schema; it must be a *named* error.
    let empty = write_temp("# nothing but a comment\n");
    let (_, stderr, code) = run(&[
        "watch",
        empty.to_str().unwrap(),
        "--once",
        "--interval",
        "1",
    ]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("empty input:"), "{stderr}");

    let full = write_temp(DEMO);
    for order in [
        [empty.to_str().unwrap(), full.to_str().unwrap()],
        [full.to_str().unwrap(), empty.to_str().unwrap()],
    ] {
        let (_, stderr, code) = run(&["diff", order[0], order[1]]);
        assert_eq!(code, Some(1), "{stderr}");
        assert!(stderr.contains("empty input:"), "{stderr}");
        // Streaming diff raises the same named error.
        let (_, stderr, code) = run(&["diff", order[0], order[1], "--stream"]);
        assert_eq!(code, Some(1), "{stderr}");
        assert!(stderr.contains("empty input:"), "{stderr}");
    }

    let header_only = write_temp_dir("csv-header-only", &[("nodes.csv", "id,labels,name\n")]);
    let (_, stderr, code) = run(&[
        "watch",
        header_only.to_str().unwrap(),
        "--input-format",
        "csv",
        "--once",
        "--interval",
        "1",
    ]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("empty input:"), "{stderr}");
}

#[test]
fn zero_thread_flags_rejected_with_usage() {
    for flags in [
        &["discover", "g.pgt", "--threads", "0"][..],
        &["discover", "g.pgt", "--read-ahead", "0"],
        &["discover", "g.pgt", "--chunk-size", "0"],
        &["stats", "g.pgt", "--threads", "0"],
        &["diff", "a.pgt", "b.pgt", "--read-ahead", "0"],
    ] {
        let (_, stderr, code) = run(flags);
        assert_eq!(code, Some(2), "{flags:?}");
        assert!(stderr.contains("must be >= 1"), "{flags:?}: {stderr}");
    }
}

#[test]
fn stream_and_batches_conflict() {
    let (_, stderr, code) = run(&["discover", "g.pgt", "--stream", "--batches", "3"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("incompatible"), "{stderr}");
}

#[test]
fn bad_usage_exits_2() {
    let (_, stderr, code) = run(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_file_is_an_error() {
    let (_, stderr, code) = run(&["discover", "/nonexistent/x.pgt"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let (stdout, _, code) = run(&["help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("USAGE"));
}

// ---------------------------------------------------------------------------
// Snapshot persistence: discover --save-state/--load-state, durable watch
// (--state-dir), drift sinks, and the named snapshot: error guarantees.
// ---------------------------------------------------------------------------

/// A uniquely named temp directory for state-dir tests.
fn temp_dir_named(name: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("pg-hive-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn discover_save_then_load_state_reproduces_the_exact_schema() {
    let data = write_temp_named("save-load-data", DEMO);
    let empty = write_temp_named("save-load-empty", "");
    let snap = write_temp_named("save-load", "placeholder");
    // Save the state of a streamed discovery...
    let (saved_out, stderr, code) = run(&[
        "discover",
        data.to_str().unwrap(),
        "--stream",
        "--format",
        "strict",
        "--save-state",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("state saved to"), "{stderr}");
    // ...then resume it over an *empty* input: the loaded state alone must
    // finalize byte-identically to the run that saved it.
    let (resumed_out, stderr, code) = run(&[
        "discover",
        empty.to_str().unwrap(),
        "--stream",
        "--format",
        "strict",
        "--load-state",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("resuming from"), "{stderr}");
    assert_eq!(
        resumed_out, saved_out,
        "save -> load round trip is lossless"
    );
}

#[test]
fn load_state_resolves_cross_run_edges_through_the_saved_registry() {
    // Part 1 declares the nodes; part 2 holds only edges referencing them.
    // Without the persisted id -> label-set registry those edges would be
    // dropped as dangling; with it they resolve as stub-endpoint edges.
    let part1 = write_temp_named("state-part1", "N a Person name=Ann\nN o Org url=x.com\n");
    let part2 = write_temp_named("state-part2", "E a o WORKS_AT from=2001\n");
    let snap = write_temp_named("state-parts", "placeholder");
    let (_, stderr, code) = run(&[
        "discover",
        part1.to_str().unwrap(),
        "--stream",
        "--save-state",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    let (stdout, stderr, code) = run(&[
        "discover",
        part2.to_str().unwrap(),
        "--stream",
        "--format",
        "summary",
        "--load-state",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("edge {WORKS_AT} x1"), "{stdout}");
    assert!(stderr.contains("cross-chunk edge"), "{stderr}");
}

#[test]
fn corrupt_truncated_and_future_version_snapshots_are_named_errors() {
    let data = write_temp_named("snap-errors-data", DEMO);
    let snap = write_temp_named("snap-errors", "placeholder");
    let (_, _, code) = run(&[
        "discover",
        data.to_str().unwrap(),
        "--stream",
        "--save-state",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    let pristine = std::fs::read_to_string(&snap).unwrap();
    let load = |path: &std::path::Path| {
        run(&[
            "discover",
            data.to_str().unwrap(),
            "--stream",
            "--load-state",
            path.to_str().unwrap(),
        ])
    };

    // Corrupt: flip one payload byte.
    std::fs::write(&snap, pristine.replacen("theta", "thetb", 1)).unwrap();
    let (_, stderr, code) = load(&snap);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("snapshot:"), "{stderr}");
    assert!(stderr.contains("checksum"), "{stderr}");

    // Truncated: cut the file short.
    std::fs::write(&snap, &pristine[..pristine.len() / 2]).unwrap();
    let (_, stderr, code) = load(&snap);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("snapshot:"), "{stderr}");

    // Future format version: refuse, do not misparse.
    std::fs::write(
        &snap,
        pristine.replacen("pg-hive-snapshot 1", "pg-hive-snapshot 999", 1),
    )
    .unwrap();
    let (_, stderr, code) = load(&snap);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("version 999"), "{stderr}");

    // Not a snapshot at all.
    std::fs::write(&snap, "N a Person -\n").unwrap();
    let (_, stderr, code) = load(&snap);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("not a pg-hive snapshot"), "{stderr}");
}

#[test]
fn incompatible_snapshot_config_is_refused_with_the_field_named() {
    let data = write_temp_named("snap-config-data", DEMO);
    let snap = write_temp_named("snap-config", "placeholder");
    let (_, _, code) = run(&[
        "discover",
        data.to_str().unwrap(),
        "--stream",
        "--save-state",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    for (extra, field) in [
        (&["--seed", "7"][..], "seed"),
        (&["--theta", "0.5"], "theta"),
        (&["--method", "minhash"], "method"),
        (&["--chunk-size", "17"], "chunk-size"),
    ] {
        let mut args = vec![
            "discover",
            data.to_str().unwrap(),
            "--stream",
            "--load-state",
            snap.to_str().unwrap(),
        ];
        args.extend(extra);
        let (_, stderr, code) = run(&args);
        assert_eq!(code, Some(1), "{field}: {stderr}");
        assert!(
            stderr.contains("snapshot: incompatible configuration"),
            "{field}: {stderr}"
        );
        assert!(stderr.contains(&format!("{field}=")), "{field}: {stderr}");
    }
}

#[test]
fn save_and_load_state_require_stream_mode() {
    let (_, stderr, code) = run(&["discover", "g.pgt", "--save-state", "s.snap"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("require --stream"), "{stderr}");
}

#[test]
fn durable_watch_resumes_without_spurious_drift_and_alerts_once() {
    let path = write_temp_named("watch-durable", DEMO);
    let dir = temp_dir_named("watch-durable-state");
    let events = dir.join("events.jsonl");
    let watch = |p: &std::path::Path| {
        run(&[
            "watch",
            p.to_str().unwrap(),
            "--once",
            "--interval",
            "1",
            "--chunk-size",
            "3",
            "--state-dir",
            dir.to_str().unwrap(),
            "--on-drift",
            &format!("jsonl:{}", events.display()),
        ])
    };

    // Run 1: fresh baseline + one re-check, checkpoint written, no drift.
    let (out1, err1, code) = watch(&path);
    assert_eq!(code, Some(0), "{err1}");
    assert!(err1.contains("baseline"), "{err1}");
    assert!(dir.join("watch.snapshot").exists());

    // Run 2: no-op restart — resumes from the checkpoint and must NOT fire
    // a spurious drift event (the resumed state finalizes byte-identically
    // to what the killed process last saw).
    let (out2, err2, code) = watch(&path);
    assert_eq!(
        code,
        Some(0),
        "spurious drift on no-op restart: {out2}{err2}"
    );
    assert!(err2.contains("resumed from checkpoint"), "{err2}");
    assert!(!out2.contains("drift detected"), "{out2}");
    assert!(!events.exists(), "no drift -> no events");
    // The resumed final schema matches the fresh run's byte for byte.
    let schema1 = &out1[out1.find("CREATE GRAPH TYPE").unwrap()..];
    let schema2 = &out2[out2.find("CREATE GRAPH TYPE").unwrap()..];
    assert_eq!(schema1, schema2);

    // Append new records *between* runs, then restart: the resumed run
    // ingests only the appended bytes and reports drift exactly once.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(b"N p Place name=GR\nE o p LOCATED_IN since=2020\n")
        .unwrap();
    drop(f);
    let (out3, err3, code) = watch(&path);
    assert_eq!(code, Some(1), "drift must exit 1: {out3}{err3}");
    assert_eq!(out3.matches("schema drift detected").count(), 1, "{out3}");
    assert!(out3.contains("+ node type Place"), "{out3}");
    // The structured event reached the jsonl sink.
    let event_log = std::fs::read_to_string(&events).unwrap();
    assert_eq!(event_log.lines().count(), 1, "{event_log}");
    assert!(
        event_log.contains("\"event\":\"schema-drift\""),
        "{event_log}"
    );
    assert!(event_log.contains("\"monotone\":true"), "{event_log}");
    assert!(event_log.contains("+ node type Place"), "{event_log}");

    // Run 4: another no-op restart after the drift was absorbed — quiet
    // again, and still exactly one recorded event.
    let (out4, _, code) = watch(&path);
    assert_eq!(code, Some(0), "{out4}");
    assert_eq!(std::fs::read_to_string(&events).unwrap().lines().count(), 1);
}

#[test]
fn corrupt_watch_checkpoint_is_a_named_error_not_a_silent_reingest() {
    let path = write_temp_named("watch-corrupt", DEMO);
    let dir = temp_dir_named("watch-corrupt-state");
    let (_, _, code) = run(&[
        "watch",
        path.to_str().unwrap(),
        "--once",
        "--interval",
        "1",
        "--state-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    let snap = dir.join("watch.snapshot");
    let pristine = std::fs::read_to_string(&snap).unwrap();
    std::fs::write(&snap, pristine.replacen("node", "ncde", 1)).unwrap();
    let (_, stderr, code) = run(&[
        "watch",
        path.to_str().unwrap(),
        "--once",
        "--interval",
        "1",
        "--state-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("snapshot:"), "{stderr}");
    assert!(stderr.contains("checksum"), "{stderr}");

    // A checkpoint for a *different* input is refused too.
    std::fs::write(&snap, &pristine).unwrap();
    let other = write_temp_named("watch-corrupt-other", DEMO);
    let (_, stderr, code) = run(&[
        "watch",
        other.to_str().unwrap(),
        "--once",
        "--interval",
        "1",
        "--state-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("snapshot:"), "{stderr}");
    assert!(stderr.contains("saved for input"), "{stderr}");
}

#[test]
fn snapshot_kinds_do_not_cross_load() {
    // A watch checkpoint into discover --load-state would silently ignore
    // the per-file offsets and double-ingest already-checkpointed input;
    // both cross-load directions are named refusals instead.
    let path = write_temp_named("cross-load", DEMO);
    let dir = temp_dir_named("cross-load-state");
    let (_, _, code) = run(&[
        "watch",
        path.to_str().unwrap(),
        "--once",
        "--interval",
        "1",
        "--state-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    let watch_snap = dir.join("watch.snapshot");
    let (_, stderr, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--stream",
        "--load-state",
        watch_snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("snapshot:"), "{stderr}");
    assert!(stderr.contains("watch --state-dir` checkpoint"), "{stderr}");

    // And the converse: a discover save-state has no watch progress.
    let save = write_temp_named("cross-load-save", "placeholder");
    let (_, _, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--stream",
        "--save-state",
        save.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    let dir2 = temp_dir_named("cross-load-state2");
    std::fs::copy(&save, dir2.join("watch.snapshot")).unwrap();
    let (_, stderr, code) = run(&[
        "watch",
        path.to_str().unwrap(),
        "--once",
        "--interval",
        "1",
        "--state-dir",
        dir2.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("no watch progress"), "{stderr}");
}

// ---------------------------------------------------------------------------
// Sharded multi-source discovery, merge-state, and the snapshot lifecycle.
// ---------------------------------------------------------------------------

/// A directory tree of mixed-format inputs with cross-input edges: the CSV
/// and JSONL edges reference nodes declared only in `people.pgt`.
fn mixed_tree(name: &str) -> std::path::PathBuf {
    let dir = temp_dir_named(name);
    std::fs::write(
        dir.join("people.pgt"),
        "N a Person name=Ann,age=30\nN b Person name=Bob,age=40\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("sites.jsonl"),
        "{\"type\":\"node\",\"id\":\"p\",\"labels\":[\"Place\"],\"props\":{\"name\":\"GR\"}}\n\
         {\"type\":\"edge\",\"src\":\"a\",\"tgt\":\"p\",\"labels\":[\"LIVES_IN\"],\"props\":{\"since\":2020}}\n",
    )
    .unwrap();
    let orgs = dir.join("orgs");
    std::fs::create_dir_all(&orgs).unwrap();
    std::fs::write(orgs.join("nodes.csv"), "id,labels,url\no,Org,x.com\n").unwrap();
    std::fs::write(
        orgs.join("edges.csv"),
        "src,tgt,labels,from\na,o,WORKS_AT,2001\nb,o,WORKS_AT,2002\n",
    )
    .unwrap();
    dir
}

#[test]
fn watch_interval_zero_or_garbage_is_a_named_usage_error() {
    // Regression: --interval 0 must be a parse-level refusal naming the
    // flag, not an accepted busy-loop (or a panic on overflow).
    let (_, stderr, code) = run(&["watch", "g.pgt", "--interval", "0"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--interval must be >= 1"), "{stderr}");
    for bad in ["-5", "abc"] {
        let (_, stderr, code) = run(&["watch", "g.pgt", "--interval", bad]);
        assert_eq!(code, Some(2), "--interval {bad}: {stderr}");
        assert!(stderr.contains("--interval"), "--interval {bad}: {stderr}");
    }
}

#[test]
fn sharded_discover_over_a_mixed_tree_is_byte_identical_to_serial() {
    let dir = mixed_tree("shard-tree");
    let discover = |shards: &str| {
        run(&[
            "discover",
            dir.to_str().unwrap(),
            "--stream",
            "--chunk-size",
            "2",
            "--format",
            "strict",
            "--shards",
            shards,
        ])
    };
    let (serial, err, code) = discover("1");
    assert_eq!(code, Some(0), "{err}");
    // Cross-input edges resolved against the merged registry, not dropped.
    assert!(serial.contains("LIVES_IN"), "{serial}");
    assert!(serial.contains("WORKS_AT"), "{serial}");
    for shards in ["2", "3", "5"] {
        let (sharded, err, code) = discover(shards);
        assert_eq!(code, Some(0), "{err}");
        assert_eq!(sharded, serial, "--shards {shards} diverged from serial");
    }
}

#[test]
fn directory_input_without_stream_is_a_named_error() {
    let dir = mixed_tree("tree-no-stream");
    let (_, stderr, code) = run(&["discover", dir.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("requires --stream"), "{stderr}");
    // --shards without --stream is refused at parse time.
    let (_, stderr, code) = run(&["discover", dir.to_str().unwrap(), "--shards", "2"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--shards requires --stream"), "{stderr}");
}

#[test]
fn watch_over_a_directory_tree_matches_sharded_discover() {
    let dir = mixed_tree("watch-tree");
    let (discover_out, err, code) = run(&[
        "discover",
        dir.to_str().unwrap(),
        "--stream",
        "--format",
        "strict",
    ]);
    assert_eq!(code, Some(0), "{err}");
    let (watch_out, watch_err, code) =
        run(&["watch", dir.to_str().unwrap(), "--once", "--interval", "1"]);
    assert_eq!(code, Some(0), "{watch_err}");
    assert!(watch_out.contains("no schema drift"), "{watch_out}");
    let schema_part = &watch_out[watch_out.find("CREATE GRAPH TYPE").expect("schema emitted")..];
    assert_eq!(
        schema_part, discover_out,
        "watch over a tree diverged from sharded discover"
    );
}

#[test]
fn merge_state_folds_split_runs_into_the_one_shot_schema() {
    let full = mixed_tree("merge-full");
    let (one_shot, err, code) = run(&[
        "discover",
        full.to_str().unwrap(),
        "--stream",
        "--format",
        "strict",
    ]);
    assert_eq!(code, Some(0), "{err}");

    // Split the same tree across two independent discover runs...
    let a = temp_dir_named("merge-a");
    std::fs::copy(full.join("people.pgt"), a.join("people.pgt")).unwrap();
    let b = temp_dir_named("merge-b");
    std::fs::copy(full.join("sites.jsonl"), b.join("sites.jsonl")).unwrap();
    let orgs = b.join("orgs");
    std::fs::create_dir_all(&orgs).unwrap();
    std::fs::copy(full.join("orgs").join("nodes.csv"), orgs.join("nodes.csv")).unwrap();
    std::fs::copy(full.join("orgs").join("edges.csv"), orgs.join("edges.csv")).unwrap();
    let snap_a = write_temp_named("merge-snap-a", "placeholder");
    let snap_b = write_temp_named("merge-snap-b", "placeholder");
    for (input, snap) in [(&a, &snap_a), (&b, &snap_b)] {
        let (_, err, code) = run(&[
            "discover",
            input.to_str().unwrap(),
            "--stream",
            "--save-state",
            snap.to_str().unwrap(),
        ]);
        assert_eq!(code, Some(0), "{err}");
    }

    // ...then fold the saved states. All three of b's edges reference
    // people from a's run: they are carried as pending and resolve against
    // the merged registry, and the result is byte-identical to the one-shot
    // run over the whole tree — in either merge order.
    for (name, order) in [
        ("merge-out-ab", [&snap_a, &snap_b]),
        ("merge-out-ba", [&snap_b, &snap_a]),
    ] {
        let out = write_temp_named(name, "placeholder");
        let (merged, err, code) = run(&[
            "merge-state",
            out.to_str().unwrap(),
            order[0].to_str().unwrap(),
            order[1].to_str().unwrap(),
            "--format",
            "strict",
        ]);
        assert_eq!(code, Some(0), "{err}");
        assert!(err.contains("3 carried edge(s) resolved"), "{err}");
        assert_eq!(
            merged, one_shot,
            "merge order {name} diverged from one-shot"
        );
        assert!(out.exists(), "merged snapshot written");
    }
}

#[test]
fn merge_state_refuses_mismatched_configs_and_missing_inputs() {
    let data = write_temp_named("merge-guard-data", DEMO);
    let s1 = write_temp_named("merge-guard-s1", "placeholder");
    let s2 = write_temp_named("merge-guard-s2", "placeholder");
    let (_, _, code) = run(&[
        "discover",
        data.to_str().unwrap(),
        "--stream",
        "--save-state",
        s1.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    let (_, _, code) = run(&[
        "discover",
        data.to_str().unwrap(),
        "--stream",
        "--seed",
        "7",
        "--save-state",
        s2.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));

    // Snapshots written under different configurations name the field.
    let out = write_temp_named("merge-guard-out", "placeholder");
    let (_, stderr, code) = run(&[
        "merge-state",
        out.to_str().unwrap(),
        s1.to_str().unwrap(),
        s2.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(
        stderr.contains("snapshot: incompatible configuration"),
        "{stderr}"
    );
    assert!(stderr.contains("seed="), "{stderr}");

    // No inputs at all is a *named* usage error (regression: this used to
    // surface as a bare run error), so scripts can tell flag misuse from
    // snapshot problems by the exit code and the usage: prefix alike.
    let (_, stderr, code) = run(&["merge-state", out.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("usage: merge-state"), "{stderr}");
    assert!(stderr.contains("at least one input snapshot"), "{stderr}");
}

#[test]
fn watch_keep_rotates_checkpoints_into_a_bounded_chain() {
    let path = write_temp_named("watch-keep", DEMO);
    let dir = temp_dir_named("watch-keep-state");
    let watch = || {
        run(&[
            "watch",
            path.to_str().unwrap(),
            "--once",
            "--interval",
            "1",
            "--state-dir",
            dir.to_str().unwrap(),
            "--keep",
            "2",
        ])
    };
    // Run 1 checkpoints twice (baseline + one pass): the live snapshot
    // plus one rotated slot.
    let (_, err, code) = watch();
    assert_eq!(code, Some(0), "{err}");
    assert!(dir.join("watch.snapshot").exists());
    assert!(dir.join("watch.snapshot.1").exists());
    assert!(!dir.join("watch.snapshot.2").exists());
    // Runs 2 and 3 resume (one more pass each): the chain fills to K=2 and
    // never grows past it.
    let (_, err, code) = watch();
    assert_eq!(code, Some(0), "{err}");
    assert!(dir.join("watch.snapshot.2").exists());
    let (_, err, code) = watch();
    assert_eq!(code, Some(0), "{err}");
    assert!(dir.join("watch.snapshot.1").exists());
    assert!(dir.join("watch.snapshot.2").exists());
    assert!(
        !dir.join("watch.snapshot.3").exists(),
        "--keep 2 must prune the chain"
    );
    // A rotated slot is a loadable snapshot: merge-state accepts it.
    let out = write_temp_named("watch-keep-merged", "placeholder");
    let (_, stderr, code) = run(&[
        "merge-state",
        out.to_str().unwrap(),
        dir.join("watch.snapshot.1").to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");
}

#[test]
fn watch_partition_rolls_are_ordinary_mergeable_states() {
    let path = write_temp_named("watch-partition", DEMO);
    let dir = temp_dir_named("watch-partition-state");
    let (stdout, stderr, code) = run(&[
        "watch",
        path.to_str().unwrap(),
        "--once",
        "--interval",
        "1",
        "--state-dir",
        dir.to_str().unwrap(),
        "--keep",
        "2",
        "--partition",
        "passes:1",
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    // passes:1 rolls after every pass: the baseline partition (all of DEMO)
    // has rotated into slot .2, pass 2's (empty) partition into .1.
    assert!(dir.join("watch.snapshot.1").exists());
    assert!(dir.join("watch.snapshot.2").exists());
    // No drift: the merged window still covers everything ingested.
    assert!(stdout.contains("no schema drift"), "{stdout}");
    // Folding the retained partitions offline reproduces the schema of a
    // plain streamed discover over the same data.
    let (discover_out, _, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--stream",
        "--format",
        "strict",
    ]);
    assert_eq!(code, Some(0));
    let out = write_temp_named("watch-partition-merged", "placeholder");
    let (merged, stderr, code) = run(&[
        "merge-state",
        out.to_str().unwrap(),
        dir.join("watch.snapshot.1").to_str().unwrap(),
        dir.join("watch.snapshot.2").to_str().unwrap(),
        "--format",
        "strict",
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert_eq!(
        merged, discover_out,
        "merged retained partitions diverged from one-shot discover"
    );
    // The guard flags are validated: --partition without --keep is a usage
    // error, as is --keep without --state-dir.
    let (_, stderr, code) = run(&["watch", path.to_str().unwrap(), "--partition", "passes:2"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--partition requires"), "{stderr}");
    let (_, stderr, code) = run(&["watch", path.to_str().unwrap(), "--keep", "2"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--keep requires --state-dir"), "{stderr}");
}

// --------------------------------------------------------------------------
// `pg-hive serve` end-to-end: spawn the real binary, speak HTTP over raw
// sockets, compare against the offline pipeline, and regress multi-tenant
// snapshot rotation (chains must never cross-contaminate).
// --------------------------------------------------------------------------

/// Kills the spawned server on drop so a failing assertion can't leak a
/// listening process into the test host.
struct ServeGuard(std::process::Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn `pg-hive serve --addr 127.0.0.1:0 <extra>` and return the guard
/// plus the resolved `host:port` parsed from the startup line on stdout.
fn spawn_serve(extra: &[&str]) -> (ServeGuard, String) {
    use std::io::{BufRead, BufReader};
    let mut child = Command::new(env!("CARGO_BIN_EXE_pg-hive"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_string();
    (ServeGuard(child), addr)
}

/// One HTTP request on a fresh connection; returns (status, body).
fn http(addr: &str, method: &str, target: &str, body: &str) -> (u16, String) {
    use std::io::{BufRead, BufReader, Read};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut len = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                len = v.trim().parse().unwrap();
            }
        }
    }
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf).unwrap();
    (status, String::from_utf8(buf).unwrap())
}

#[test]
fn serve_e2e_schema_matches_offline_discover() {
    let (guard, addr) = spawn_serve(&[]);
    let (status, body) = http(&addr, "POST", "/v1/main/ingest", DEMO);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"pass\":1"), "{body}");
    let (status, served) = http(&addr, "GET", "/v1/main/schema", "");
    assert_eq!(status, 200, "{served}");

    // The served schema must be byte-identical to the offline streaming
    // pipeline over the same single batch.
    let path = write_temp_named("serve-e2e-offline", DEMO);
    let (offline, stderr, code) = run(&[
        "discover",
        path.to_str().unwrap(),
        "--stream",
        "--format",
        "strict",
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert_eq!(
        served, offline,
        "served schema diverged from offline discover"
    );
    drop(guard);
}

#[test]
fn serve_e2e_multi_tenant_rotation_chains_never_cross_contaminate() {
    let dir = std::env::temp_dir().join(format!("pg-hive-e2e-serve-rot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Label vocabularies are disjoint so any cross-tenant bleed is
    // grep-visible in both snapshots and served schemas.
    let alpha1 = "N z1 Zephyr name=a\nN z2 Zephyr name=b\nE z1 z2 GUSTS w=1\n";
    let alpha2 = "N z3 Zephyr name=c\nE z1 z3 GUSTS w=2\n";
    let beta1 = "N b1 Beacon url=x\nN b2 Beacon url=y\nE b1 b2 SIGNALS w=1\n";
    let beta2 = "N b3 Beacon url=z\nE b1 b3 SIGNALS w=2\n";

    let (guard, addr) = spawn_serve(&["--state-dir", dir.to_str().unwrap(), "--keep", "2"]);
    for (tenant, batch) in [
        ("alpha", alpha1),
        ("beta", beta1),
        ("alpha", alpha2),
        ("beta", beta2),
    ] {
        let (status, body) = http(&addr, "POST", &format!("/v1/{tenant}/ingest"), batch);
        assert_eq!(status, 200, "{body}");
        let (status, body) = http(&addr, "POST", &format!("/v1/{tenant}/checkpoint"), "");
        assert_eq!(status, 200, "{body}");
    }
    let (_, alpha_before) = http(&addr, "GET", "/v1/alpha/schema", "");
    let (_, beta_before) = http(&addr, "GET", "/v1/beta/schema", "");
    drop(guard);

    // Each tenant owns exactly its own chain: live snapshot + one rotated
    // slot, every file stamped with its own tenant and vocabulary only.
    for tenant in ["alpha", "beta"] {
        let other_label = if tenant == "alpha" {
            "Beacon"
        } else {
            "Zephyr"
        };
        let own_input = format!("input {tenant}");
        for name in [format!("{tenant}.snapshot"), format!("{tenant}.snapshot.1")] {
            let text = std::fs::read_to_string(dir.join(&name))
                .unwrap_or_else(|e| panic!("{name} missing: {e}"));
            assert!(text.contains(&own_input), "{name} lost its tenant stamp");
            assert!(
                !text.contains(other_label),
                "{name} is contaminated with {other_label}"
            );
        }
        assert!(
            !dir.join(format!("{tenant}.snapshot.2")).exists(),
            "--keep 2 retains at most live + 1 rotated before the chain fills"
        );
    }

    // Warm restart from the same state dir: both tenants resume
    // byte-identical and a replayed batch causes no spurious drift.
    let (guard, addr) = spawn_serve(&["--state-dir", dir.to_str().unwrap(), "--keep", "2"]);
    let (status, alpha_after) = http(&addr, "GET", "/v1/alpha/schema", "");
    assert_eq!(status, 200, "{alpha_after}");
    let (_, beta_after) = http(&addr, "GET", "/v1/beta/schema", "");
    assert_eq!(alpha_before, alpha_after, "alpha changed across restart");
    assert_eq!(beta_before, beta_after, "beta changed across restart");
    assert!(alpha_after.contains("Zephyr") && !alpha_after.contains("Beacon"));
    assert!(beta_after.contains("Beacon") && !beta_after.contains("Zephyr"));
    let (status, body) = http(&addr, "POST", "/v1/alpha/ingest", alpha2);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"drift\":false"), "spurious drift: {body}");
    drop(guard);
    std::fs::remove_dir_all(&dir).unwrap();
}
