//! Snapshot (de)serialization primitives for the graph layer.
//!
//! `pg-hive-core::snapshot` defines the versioned container format (header,
//! checksum, sections — see `docs/PERSISTENCE.md` at the repository root);
//! this module supplies the pieces that belong to the graph crate:
//!
//! - a **field codec** ([`escape_field`] / [`unescape_field`]) that makes
//!   arbitrary strings (labels, property keys, dataset node ids, paths)
//!   safe to embed in the line-oriented snapshot text;
//! - [`LabelSetRegistry`] (de)serialization — a section of every watch
//!   checkpoint, so a resumed `pg-hive watch` run keeps resolving appended
//!   edges against node ids ingested before the checkpoint;
//! - [`Interner`] (de)serialization **on the canonical-id view**: strings
//!   are written in sorted order, so a reloaded interner assigns every
//!   string the symbol equal to its canonical rank — two interners restored
//!   from the same snapshot agree on every id regardless of the insertion
//!   order the original saw. (The shipped checkpoint sections store
//!   resolved strings and do not embed an interner; this is the library
//!   facility for consumers that checkpoint interner-keyed state, e.g.
//!   persisted canonical-coordinate caches.)
//!
//! Everything here is deterministic: serializing equal content produces
//! byte-identical lines no matter what order the content was built in.

use crate::interner::Interner;
use crate::stream::LabelSetRegistry;
use std::collections::HashMap;

/// Marker token for the empty string (an escaped non-empty string is never
/// exactly `%e`: the escaper only emits `%` followed by two hex digits).
const EMPTY_FIELD: &str = "%e";

fn is_plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-')
}

/// Percent-encode `s` so the result contains only `[A-Za-z0-9_.%-]` — no
/// whitespace and none of the snapshot format's structural characters
/// (space, `:`, `,`, `>`, `+`, `[`, `]`), so escaped fields can be joined
/// with any of them and split back unambiguously. The empty string encodes
/// as the marker `%e`.
///
/// ```
/// use pg_hive_graph::snapshot::{escape_field, unescape_field};
/// assert_eq!(escape_field("Person"), "Person");
/// assert_eq!(escape_field("has space"), "has%20space");
/// assert_eq!(unescape_field("has%20space").unwrap(), "has space");
/// assert_eq!(unescape_field(&escape_field("")).unwrap(), "");
/// ```
pub fn escape_field(s: &str) -> String {
    if s.is_empty() {
        return EMPTY_FIELD.to_string();
    }
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if is_plain(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

/// Invert [`escape_field`]. Fails with a description on malformed escapes
/// or invalid UTF-8 (a corrupt snapshot line, not a programming error).
pub fn unescape_field(s: &str) -> Result<String, String> {
    if s == EMPTY_FIELD {
        return Ok(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in field '{s}'"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| format!("bad escape in field '{s}'"))?;
            let b =
                u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape in field '{s}'"))?;
            out.push(b);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("field '{s}' is not valid UTF-8"))
}

/// Hex-encode raw bytes with a `0x` prefix (`0x` alone = empty). Used for
/// opaque byte payloads like watch rotation fingerprints.
pub fn bytes_to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(2 + bytes.len() * 2);
    out.push_str("0x");
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Invert [`bytes_to_hex`]. Any malformed input — including non-ASCII
/// bytes, which a byte-offset slice would otherwise panic on — is a named
/// error, never a panic (snapshot files are external input).
pub fn bytes_from_hex(s: &str) -> Result<Vec<u8>, String> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("byte field '{s}' is missing its 0x prefix"))?;
    if !hex.is_ascii() {
        return Err(format!("byte field '{s}' is not hex"));
    }
    if hex.len() % 2 != 0 {
        return Err(format!("byte field '{s}' has odd length"));
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| format!("byte field '{s}' is not hex"))
        })
        .collect()
}

impl Interner {
    /// Serialize the interned string set as one escaped string per line,
    /// in **canonical (lexicographically sorted) order** — the same order
    /// [`Interner::canonical_ids`] ranks by. Insertion order is deliberately
    /// not preserved: two interners holding the same strings serialize
    /// byte-identically.
    pub fn snapshot_lines(&self) -> Vec<String> {
        let mut strings: Vec<&str> = self.iter().map(|(_, s)| s).collect();
        strings.sort_unstable();
        strings.into_iter().map(escape_field).collect()
    }

    /// Rebuild an interner from [`Interner::snapshot_lines`] output. Strings
    /// are interned in file (= canonical) order, so the restored interner
    /// assigns `Symbol(rank)` to the rank-th smallest string — its
    /// [`Interner::canonical_ids`] view is the identity, and every consumer
    /// keyed on canonical ids sees exactly the pre-snapshot mapping.
    ///
    /// ```
    /// use pg_hive_graph::Interner;
    /// let mut a = Interner::new();
    /// a.intern("beta");
    /// a.intern("alpha");
    /// let b = Interner::from_snapshot_lines(a.snapshot_lines().iter().map(String::as_str))
    ///     .unwrap();
    /// // Restored symbols are canonical ranks: alpha = 0, beta = 1.
    /// assert_eq!(b.canonical_ids(), vec![0, 1]);
    /// assert_eq!(b.resolve(b.get("alpha").unwrap()), "alpha");
    /// ```
    pub fn from_snapshot_lines<'a, I>(lines: I) -> Result<Interner, String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut interner = Interner::new();
        for line in lines {
            interner.intern(&unescape_field(line.trim())?);
        }
        Ok(interner)
    }
}

impl LabelSetRegistry {
    /// Number of node ids the registry tracks.
    pub fn len(&self) -> usize {
        self.id_ls.len()
    }

    /// True when no node id has been registered.
    pub fn is_empty(&self) -> bool {
        self.id_ls.is_empty()
    }

    /// Serialize the registry deterministically:
    ///
    /// - `set <label>...` lines first — one per **referenced** distinct
    ///   label set, ordered by content (the line's position is the set's
    ///   file-local index); an empty label set serializes as a bare `set`;
    /// - `id <node-id> <set-index>` lines after, ordered by node id.
    ///
    /// Interning order and dense set ids are not preserved — they are
    /// internal bookkeeping; equal registries (same id → labels mapping)
    /// serialize byte-identically.
    pub fn snapshot_lines(&self) -> Vec<String> {
        // Only sets reachable through an id matter for resolution.
        let mut used: Vec<u32> = self.id_ls.clone();
        used.sort_unstable();
        used.dedup();
        let mut ordered: Vec<(&[String], u32)> = used
            .iter()
            .map(|&ls| (&self.sets[ls as usize][..], ls))
            .collect();
        ordered.sort_by(|a, b| a.0.cmp(b.0));
        let file_index: HashMap<u32, usize> = ordered
            .iter()
            .enumerate()
            .map(|(i, &(_, ls))| (ls, i))
            .collect();

        let mut lines = Vec::with_capacity(ordered.len() + self.id_ls.len());
        for (labels, _) in &ordered {
            let mut line = String::from("set");
            for l in labels.iter() {
                line.push(' ');
                line.push_str(&escape_field(l));
            }
            lines.push(line);
        }
        let mut ids: Vec<(&str, u32)> = self
            .id_syms
            .iter()
            .map(|(sym, id)| (id, self.id_ls[sym.index()]))
            .collect();
        ids.sort_by(|a, b| a.0.cmp(b.0));
        for (id, ls) in ids {
            lines.push(format!("id {} {}", escape_field(id), file_index[&ls]));
        }
        lines
    }

    /// Rebuild a registry from [`LabelSetRegistry::snapshot_lines`] output.
    pub fn from_snapshot_lines<'a, I>(lines: I) -> Result<LabelSetRegistry, String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut reg = LabelSetRegistry::default();
        let mut interned: Vec<u32> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split(' ');
            match tokens.next() {
                Some("set") => {
                    let labels: Vec<String> =
                        tokens.map(unescape_field).collect::<Result<Vec<_>, _>>()?;
                    interned.push(reg.intern(&labels));
                }
                Some("id") => {
                    let id = unescape_field(
                        tokens
                            .next()
                            .ok_or("registry id line is missing the node id")?,
                    )?;
                    let idx: usize = tokens
                        .next()
                        .ok_or("registry id line is missing the set index")?
                        .parse()
                        .map_err(|_| "registry id line has a non-numeric set index".to_string())?;
                    let &ls = interned
                        .get(idx)
                        .ok_or_else(|| format!("registry id line references unknown set {idx}"))?;
                    reg.insert_ls(&id, ls);
                }
                other => return Err(format!("unknown registry line kind {other:?}")),
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_arbitrary_strings() {
        for s in [
            "",
            "Person",
            "has space",
            "a,b:c>d+e[f]g%h",
            "naïve — émojis 🦀",
            "line\nbreak\ttab",
            "%e", // the literal two-character string, not the empty marker
        ] {
            let esc = escape_field(s);
            assert!(
                esc.bytes().all(|b| is_plain(b) || b == b'%'),
                "unescaped structural byte in {esc:?}"
            );
            assert_eq!(unescape_field(&esc).unwrap(), s, "{s:?}");
        }
        // The literal "%e" escapes to something other than the marker.
        assert_ne!(escape_field("%e"), EMPTY_FIELD);
        assert_eq!(escape_field(""), EMPTY_FIELD);
    }

    #[test]
    fn unescape_rejects_malformed_input() {
        assert!(unescape_field("trailing%2").is_err());
        assert!(unescape_field("bad%zzescape").is_err());
        // Overlong: lone continuation byte is invalid UTF-8.
        assert!(unescape_field("%FF").is_err());
    }

    #[test]
    fn hex_round_trips() {
        for bytes in [&b""[..], &b"\x00\xff\x10"[..], &b"tail"[..]] {
            assert_eq!(bytes_from_hex(&bytes_to_hex(bytes)).unwrap(), bytes);
        }
        assert!(bytes_from_hex("ff").is_err(), "missing prefix");
        assert!(bytes_from_hex("0xf").is_err(), "odd length");
        assert!(bytes_from_hex("0xzz").is_err(), "not hex");
        // Regression: multi-byte UTF-8 in the hex digits must be a named
        // error, not a char-boundary slice panic (3-byte char + 1 ASCII
        // byte passes the even-length check).
        assert!(bytes_from_hex("0xﬀa").is_err(), "non-ascii hex");
    }

    #[test]
    fn interner_snapshot_is_canonical_and_insertion_order_free() {
        let mut fwd = Interner::new();
        let mut rev = Interner::new();
        for w in ["gamma", "alpha", "beta"] {
            fwd.intern(w);
        }
        for w in ["beta", "alpha", "gamma"] {
            rev.intern(w);
        }
        assert_eq!(fwd.snapshot_lines(), rev.snapshot_lines());
        let restored =
            Interner::from_snapshot_lines(fwd.snapshot_lines().iter().map(String::as_str)).unwrap();
        assert_eq!(restored.len(), 3);
        // Restored symbols equal canonical ranks.
        let canon = restored.canonical_ids();
        for (sym, s) in restored.iter() {
            assert_eq!(canon[sym.index()], sym.0, "{s}");
        }
    }

    #[test]
    fn registry_snapshot_round_trips_and_is_deterministic() {
        let mut a = LabelSetRegistry::default();
        a.insert("n2", &["Person".into(), "Admin".into()]);
        a.insert("n1", &["Org".into()]);
        a.insert("n3", &[]);
        // Same content inserted in a different order.
        let mut b = LabelSetRegistry::default();
        b.insert("n3", &[]);
        b.insert("n1", &["Org".into()]);
        b.insert("n2", &["Person".into(), "Admin".into()]);
        assert_eq!(a.snapshot_lines(), b.snapshot_lines());

        let restored =
            LabelSetRegistry::from_snapshot_lines(a.snapshot_lines().iter().map(String::as_str))
                .unwrap();
        assert_eq!(restored.len(), 3);
        for id in ["n1", "n2", "n3"] {
            let orig = a.get(id).map(|ls| a.set(ls).to_vec());
            let back = restored.get(id).map(|ls| restored.set(ls).to_vec());
            assert_eq!(orig, back, "{id}");
        }
        // Round-trip of the round-trip is byte-identical (fixed point).
        assert_eq!(restored.snapshot_lines(), a.snapshot_lines());
    }

    #[test]
    fn registry_snapshot_rejects_garbage() {
        assert!(LabelSetRegistry::from_snapshot_lines(["frob x"]).is_err());
        assert!(LabelSetRegistry::from_snapshot_lines(["id onlyid"]).is_err());
        assert!(
            LabelSetRegistry::from_snapshot_lines(["id x 7"]).is_err(),
            "unknown set index"
        );
        assert!(LabelSetRegistry::from_snapshot_lines(["set A", "id x nope"]).is_err());
    }
}
