//! String interning for labels and property keys.
//!
//! The discovery pipeline compares label sets and property-key sets millions
//! of times; interning turns those comparisons into integer comparisons and
//! keeps the per-element footprint small (see the "Type Sizes" guidance in
//! the Rust performance book).

use std::collections::HashMap;

/// An interned string handle. `u32` keeps element structs compact; no real
/// dataset comes close to 2^32 distinct labels or keys (IYP, the largest in
/// the paper, has 33 node labels and ~1.2k patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index into the interner's table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its stable symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Symbol, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_str()))
    }

    /// The stable **canonical-id view**: `canonical_ids()[sym.index()]` is
    /// the rank of `sym`'s string in the lexicographically sorted symbol
    /// table. Two interners holding the same string set map every string to
    /// the same canonical id regardless of the order the strings were
    /// interned in — downstream consumers that key data structures on
    /// canonical ids (e.g. the binary property coordinates of the
    /// representation vectors) therefore produce identical output for any
    /// interning order.
    ///
    /// ```
    /// use pg_hive_graph::Interner;
    /// let mut a = Interner::new();
    /// a.intern("beta");
    /// a.intern("alpha");
    /// let mut b = Interner::new();
    /// b.intern("alpha");
    /// b.intern("beta");
    /// // a interned beta first (symbol 0), b interned it second (symbol 1) —
    /// // yet both agree on the canonical ids: alpha = 0, beta = 1.
    /// assert_eq!(a.canonical_ids(), vec![1, 0]);
    /// assert_eq!(b.canonical_ids(), vec![0, 1]);
    /// ```
    pub fn canonical_ids(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.strings.len() as u32).collect();
        order.sort_by(|&a, &b| self.strings[a as usize].cmp(&self.strings[b as usize]));
        let mut canon = vec![0u32; self.strings.len()];
        for (rank, &sym) in order.iter().enumerate() {
            canon[sym as usize] = rank as u32;
        }
        canon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Person");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Post");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Person");
        assert_eq!(i.resolve(b), "Post");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        assert!(i.is_empty());
        i.intern("x");
        assert_eq!(i.get("x"), Some(Symbol(0)));
    }

    #[test]
    fn canonical_ids_are_interning_order_invariant() {
        let mut fwd = Interner::new();
        let mut rev = Interner::new();
        let words = ["gamma", "alpha", "delta", "beta"];
        for w in words {
            fwd.intern(w);
        }
        for w in words.iter().rev() {
            rev.intern(w);
        }
        // Same canonical id per *string* in both interners.
        for w in words {
            let f = fwd.canonical_ids()[fwd.get(w).unwrap().index()];
            let r = rev.canonical_ids()[rev.get(w).unwrap().index()];
            assert_eq!(f, r, "{w}");
        }
        // Ranks follow lexicographic order and form a permutation.
        let canon = fwd.canonical_ids();
        assert_eq!(canon[fwd.get("alpha").unwrap().index()], 0);
        assert_eq!(canon[fwd.get("beta").unwrap().index()], 1);
        assert_eq!(canon[fwd.get("gamma").unwrap().index()], 3);
        let mut sorted = canon.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert!(Interner::new().canonical_ids().is_empty());
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let seen: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(seen, vec!["a", "b", "c"]);
    }
}
