//! String interning for labels and property keys.
//!
//! The discovery pipeline compares label sets and property-key sets millions
//! of times; interning turns those comparisons into integer comparisons and
//! keeps the per-element footprint small (see the "Type Sizes" guidance in
//! the Rust performance book).
//!
//! # Storage layout
//!
//! Interned strings are bump-allocated into one shared arena (`String`) and
//! addressed by `(offset, len)` spans, so interning `n` strings costs
//! amortized **one** growing allocation instead of `2n` individual ones
//! (the old layout kept an owned `String` per entry *plus* an owned map
//! key). Lookup goes through a small open-addressing hash index that stores
//! only symbol ids — the map "key" is the span into the arena itself, so no
//! string bytes are ever duplicated.

/// An interned string handle. `u32` keeps element structs compact; no real
/// dataset comes close to 2^32 distinct labels or keys (IYP, the largest in
/// the paper, has 33 node labels and ~1.2k patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index into the interner's table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a over the string bytes — short label/key strings hash in a few
/// cycles and the distribution is good enough for a power-of-two table.
fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Finalize so the low bits (the table index) depend on every byte.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// Append-only string interner backed by a bump arena.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    /// All interned bytes, concatenated in insertion order.
    arena: String,
    /// `(offset, len)` of each symbol's bytes inside `arena`.
    spans: Vec<(u32, u32)>,
    /// Open-addressing index: each slot holds `symbol + 1` (0 = empty).
    /// Power-of-two capacity; rebuilt on growth by re-hashing the spans.
    index: Vec<u32>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn span_str(&self, span: (u32, u32)) -> &str {
        &self.arena[span.0 as usize..(span.0 + span.1) as usize]
    }

    /// Probe for `s` (with hash `h`). Returns the slot index holding it, or
    /// the first empty slot where it would be inserted.
    fn probe(&self, s: &str, h: u64) -> usize {
        let mask = self.index.len() - 1;
        let mut slot = (h as usize) & mask;
        loop {
            match self.index[slot] {
                0 => return slot,
                sym => {
                    if self.span_str(self.spans[(sym - 1) as usize]) == s {
                        return slot;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow_index(&mut self) {
        let cap = (self.index.len() * 2).max(16);
        self.index.clear();
        self.index.resize(cap, 0);
        let mask = cap - 1;
        for (i, &span) in self.spans.iter().enumerate() {
            let mut slot = (hash_str(self.span_str(span)) as usize) & mask;
            while self.index[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = i as u32 + 1;
        }
    }

    /// Intern `s`, returning its stable symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        // Keep the load factor below ~7/8 (counting the entry about to be
        // inserted) so probe chains stay short.
        if (self.spans.len() + 1) * 8 >= self.index.len() * 7 {
            self.grow_index();
        }
        let slot = self.probe(s, hash_str(s));
        if self.index[slot] != 0 {
            return Symbol(self.index[slot] - 1);
        }
        let sym = Symbol(self.spans.len() as u32);
        self.spans.push((self.arena.len() as u32, s.len() as u32));
        self.arena.push_str(s);
        self.index[slot] = sym.0 + 1;
        sym
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        if self.index.is_empty() {
            return None;
        }
        match self.index[self.probe(s, hash_str(s))] {
            0 => None,
            sym => Some(Symbol(sym - 1)),
        }
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.span_str(self.spans[sym.index()])
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterate over `(Symbol, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, &span)| (Symbol(i as u32), self.span_str(span)))
    }

    /// The stable **canonical-id view**: `canonical_ids()[sym.index()]` is
    /// the rank of `sym`'s string in the lexicographically sorted symbol
    /// table. Two interners holding the same string set map every string to
    /// the same canonical id regardless of the order the strings were
    /// interned in — downstream consumers that key data structures on
    /// canonical ids (e.g. the binary property coordinates of the
    /// representation vectors) therefore produce identical output for any
    /// interning order.
    ///
    /// ```
    /// use pg_hive_graph::Interner;
    /// let mut a = Interner::new();
    /// a.intern("beta");
    /// a.intern("alpha");
    /// let mut b = Interner::new();
    /// b.intern("alpha");
    /// b.intern("beta");
    /// // a interned beta first (symbol 0), b interned it second (symbol 1) —
    /// // yet both agree on the canonical ids: alpha = 0, beta = 1.
    /// assert_eq!(a.canonical_ids(), vec![1, 0]);
    /// assert_eq!(b.canonical_ids(), vec![0, 1]);
    /// ```
    pub fn canonical_ids(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.spans.len() as u32).collect();
        order.sort_by(|&a, &b| {
            self.span_str(self.spans[a as usize])
                .cmp(self.span_str(self.spans[b as usize]))
        });
        let mut canon = vec![0u32; self.spans.len()];
        for (rank, &sym) in order.iter().enumerate() {
            canon[sym as usize] = rank as u32;
        }
        canon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Person");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Post");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Person");
        assert_eq!(i.resolve(b), "Post");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        assert!(i.is_empty());
        i.intern("x");
        assert_eq!(i.get("x"), Some(Symbol(0)));
    }

    #[test]
    fn arena_layout_preserves_len_and_resolve_semantics() {
        // Regression for the arena rewrite: symbols stay dense and stable,
        // `len()` counts distinct strings only, and `resolve`/`get` keep
        // working across index rebuilds (enough inserts to force several
        // rehashes of the open-addressing table).
        let mut i = Interner::new();
        let words: Vec<String> = (0..200).map(|n| format!("label-{n}")).collect();
        let syms: Vec<Symbol> = words.iter().map(|w| i.intern(w)).collect();
        assert_eq!(i.len(), 200);
        // Re-interning changes nothing.
        for (n, w) in words.iter().enumerate() {
            assert_eq!(i.intern(w), syms[n]);
        }
        assert_eq!(i.len(), 200);
        for (n, w) in words.iter().enumerate() {
            assert_eq!(i.resolve(syms[n]), w.as_str());
            assert_eq!(i.get(w), Some(syms[n]));
        }
        // Empty strings and prefixes are distinct entries.
        let empty = i.intern("");
        let pre = i.intern("label");
        assert_ne!(empty, pre);
        assert_eq!(i.resolve(empty), "");
        assert_eq!(i.resolve(pre), "label");
        assert_eq!(i.len(), 202);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Interner::new();
        a.intern("x");
        let mut b = a.clone();
        b.intern("y");
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.resolve(Symbol(1)), "y");
    }

    #[test]
    fn canonical_ids_are_interning_order_invariant() {
        let mut fwd = Interner::new();
        let mut rev = Interner::new();
        let words = ["gamma", "alpha", "delta", "beta"];
        for w in words {
            fwd.intern(w);
        }
        for w in words.iter().rev() {
            rev.intern(w);
        }
        // Same canonical id per *string* in both interners.
        for w in words {
            let f = fwd.canonical_ids()[fwd.get(w).unwrap().index()];
            let r = rev.canonical_ids()[rev.get(w).unwrap().index()];
            assert_eq!(f, r, "{w}");
        }
        // Ranks follow lexicographic order and form a permutation.
        let canon = fwd.canonical_ids();
        assert_eq!(canon[fwd.get("alpha").unwrap().index()], 0);
        assert_eq!(canon[fwd.get("beta").unwrap().index()], 1);
        assert_eq!(canon[fwd.get("gamma").unwrap().index()], 3);
        let mut sorted = canon.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert!(Interner::new().canonical_ids().is_empty());
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let seen: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(seen, vec!["a", "b", "c"]);
    }
}
