//! Nodes and edges (Def. 3.1 of the paper).
//!
//! A property graph is `G = (V, E, ρ, λ, π)`: nodes, edges, an endpoint
//! function, a partial label assignment, and a partial key–value assignment.
//! Labels are kept as *sorted* symbol vectors so that a multi-label set has a
//! single canonical form — §4.1 sorts multiple labels alphabetically before
//! embedding, and the interner assigns symbols in first-seen order, so we
//! sort by the resolved string at insertion time in [`crate::GraphBuilder`].

use crate::interner::Symbol;
use crate::value::Value;

/// Index of a node inside its [`crate::PropertyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of an edge inside its [`crate::PropertyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl EdgeId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node: a (possibly empty) label set and a property map.
#[derive(Debug, Clone, Default)]
pub struct Node {
    /// Sorted, deduplicated label symbols (λ). Empty = unlabeled.
    pub labels: Vec<Symbol>,
    /// Sorted-by-key `(key, value)` pairs (π).
    pub props: Vec<(Symbol, Value)>,
}

/// An edge: endpoints (ρ), label set (λ) and property map (π).
#[derive(Debug, Clone)]
pub struct Edge {
    /// Source endpoint.
    pub src: NodeId,
    /// Target endpoint.
    pub tgt: NodeId,
    /// Sorted, deduplicated label symbols. Empty = unlabeled.
    pub labels: Vec<Symbol>,
    /// Sorted-by-key `(key, value)` pairs.
    pub props: Vec<(Symbol, Value)>,
}

impl Node {
    /// Property keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.props.iter().map(|(k, _)| *k)
    }

    /// Value of key `k`, if present (binary search on sorted props).
    pub fn get(&self, k: Symbol) -> Option<&Value> {
        self.props
            .binary_search_by_key(&k, |(key, _)| *key)
            .ok()
            .map(|i| &self.props[i].1)
    }

    /// Whether the node carries no label (the "Alice" case in Fig. 1).
    pub fn is_unlabeled(&self) -> bool {
        self.labels.is_empty()
    }
}

impl Edge {
    /// Property keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.props.iter().map(|(k, _)| *k)
    }

    /// Value of key `k`, if present.
    pub fn get(&self, k: Symbol) -> Option<&Value> {
        self.props
            .binary_search_by_key(&k, |(key, _)| *key)
            .ok()
            .map(|i| &self.props[i].1)
    }

    /// Whether the edge carries no label.
    pub fn is_unlabeled(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_get_uses_sorted_props() {
        let n = Node {
            labels: vec![Symbol(0)],
            props: vec![
                (Symbol(1), Value::Int(1)),
                (Symbol(3), Value::Int(3)),
                (Symbol(7), Value::Int(7)),
            ],
        };
        assert_eq!(n.get(Symbol(3)), Some(&Value::Int(3)));
        assert_eq!(n.get(Symbol(2)), None);
        let keys: Vec<Symbol> = n.keys().collect();
        assert_eq!(keys, vec![Symbol(1), Symbol(3), Symbol(7)]);
    }

    #[test]
    fn unlabeled_detection() {
        let n = Node::default();
        assert!(n.is_unlabeled());
        let e = Edge {
            src: NodeId(0),
            tgt: NodeId(1),
            labels: vec![],
            props: vec![],
        };
        assert!(e.is_unlabeled());
    }
}
