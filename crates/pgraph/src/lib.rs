//! # pg-hive-graph
//!
//! Property-graph data model and in-memory storage substrate for the PG-HIVE
//! schema-discovery system (EDBT 2026).
//!
//! The paper stores graphs in Neo4j and streams them through Spark; this crate
//! replaces that substrate with a compact in-memory store that delivers
//! exactly what the discovery pipeline consumes: per-element label sets,
//! property-key sets, property values, and edge endpoints (Def. 3.1 of the
//! paper), along with batch splitting for the incremental pipeline (§4.6).
//!
//! Key pieces:
//! - [`Value`]: typed property values (GQL-style data types, §3).
//! - [`Interner`]: string interning for labels and property keys.
//! - [`PropertyGraph`] / [`GraphBuilder`]: the store and its construction API.
//! - [`batch`]: deterministic random batch splitting for incremental runs.
//! - [`stats`]: dataset statistics (the columns of Table 2).
//! - [`loader`]: a small line-oriented text loader used by examples.
//! - [`snapshot`]: snapshot (de)serialization primitives — the escaped
//!   field codec and [`stream::LabelSetRegistry`] persistence used by the
//!   durable `pg-hive watch` checkpoints (see `docs/PERSISTENCE.md`),
//!   plus [`Interner`] persistence on the canonical-id view for consumers
//!   that checkpoint interner-keyed state.
//! - [`stream`]: streaming ingestion — a [`stream::GraphSource`] trait over
//!   `.pgt` / CSV / JSON-Lines exports and a [`stream::ChunkedTextReader`]
//!   that yields independent graph chunks with O(chunk) resident memory,
//!   feeding `Discoverer::discover_stream` (§4.6); plus
//!   [`stream::ReadAheadChunks`] / [`stream::ReadAheadRecords`], the
//!   bounded-channel producer stages that overlap parsing with downstream
//!   discovery (`Discoverer::discover_stream_parallel`) or stats folding.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the crate map and
//! the streaming chunk lifecycle.

#![warn(missing_docs)]

pub mod adjacency;
pub mod batch;
pub mod builder;
pub mod element;
pub mod graph;
pub mod interner;
pub mod loader;
pub mod snapshot;
pub mod stats;
pub mod stream;
pub mod value;

pub use adjacency::AdjacencyIndex;
pub use batch::{split_batches, GraphBatch};
pub use builder::GraphBuilder;
pub use element::{Edge, EdgeId, Node, NodeId};
pub use graph::PropertyGraph;
pub use interner::{Interner, Symbol};
pub use stats::GraphStats;
pub use stream::multi::{MultiSource, SourceEntry, SourceKind};
pub use stream::{
    ChunkedTextReader, GraphSource, LabelSetRegistry, OwnedSource, RawGraphSource, ReadAheadChunks,
    ReadAheadRecords, Record, RecordBuf, RecordRef, StreamError, StreamSummary, StreamWarnings,
};
pub use value::{Value, ValueKind};
