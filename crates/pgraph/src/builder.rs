//! Graph construction API.

use crate::element::{Edge, EdgeId, Node, NodeId};
use crate::graph::PropertyGraph;
use crate::value::Value;

/// Incremental builder for [`PropertyGraph`].
///
/// Canonicalizes as it goes: label sets are sorted alphabetically and
/// deduplicated (the paper sorts multi-label sets "alphabetically for
/// uniformity", §4.1), and property maps are sorted by key with last-write-
/// wins semantics on duplicates.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: PropertyGraph,
}

impl GraphBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with capacity hints for the expected node/edge counts.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut b = Self::new();
        b.graph.nodes.reserve(nodes);
        b.graph.edges.reserve(edges);
        b
    }

    /// Add a node with the given labels and properties; returns its id.
    pub fn add_node(&mut self, labels: &[&str], props: &[(&str, Value)]) -> NodeId {
        let labels = self.intern_labels(labels);
        let props = self.intern_props(props);
        let id = NodeId(self.graph.nodes.len() as u32);
        self.graph.nodes.push(Node { labels, props });
        id
    }

    /// Add an edge between existing nodes; returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint id was not minted by this builder.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        tgt: NodeId,
        labels: &[&str],
        props: &[(&str, Value)],
    ) -> EdgeId {
        assert!(
            src.index() < self.graph.nodes.len() && tgt.index() < self.graph.nodes.len(),
            "edge endpoints must refer to existing nodes"
        );
        let labels = self.intern_labels(labels);
        let props = self.intern_props(props);
        let id = EdgeId(self.graph.edges.len() as u32);
        self.graph.edges.push(Edge {
            src,
            tgt,
            labels,
            props,
        });
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.graph.nodes.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.graph.edges.len()
    }

    /// Finalize into an immutable graph.
    pub fn finish(self) -> PropertyGraph {
        self.graph
    }

    /// Add the node record held in `buf`, interning labels/keys straight
    /// from the borrowed spans and **moving** the property values out of
    /// the buffer (the zero-copy streaming path).
    pub(crate) fn add_node_from_buf(&mut self, buf: &mut crate::stream::RecordBuf) -> NodeId {
        let labels = self.intern_labels_from_buf(buf);
        let props = self.intern_props_from_buf(buf);
        let id = NodeId(self.graph.nodes.len() as u32);
        self.graph.nodes.push(Node { labels, props });
        id
    }

    /// Add the edge record held in `buf` between already-resolved
    /// endpoints; same canonicalization as [`Self::add_edge`].
    pub(crate) fn add_edge_from_buf(
        &mut self,
        src: NodeId,
        tgt: NodeId,
        buf: &mut crate::stream::RecordBuf,
    ) -> EdgeId {
        assert!(
            src.index() < self.graph.nodes.len() && tgt.index() < self.graph.nodes.len(),
            "edge endpoints must refer to existing nodes"
        );
        let labels = self.intern_labels_from_buf(buf);
        let props = self.intern_props_from_buf(buf);
        let id = EdgeId(self.graph.edges.len() as u32);
        self.graph.edges.push(Edge {
            src,
            tgt,
            labels,
            props,
        });
        id
    }

    /// Intern a single label into this graph's label table.
    pub(crate) fn intern_label(&mut self, label: &str) -> crate::Symbol {
        self.graph.labels.intern(label)
    }

    /// Add a property-less node whose labels are **already canonical**
    /// (sorted, deduplicated) symbols of this builder's label table — the
    /// stub-endpoint fast path, which skips re-sorting per stub. The node is
    /// marked as a stub ([`PropertyGraph::is_stub`]), so the discovery
    /// pipeline keeps its labels for edge endpoints but never counts it as
    /// an instance.
    pub(crate) fn add_node_syms(&mut self, labels: Vec<crate::Symbol>) -> NodeId {
        let id = NodeId(self.graph.nodes.len() as u32);
        self.graph.nodes.push(Node {
            labels,
            props: Vec::new(),
        });
        self.graph.mark_stub(id);
        id
    }

    /// Add a **stub** endpoint node: property-less, carrying only a label
    /// set, and marked so [`PropertyGraph::is_stub`] reports it. Used when
    /// re-materializing a cross-shard edge whose endpoint was declared (and
    /// counted) in another shard's input — the stub contributes the edge's
    /// endpoint labels without double-counting the node.
    pub fn add_stub_node(&mut self, labels: &[&str]) -> NodeId {
        let labels = self.intern_labels(labels);
        let id = NodeId(self.graph.nodes.len() as u32);
        self.graph.nodes.push(Node {
            labels,
            props: Vec::new(),
        });
        self.graph.mark_stub(id);
        id
    }

    fn intern_labels_from_buf(&mut self, buf: &crate::stream::RecordBuf) -> Vec<crate::Symbol> {
        match buf.labels.len() {
            0 => Vec::new(),
            // The overwhelmingly common single-label case needs no sorting
            // scratch at all.
            1 => vec![self.graph.labels.intern(buf.str(buf.labels[0]))],
            _ => {
                let mut sorted: Vec<&str> = buf.labels.iter().map(|&s| buf.str(s)).collect();
                sorted.sort_unstable();
                sorted.dedup();
                sorted
                    .into_iter()
                    .map(|l| self.graph.labels.intern(l))
                    .collect()
            }
        }
    }

    fn intern_props_from_buf(
        &mut self,
        buf: &mut crate::stream::RecordBuf,
    ) -> Vec<(crate::Symbol, Value)> {
        let text = &buf.text;
        let mut out: Vec<(crate::Symbol, Value)> = buf
            .props
            .drain(..)
            .map(|(k, v)| {
                (
                    self.graph
                        .keys
                        .intern(crate::stream::raw::span_str(text, k)),
                    v,
                )
            })
            .collect();
        if out.len() > 1 {
            out.sort_by_key(|(k, _)| *k);
            // Last write wins on duplicate keys.
            out.dedup_by(|a, b| {
                a.0 == b.0 && {
                    b.1 = a.1.clone();
                    true
                }
            });
        }
        out
    }

    fn intern_labels(&mut self, labels: &[&str]) -> Vec<crate::Symbol> {
        let mut sorted: Vec<&str> = labels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted
            .into_iter()
            .map(|l| self.graph.labels.intern(l))
            .collect()
    }

    fn intern_props(&mut self, props: &[(&str, Value)]) -> Vec<(crate::Symbol, Value)> {
        let mut out: Vec<(crate::Symbol, Value)> = props
            .iter()
            .map(|(k, v)| (self.graph.keys.intern(k), v.clone()))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        // Last write wins on duplicate keys.
        out.dedup_by(|a, b| {
            a.0 == b.0 && {
                b.1 = a.1.clone();
                true
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_sorted_and_deduped() {
        let mut b = GraphBuilder::new();
        let n = b.add_node(&["Student", "Person", "Student"], &[]);
        let g = b.finish();
        let labels: Vec<&str> = g.node(n).labels.iter().map(|&l| g.label_str(l)).collect();
        assert_eq!(labels, vec!["Person", "Student"]);
    }

    #[test]
    fn props_are_sorted_by_key_symbol() {
        let mut b = GraphBuilder::new();
        let n = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("Bob")),
                ("age", Value::Int(45)),
                ("bday", Value::from("1980-05-02")),
            ],
        );
        let g = b.finish();
        let node = g.node(n);
        let mut prev = None;
        for (k, _) in &node.props {
            if let Some(p) = prev {
                assert!(*k > p);
            }
            prev = Some(*k);
        }
        assert_eq!(
            node.get(g.keys().get("age").unwrap()),
            Some(&Value::Int(45))
        );
    }

    #[test]
    fn duplicate_props_last_write_wins() {
        let mut b = GraphBuilder::new();
        let n = b.add_node(&[], &[("x", Value::Int(1)), ("x", Value::Int(2))]);
        let g = b.finish();
        let k = g.keys().get("x").unwrap();
        assert_eq!(g.node(n).get(k), Some(&Value::Int(2)));
        assert_eq!(g.node(n).props.len(), 1);
    }

    #[test]
    #[should_panic(expected = "edge endpoints")]
    fn dangling_edge_panics() {
        let mut b = GraphBuilder::new();
        let n = b.add_node(&[], &[]);
        b.add_edge(n, NodeId(99), &["X"], &[]);
    }

    #[test]
    fn capacity_builder_counts() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        b.add_node(&["A"], &[]);
        assert_eq!(b.node_count(), 1);
        assert_eq!(b.edge_count(), 0);
    }
}
