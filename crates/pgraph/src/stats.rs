//! Dataset statistics — the columns of Table 2 in the paper.
//!
//! "Node patterns" and "edge patterns" follow Def. 3.5 / Def. 3.6: a node
//! pattern is the pair (label set, property-key set); an edge pattern adds
//! the (source-label-set, target-label-set) endpoint pair.

use crate::graph::PropertyGraph;
use crate::interner::Symbol;
use crate::stream::{GraphSource, LabelSetRegistry, Record, StreamError};
use std::collections::HashSet;

/// Structural statistics of a property graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Total node count.
    pub nodes: usize,
    /// Total edge count.
    pub edges: usize,
    /// Distinct individual node labels.
    pub node_labels: usize,
    /// Distinct individual edge labels.
    pub edge_labels: usize,
    /// Distinct node patterns (Def. 3.5).
    pub node_patterns: usize,
    /// Distinct edge patterns (Def. 3.6).
    pub edge_patterns: usize,
    /// Distinct node label *sets* (a proxy for node types when ground truth
    /// equates a type with its label combination).
    pub node_label_sets: usize,
    /// Distinct edge label sets.
    pub edge_label_sets: usize,
}

impl GraphStats {
    /// Compute all statistics in one pass over nodes and one over edges.
    pub fn compute(g: &PropertyGraph) -> Self {
        let mut node_labels: HashSet<Symbol> = HashSet::new();
        let mut node_label_sets: HashSet<Vec<Symbol>> = HashSet::new();
        let mut node_patterns: HashSet<(Vec<Symbol>, Vec<Symbol>)> = HashSet::new();

        for (_, n) in g.nodes() {
            for &l in &n.labels {
                node_labels.insert(l);
            }
            node_label_sets.insert(n.labels.clone());
            node_patterns.insert((n.labels.clone(), n.keys().collect()));
        }

        let mut edge_labels: HashSet<Symbol> = HashSet::new();
        let mut edge_label_sets: HashSet<Vec<Symbol>> = HashSet::new();
        #[allow(clippy::type_complexity)]
        let mut edge_patterns: HashSet<(
            Vec<Symbol>,
            Vec<Symbol>,
            Vec<Symbol>,
            Vec<Symbol>,
        )> = HashSet::new();

        for (_, e) in g.edges() {
            for &l in &e.labels {
                edge_labels.insert(l);
            }
            edge_label_sets.insert(e.labels.clone());
            let (src, tgt) = g.edge_endpoint_labels(e);
            edge_patterns.insert((
                e.labels.clone(),
                e.keys().collect(),
                src.to_vec(),
                tgt.to_vec(),
            ));
        }

        GraphStats {
            nodes: g.node_count(),
            edges: g.edge_count(),
            node_labels: node_labels.len(),
            edge_labels: edge_labels.len(),
            node_patterns: node_patterns.len(),
            edge_patterns: edge_patterns.len(),
            node_label_sets: node_label_sets.len(),
            edge_label_sets: edge_label_sets.len(),
        }
    }
}

/// Compute [`GraphStats`] straight from a record stream with O(distinct
/// patterns + node ids) memory — no resident graph, no per-chunk stub
/// nodes. Element and pattern counts match [`GraphStats::compute`] on the
/// fully-loaded graph.
///
/// Edge patterns need endpoint label sets; a compact id → label-set
/// registry provides them. Edges referencing a node id that only appears
/// *later* in the stream are buffered (bounded at ~1M) and resolved at end
/// of stream. The second return value counts edges whose endpoints were
/// never declared — their patterns fall back to unlabeled endpoints.
pub fn stream_stats<S: GraphSource>(mut source: S) -> Result<(GraphStats, u64), StreamError> {
    const PENDING_CAP: usize = 1 << 20;
    let mut nodes = 0usize;
    let mut edges = 0usize;
    let mut node_labels: HashSet<String> = HashSet::new();
    let mut edge_labels: HashSet<String> = HashSet::new();
    let mut node_label_sets: HashSet<Vec<String>> = HashSet::new();
    let mut edge_label_sets: HashSet<Vec<String>> = HashSet::new();
    let mut node_patterns: HashSet<(Vec<String>, Vec<String>)> = HashSet::new();
    #[allow(clippy::type_complexity)]
    let mut edge_patterns: HashSet<(Vec<String>, Vec<String>, u32, u32)> = HashSet::new();

    let mut registry = LabelSetRegistry::default();
    #[allow(clippy::type_complexity)]
    let mut pending: Vec<(Vec<String>, Vec<String>, String, String)> = Vec::new();
    let mut fallback = 0u64;

    while let Some(rec) = source.next_record()? {
        match rec {
            Record::Node { id, labels, props } => {
                nodes += 1;
                let mut ls = labels;
                ls.sort_unstable();
                ls.dedup();
                let mut keys: Vec<String> = props.into_iter().map(|(k, _)| k).collect();
                keys.sort_unstable();
                keys.dedup();
                for l in &ls {
                    node_labels.insert(l.clone());
                }
                registry.insert(&id, &ls);
                node_label_sets.insert(ls.clone());
                node_patterns.insert((ls, keys));
            }
            Record::Edge {
                src,
                tgt,
                labels,
                props,
            } => {
                edges += 1;
                let mut ls = labels;
                ls.sort_unstable();
                ls.dedup();
                let mut keys: Vec<String> = props.into_iter().map(|(k, _)| k).collect();
                keys.sort_unstable();
                keys.dedup();
                for l in &ls {
                    edge_labels.insert(l.clone());
                }
                edge_label_sets.insert(ls.clone());
                match (registry.get(&src), registry.get(&tgt)) {
                    (Some(s), Some(t)) => {
                        edge_patterns.insert((ls, keys, s, t));
                    }
                    _ if pending.len() < PENDING_CAP => pending.push((ls, keys, src, tgt)),
                    _ => {
                        // Buffer overflowed: resolve now with what we have.
                        fallback += 1;
                        let empty = registry.intern(&[]);
                        let s = registry.get(&src).unwrap_or(empty);
                        let t = registry.get(&tgt).unwrap_or(empty);
                        edge_patterns.insert((ls, keys, s, t));
                    }
                }
            }
        }
    }
    for (ls, keys, src, tgt) in pending {
        let empty = registry.intern(&[]);
        let (s, t) = match (registry.get(&src), registry.get(&tgt)) {
            (Some(s), Some(t)) => (s, t),
            (s, t) => {
                fallback += 1;
                (s.unwrap_or(empty), t.unwrap_or(empty))
            }
        };
        edge_patterns.insert((ls, keys, s, t));
    }

    Ok((
        GraphStats {
            nodes,
            edges,
            node_labels: node_labels.len(),
            edge_labels: edge_labels.len(),
            node_patterns: node_patterns.len(),
            edge_patterns: edge_patterns.len(),
            node_label_sets: node_label_sets.len(),
            edge_label_sets: edge_label_sets.len(),
        },
        fallback,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::value::Value;

    /// The Figure 1 example graph from the paper.
    fn figure1() -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let bob = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("Bob")),
                ("gender", Value::from("male")),
                ("bday", Value::from("1980-05-02")),
            ],
        );
        let alice = b.add_node(
            &[],
            &[
                ("name", Value::from("Alice")),
                ("gender", Value::from("female")),
                ("bday", Value::from("1999-12-19")),
            ],
        );
        let john = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("John")),
                ("gender", Value::from("male")),
                ("bday", Value::from("2005-09-24")),
            ],
        );
        let post1 = b.add_node(&["Post"], &[("imgFile", Value::from("screenshot.png"))]);
        let post2 = b.add_node(&["Post"], &[("content", Value::from("bazinga!"))]);
        let org = b.add_node(
            &["Org"],
            &[
                ("url", Value::from("example.com")),
                ("name", Value::from("Example")),
            ],
        );
        let place = b.add_node(&["Place"], &[("name", Value::from("Greece"))]);

        b.add_edge(alice, john, &["KNOWS"], &[]);
        b.add_edge(
            bob,
            john,
            &["KNOWS"],
            &[("since", Value::from("2025-01-01"))],
        );
        b.add_edge(alice, post2, &["LIKES"], &[]);
        b.add_edge(john, post1, &["LIKES"], &[]);
        b.add_edge(bob, org, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        b.add_edge(org, place, &["LOCATED_IN"], &[]);
        b.add_edge(john, place, &["LOCATED_IN"], &[("from", Value::Int(2025))]);
        b.finish()
    }

    #[test]
    fn figure1_statistics_match_example2() {
        let g = figure1();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.edges, 7);
        // Labels: Person, Post, Org, Place.
        assert_eq!(s.node_labels, 4);
        // Edge labels: KNOWS, LIKES, WORKS_AT, LOCATED_IN.
        assert_eq!(s.edge_labels, 4);
        // Example 2 lists exactly 6 node patterns TNp1..TNp6.
        assert_eq!(s.node_patterns, 6);
        // Example 2 lists exactly 6 edge patterns TEp1..TEp6. Note
        // KNOWS(Alice->John) has an unlabeled source so its endpoint pair is
        // ({}, {Person}) — the paper groups it under TEp2 via the *type*
        // ({Person},{Person}) after Alice is typed, but at raw-pattern level
        // it is distinct; TEp3's two LIKES instances also differ at raw level
        // ({} vs {Person} source). The raw count is therefore 7.
        assert_eq!(s.edge_patterns, 7);
        // Label sets: {Person}, {} , {Post}, {Org}, {Place}.
        assert_eq!(s.node_label_sets, 5);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let s = GraphStats::compute(&PropertyGraph::new());
        assert_eq!(
            s,
            GraphStats {
                nodes: 0,
                edges: 0,
                node_labels: 0,
                edge_labels: 0,
                node_patterns: 0,
                edge_patterns: 0,
                node_label_sets: 0,
                edge_label_sets: 0,
            }
        );
    }

    #[test]
    fn stream_stats_matches_compute() {
        let g = figure1();
        let text = crate::loader::save_text(&g);
        let (streamed, fallback) =
            stream_stats(crate::stream::pgt::PgtSource::new(text.as_bytes())).unwrap();
        assert_eq!(fallback, 0);
        assert_eq!(streamed, GraphStats::compute(&g));
    }

    #[test]
    fn stream_stats_resolves_forward_references() {
        let text = "E a b KNOWS -\nN a Person x=1\nN b Person -\n";
        let (s, fallback) =
            stream_stats(crate::stream::pgt::PgtSource::new(text.as_bytes())).unwrap();
        assert_eq!(fallback, 0);
        assert_eq!(s.edges, 1);
        assert_eq!(s.edge_patterns, 1);
        // Truly dangling endpoints are counted and fall back to unlabeled.
        let text = "N a Person -\nE a ghost KNOWS -\n";
        let (s, fallback) =
            stream_stats(crate::stream::pgt::PgtSource::new(text.as_bytes())).unwrap();
        assert_eq!(fallback, 1);
        assert_eq!(s.edges, 1);
    }

    #[test]
    fn multilabel_nodes_count_individual_labels() {
        let mut b = GraphBuilder::new();
        b.add_node(&["Person", "Student"], &[]);
        b.add_node(&["Person", "Athlete"], &[]);
        let g = b.finish();
        let s = GraphStats::compute(&g);
        assert_eq!(s.node_labels, 3); // Person, Student, Athlete
        assert_eq!(s.node_label_sets, 2);
        assert_eq!(s.node_patterns, 2);
    }
}
