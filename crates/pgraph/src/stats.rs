//! Dataset statistics — the columns of Table 2 in the paper.
//!
//! "Node patterns" and "edge patterns" follow Def. 3.5 / Def. 3.6: a node
//! pattern is the pair (label set, property-key set); an edge pattern adds
//! the (source-label-set, target-label-set) endpoint pair.

use crate::graph::PropertyGraph;
use crate::interner::Symbol;
use std::collections::HashSet;

/// Structural statistics of a property graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    /// Distinct individual node labels.
    pub node_labels: usize,
    /// Distinct individual edge labels.
    pub edge_labels: usize,
    /// Distinct node patterns (Def. 3.5).
    pub node_patterns: usize,
    /// Distinct edge patterns (Def. 3.6).
    pub edge_patterns: usize,
    /// Distinct node label *sets* (a proxy for node types when ground truth
    /// equates a type with its label combination).
    pub node_label_sets: usize,
    /// Distinct edge label sets.
    pub edge_label_sets: usize,
}

impl GraphStats {
    /// Compute all statistics in one pass over nodes and one over edges.
    pub fn compute(g: &PropertyGraph) -> Self {
        let mut node_labels: HashSet<Symbol> = HashSet::new();
        let mut node_label_sets: HashSet<Vec<Symbol>> = HashSet::new();
        let mut node_patterns: HashSet<(Vec<Symbol>, Vec<Symbol>)> = HashSet::new();

        for (_, n) in g.nodes() {
            for &l in &n.labels {
                node_labels.insert(l);
            }
            node_label_sets.insert(n.labels.clone());
            node_patterns.insert((n.labels.clone(), n.keys().collect()));
        }

        let mut edge_labels: HashSet<Symbol> = HashSet::new();
        let mut edge_label_sets: HashSet<Vec<Symbol>> = HashSet::new();
        #[allow(clippy::type_complexity)]
        let mut edge_patterns: HashSet<(
            Vec<Symbol>,
            Vec<Symbol>,
            Vec<Symbol>,
            Vec<Symbol>,
        )> = HashSet::new();

        for (_, e) in g.edges() {
            for &l in &e.labels {
                edge_labels.insert(l);
            }
            edge_label_sets.insert(e.labels.clone());
            let (src, tgt) = g.edge_endpoint_labels(e);
            edge_patterns.insert((
                e.labels.clone(),
                e.keys().collect(),
                src.to_vec(),
                tgt.to_vec(),
            ));
        }

        GraphStats {
            nodes: g.node_count(),
            edges: g.edge_count(),
            node_labels: node_labels.len(),
            edge_labels: edge_labels.len(),
            node_patterns: node_patterns.len(),
            edge_patterns: edge_patterns.len(),
            node_label_sets: node_label_sets.len(),
            edge_label_sets: edge_label_sets.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::value::Value;

    /// The Figure 1 example graph from the paper.
    fn figure1() -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let bob = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("Bob")),
                ("gender", Value::from("male")),
                ("bday", Value::from("1980-05-02")),
            ],
        );
        let alice = b.add_node(
            &[],
            &[
                ("name", Value::from("Alice")),
                ("gender", Value::from("female")),
                ("bday", Value::from("1999-12-19")),
            ],
        );
        let john = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("John")),
                ("gender", Value::from("male")),
                ("bday", Value::from("2005-09-24")),
            ],
        );
        let post1 = b.add_node(&["Post"], &[("imgFile", Value::from("screenshot.png"))]);
        let post2 = b.add_node(&["Post"], &[("content", Value::from("bazinga!"))]);
        let org = b.add_node(
            &["Org"],
            &[
                ("url", Value::from("example.com")),
                ("name", Value::from("Example")),
            ],
        );
        let place = b.add_node(&["Place"], &[("name", Value::from("Greece"))]);

        b.add_edge(alice, john, &["KNOWS"], &[]);
        b.add_edge(
            bob,
            john,
            &["KNOWS"],
            &[("since", Value::from("2025-01-01"))],
        );
        b.add_edge(alice, post2, &["LIKES"], &[]);
        b.add_edge(john, post1, &["LIKES"], &[]);
        b.add_edge(bob, org, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        b.add_edge(org, place, &["LOCATED_IN"], &[]);
        b.add_edge(john, place, &["LOCATED_IN"], &[("from", Value::Int(2025))]);
        b.finish()
    }

    #[test]
    fn figure1_statistics_match_example2() {
        let g = figure1();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.edges, 7);
        // Labels: Person, Post, Org, Place.
        assert_eq!(s.node_labels, 4);
        // Edge labels: KNOWS, LIKES, WORKS_AT, LOCATED_IN.
        assert_eq!(s.edge_labels, 4);
        // Example 2 lists exactly 6 node patterns TNp1..TNp6.
        assert_eq!(s.node_patterns, 6);
        // Example 2 lists exactly 6 edge patterns TEp1..TEp6. Note
        // KNOWS(Alice->John) has an unlabeled source so its endpoint pair is
        // ({}, {Person}) — the paper groups it under TEp2 via the *type*
        // ({Person},{Person}) after Alice is typed, but at raw-pattern level
        // it is distinct; TEp3's two LIKES instances also differ at raw level
        // ({} vs {Person} source). The raw count is therefore 7.
        assert_eq!(s.edge_patterns, 7);
        // Label sets: {Person}, {} , {Post}, {Org}, {Place}.
        assert_eq!(s.node_label_sets, 5);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let s = GraphStats::compute(&PropertyGraph::new());
        assert_eq!(
            s,
            GraphStats {
                nodes: 0,
                edges: 0,
                node_labels: 0,
                edge_labels: 0,
                node_patterns: 0,
                edge_patterns: 0,
                node_label_sets: 0,
                edge_label_sets: 0,
            }
        );
    }

    #[test]
    fn multilabel_nodes_count_individual_labels() {
        let mut b = GraphBuilder::new();
        b.add_node(&["Person", "Student"], &[]);
        b.add_node(&["Person", "Athlete"], &[]);
        let g = b.finish();
        let s = GraphStats::compute(&g);
        assert_eq!(s.node_labels, 3); // Person, Student, Athlete
        assert_eq!(s.node_label_sets, 2);
        assert_eq!(s.node_patterns, 2);
    }
}
