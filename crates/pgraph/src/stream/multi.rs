//! Multi-source enumeration: a *directory tree* of mixed-format inputs as
//! one logical dataset, partitionable across shards.
//!
//! # Why per-file sources
//!
//! Sharded discovery is byte-identical to the serial run only if every
//! file's chunk boundaries are independent of which shard it landed on.
//! [`MultiSource`] therefore never concatenates files into one stream:
//! each [`SourceEntry`] opens a **fresh** reader (fresh registry, chunk
//! boundaries a function of that file alone), and the per-file states are
//! folded with the associative+commutative `SchemaState::merge`. The serial
//! directory run is the fold in sorted enumeration order; a sharded run is
//! a size-aware [`MultiSource::partition`] folded per shard and then
//! across shards — any fold tree reaches the same state by construction,
//! so the partitioner is free to balance shards by byte length (LPT)
//! instead of dealing entries round-robin.
//!
//! # Enumeration rules
//!
//! Walking the tree rooted at a directory:
//!
//! - a directory containing `nodes.csv` is **one** CSV dataset entry
//!   (its `edges.csv` rides along; the directory is not descended into);
//! - `*.pgt` and `*.jsonl` files are one entry each;
//! - everything else is ignored.
//!
//! The resulting entry list is sorted by path, so enumeration order — and
//! with it the serial fold order — is stable across runs and platforms.

use super::csv::{CsvSource, EDGES_FILE, NODES_FILE};
use super::jsonl::JsonlSource;
use super::pgt::PgtSource;
use super::raw::RawGraphSource;
use super::StreamError;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// Wire format of one enumerated input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// A `.pgt` text file.
    Pgt,
    /// A directory holding `nodes.csv` (+ optional `edges.csv`).
    Csv,
    /// A `.jsonl` file.
    Jsonl,
}

impl SourceKind {
    /// Short format name, matching [`RawGraphSource::format_name`].
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::Pgt => "pgt",
            SourceKind::Csv => "csv",
            SourceKind::Jsonl => "jsonl",
        }
    }
}

/// One input of a [`MultiSource`]: a path plus the format it was
/// recognized as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceEntry {
    /// File path (`Pgt`/`Jsonl`) or dataset directory path (`Csv`).
    pub path: PathBuf,
    /// Recognized wire format.
    pub kind: SourceKind,
}

impl SourceEntry {
    /// Byte length of this input — the cost proxy the size-aware
    /// partitioner balances. A `.pgt`/`.jsonl` entry weighs its file
    /// size; a CSV dataset weighs `nodes.csv` plus `edges.csv`.
    /// Unreadable files weigh 0 (the error surfaces later, on open).
    pub fn byte_len(&self) -> u64 {
        let file_len = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        match self.kind {
            SourceKind::Pgt | SourceKind::Jsonl => file_len(&self.path),
            SourceKind::Csv => {
                file_len(&self.path.join(NODES_FILE)) + file_len(&self.path.join(EDGES_FILE))
            }
        }
    }

    /// Open a fresh streaming reader over this input.
    pub fn open(&self) -> Result<Box<dyn RawGraphSource + Send>, StreamError> {
        Ok(match self.kind {
            SourceKind::Pgt => Box::new(PgtSource::new(BufReader::with_capacity(
                1 << 20,
                File::open(&self.path)?,
            ))),
            SourceKind::Jsonl => Box::new(JsonlSource::new(BufReader::with_capacity(
                1 << 20,
                File::open(&self.path)?,
            ))),
            SourceKind::Csv => Box::new(CsvSource::open_dir(&self.path)?),
        })
    }
}

/// A directory tree of mixed-format inputs, enumerated in stable sorted
/// order (see the module docs for the recognition rules).
#[derive(Debug, Clone)]
pub struct MultiSource {
    entries: Vec<SourceEntry>,
}

impl MultiSource {
    /// Enumerate every recognized input under `root` (recursively).
    ///
    /// `root` may also be a single recognized input (a `.pgt`/`.jsonl`
    /// file or a CSV dataset directory), in which case the source holds
    /// exactly that entry. An empty result is not an error here — callers
    /// decide whether an input-less dataset is acceptable.
    pub fn enumerate(root: &Path) -> Result<Self, StreamError> {
        let mut entries = Vec::new();
        if let Some(kind) = recognize(root)? {
            entries.push(SourceEntry {
                path: root.to_path_buf(),
                kind,
            });
        } else if root.is_dir() {
            walk(root, &mut entries)?;
        }
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Self { entries })
    }

    /// The enumerated inputs, sorted by path.
    pub fn entries(&self) -> &[SourceEntry] {
        &self.entries
    }

    /// Number of enumerated inputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether enumeration found no recognized inputs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Balance the entries across `shards` partitions by byte length with
    /// the LPT (longest-processing-time) heuristic: entries are placed
    /// heaviest-first onto the currently lightest shard, so one huge file
    /// no longer serializes a shard the way round-robin dealing did. The
    /// assignment is deterministic — weights come from
    /// [`SourceEntry::byte_len`], ties break on enumeration order, and
    /// each shard keeps its entries in enumeration (path-sorted) order.
    /// Every shard of the same enumeration is produced even if empty, so
    /// shard indexes are stable. Correctness does not depend on the
    /// placement: per-file states are partition-invariant and the fold is
    /// associative+commutative, so any assignment reaches the same merged
    /// state. Panics if `shards` is zero.
    pub fn partition(&self, shards: usize) -> Vec<Vec<SourceEntry>> {
        assert!(shards > 0, "shard count must be positive");
        // Floor at 1 byte so empty files still spread across shards
        // instead of all "fitting" on the first one.
        let weights: Vec<u64> = self.entries.iter().map(|e| e.byte_len().max(1)).collect();
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        // Heaviest first; equal weights keep enumeration order (stable).
        order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
        let mut loads = vec![(0u64, Vec::new()); shards];
        for i in order {
            let lightest = loads
                .iter_mut()
                .min_by_key(|(bytes, _)| *bytes)
                .expect("shards > 0");
            lightest.0 += weights[i];
            lightest.1.push(i);
        }
        loads
            .into_iter()
            .map(|(_, mut idxs)| {
                idxs.sort_unstable();
                idxs.into_iter().map(|i| self.entries[i].clone()).collect()
            })
            .collect()
    }
}

/// Recognize `path` as a single input: a CSV dataset directory or a
/// `.pgt`/`.jsonl` file. `Ok(None)` means "not an input itself" (the
/// caller may still descend into it if it is a directory).
fn recognize(path: &Path) -> Result<Option<SourceKind>, StreamError> {
    let meta = std::fs::metadata(path)?;
    if meta.is_dir() {
        return Ok(if path.join(NODES_FILE).is_file() {
            Some(SourceKind::Csv)
        } else {
            None
        });
    }
    Ok(match path.extension().and_then(|e| e.to_str()) {
        Some("pgt") => Some(SourceKind::Pgt),
        Some("jsonl") => Some(SourceKind::Jsonl),
        _ => None,
    })
}

fn walk(dir: &Path, out: &mut Vec<SourceEntry>) -> Result<(), StreamError> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(kind) = recognize(&path)? {
            out.push(SourceEntry { path, kind });
        } else if path.is_dir() {
            walk(&path, out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pg-hive-multi-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn enumerates_mixed_tree_sorted() {
        let root = tmpdir("tree");
        fs::write(root.join("b.pgt"), "N x Person -\n").unwrap();
        fs::write(root.join("a.jsonl"), "").unwrap();
        fs::write(root.join("notes.txt"), "ignored").unwrap();
        let sub = root.join("sub");
        fs::create_dir_all(&sub).unwrap();
        fs::write(sub.join("c.pgt"), "").unwrap();
        let csvdir = root.join("dump");
        fs::create_dir_all(&csvdir).unwrap();
        fs::write(csvdir.join(NODES_FILE), "id,labels\n").unwrap();
        // A .pgt *inside* a CSV dataset dir must not be enumerated: the
        // directory is one entry and is not descended into.
        fs::write(csvdir.join("stray.pgt"), "").unwrap();

        let ms = MultiSource::enumerate(&root).unwrap();
        let got: Vec<(String, SourceKind)> = ms
            .entries()
            .iter()
            .map(|e| {
                (
                    e.path
                        .strip_prefix(&root)
                        .unwrap()
                        .to_string_lossy()
                        .into_owned(),
                    e.kind,
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("a.jsonl".to_string(), SourceKind::Jsonl),
                ("b.pgt".to_string(), SourceKind::Pgt),
                ("dump".to_string(), SourceKind::Csv),
                ("sub/c.pgt".to_string(), SourceKind::Pgt),
            ]
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn single_file_root_is_one_entry() {
        let root = tmpdir("single");
        let f = root.join("only.pgt");
        fs::write(&f, "N x Person -\n").unwrap();
        let ms = MultiSource::enumerate(&f).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms.entries()[0].kind, SourceKind::Pgt);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn partition_spreads_equal_weights_and_keeps_empty_shards() {
        // Nonexistent paths weigh 0, floored to 1: equal weights place
        // like round-robin (lightest shard, enumeration order).
        let entries: Vec<SourceEntry> = (0..5)
            .map(|i| SourceEntry {
                path: PathBuf::from(format!("{i}.pgt")),
                kind: SourceKind::Pgt,
            })
            .collect();
        let ms = MultiSource {
            entries: entries.clone(),
        };
        let parts = ms.partition(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], vec![entries[0].clone(), entries[3].clone()]);
        assert_eq!(parts[1], vec![entries[1].clone(), entries[4].clone()]);
        assert_eq!(parts[2], vec![entries[2].clone()]);
        let wide = ms.partition(9);
        assert_eq!(wide.iter().filter(|p| p.is_empty()).count(), 4);
    }

    #[test]
    fn partition_balances_by_byte_length() {
        // One huge file plus four small ones across two shards: LPT must
        // isolate the huge file and gather the small ones on the other
        // shard — round-robin would have put two small files behind the
        // huge one.
        let root = tmpdir("lpt");
        fs::write(root.join("a_huge.pgt"), vec![b'#'; 10_000]).unwrap();
        for name in ["b.pgt", "c.pgt", "d.pgt", "e.pgt"] {
            fs::write(root.join(name), vec![b'#'; 100]).unwrap();
        }
        let ms = MultiSource::enumerate(&root).unwrap();
        assert_eq!(ms.len(), 5);
        let parts = ms.partition(2);
        let names = |p: &[SourceEntry]| {
            p.iter()
                .map(|e| e.path.file_name().unwrap().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&parts[0]), vec!["a_huge.pgt"]);
        assert_eq!(names(&parts[1]), vec!["b.pgt", "c.pgt", "d.pgt", "e.pgt"]);
        // CSV dataset weight is nodes.csv + edges.csv.
        let csvdir = root.join("dump");
        fs::create_dir_all(&csvdir).unwrap();
        fs::write(csvdir.join(NODES_FILE), vec![b'#'; 30]).unwrap();
        fs::write(csvdir.join(EDGES_FILE), vec![b'#'; 12]).unwrap();
        let ms = MultiSource::enumerate(&root).unwrap();
        let weight = ms
            .entries()
            .iter()
            .find(|e| e.kind == SourceKind::Csv)
            .unwrap()
            .byte_len();
        assert_eq!(weight, 42);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn entries_open_with_matching_format_names() {
        let root = tmpdir("open");
        fs::write(root.join("g.pgt"), "N x Person -\n").unwrap();
        let ms = MultiSource::enumerate(&root).unwrap();
        let src = ms.entries()[0].open().unwrap();
        assert_eq!(src.format_name(), ms.entries()[0].kind.name());
        fs::remove_dir_all(&root).unwrap();
    }
}
