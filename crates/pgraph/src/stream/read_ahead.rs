//! Read-ahead: overlap parsing/chunking with downstream consumption.
//!
//! [`ChunkedTextReader`] is a pull API — the discovery pipeline parses chunk
//! N+1 only after it finished processing chunk N, so the CPU idles during
//! I/O and the disk idles during clustering. The types here move the
//! producer side onto a dedicated thread and hand results over through a
//! *bounded* channel, so at most `depth` chunks (or record batches) are ever
//! in flight and resident memory stays O(depth × chunk):
//!
//! - [`ReadAheadChunks`] — drives any [`GraphSource`] through a
//!   [`ChunkedTextReader`] on a background thread; the consumer pulls
//!   ready-made [`PropertyGraph`] chunks. This is the producer stage of the
//!   pipeline-parallel streaming engine (see
//!   `pg_hive_core::Discoverer::discover_stream_parallel`).
//! - [`ReadAheadRecords`] — the record-level equivalent: parses
//!   [`Record`]s ahead of a single-pass consumer (e.g. streaming stats
//!   folding) and re-exposes them as a [`GraphSource`].
//!
//! Both propagate the first [`StreamError`] to the consumer, deliver the
//! final [`StreamSummary`] (warnings, peak residency, chunk count) after the
//! last item, and shut the producer down promptly when the consumer is
//! dropped early — the producer's blocked `send` fails as soon as the
//! receiving half disappears, so no thread leaks and no deadlock occurs.
//!
//! ```
//! use pg_hive_graph::stream::pgt::PgtSource;
//! use pg_hive_graph::stream::ReadAheadChunks;
//!
//! let text = "N a Person name=Ann\nN b Org url=x.com\nE a b WORKS_AT -\n";
//! let mut chunks = ReadAheadChunks::spawn(PgtSource::new(text.as_bytes()), 2, 4);
//! let mut elements = 0;
//! while let Some(chunk) = chunks.next_chunk().unwrap() {
//!     elements += chunk.node_count() + chunk.edge_count(); // parsed ahead
//! }
//! // 3 declared elements + 2 label-carrying stubs for the edge whose
//! // endpoints landed in the previous chunk.
//! assert_eq!(elements, 5);
//! assert!(chunks.summary().unwrap().warnings.cross_chunk_edges > 0);
//! ```

use super::raw::{RawGraphSource, RecordBuf};
use super::{ChunkedTextReader, GraphSource, Record, StreamError, StreamWarnings};
use crate::graph::PropertyGraph;
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

/// Records handed over per channel message by [`ReadAheadRecords`] — large
/// enough to amortize channel synchronization, small enough to keep the
/// pipeline responsive.
const RECORD_BATCH: usize = 1024;

/// Final accounting of a finished read-ahead producer: what
/// [`ChunkedTextReader::warnings`], [`ChunkedTextReader::max_resident_elements`]
/// and [`ChunkedTextReader::chunks_emitted`] would have reported, carried
/// across the thread boundary once the stream is exhausted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Counted non-fatal ingestion conditions (final values).
    pub warnings: StreamWarnings,
    /// Largest `node_count + edge_count` of any emitted chunk.
    pub max_resident_elements: usize,
    /// Number of chunks emitted.
    pub chunks: usize,
}

enum ChunkMsg {
    Chunk(PropertyGraph),
    Done(StreamSummary),
    Failed(StreamError),
}

/// A [`ChunkedTextReader`] running on a dedicated producer thread, feeding a
/// bounded channel of ready chunks (see the [module docs](self)).
pub struct ReadAheadChunks {
    rx: Option<Receiver<ChunkMsg>>,
    handle: Option<JoinHandle<()>>,
    summary: Option<StreamSummary>,
    format: &'static str,
}

impl ReadAheadChunks {
    /// Spawn a producer thread chunking `source` into ~`chunk_size`-element
    /// graphs, buffering up to `depth` parsed chunks ahead of the consumer
    /// (`depth` is clamped to ≥ 1).
    pub fn spawn<S>(source: S, chunk_size: usize, depth: usize) -> Self
    where
        S: RawGraphSource + Send + 'static,
    {
        let format = source.format_name();
        let (tx, rx) = sync_channel(depth.max(1));
        let handle = std::thread::Builder::new()
            .name("pg-hive-read-ahead".into())
            .spawn(move || {
                let mut reader = ChunkedTextReader::new(source, chunk_size);
                loop {
                    match reader.next_chunk() {
                        Ok(Some(g)) => {
                            if tx.send(ChunkMsg::Chunk(g)).is_err() {
                                // Consumer dropped early: stop reading.
                                return;
                            }
                        }
                        Ok(None) => {
                            let _ = tx.send(ChunkMsg::Done(StreamSummary {
                                warnings: reader.warnings(),
                                max_resident_elements: reader.max_resident_elements(),
                                chunks: reader.chunks_emitted(),
                            }));
                            return;
                        }
                        Err(e) => {
                            let _ = tx.send(ChunkMsg::Failed(e));
                            return;
                        }
                    }
                }
            })
            .expect("spawn read-ahead producer thread");
        Self {
            rx: Some(rx),
            handle: Some(handle),
            summary: None,
            format,
        }
    }

    /// Next parsed chunk, or `Ok(None)` once the stream is exhausted —
    /// blocking only when the producer has not read ahead far enough yet.
    /// After `Ok(None)`, [`Self::summary`] is available.
    pub fn next_chunk(&mut self) -> Result<Option<PropertyGraph>, StreamError> {
        let Some(rx) = self.rx.as_ref() else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(ChunkMsg::Chunk(g)) => Ok(Some(g)),
            Ok(ChunkMsg::Done(summary)) => {
                self.summary = Some(summary);
                self.shutdown();
                Ok(None)
            }
            Ok(ChunkMsg::Failed(e)) => {
                self.shutdown();
                Err(e)
            }
            // The producer thread died without a final message (panic).
            Err(_) => {
                self.shutdown();
                Err(StreamError::Io(std::io::Error::other(
                    "read-ahead producer terminated unexpectedly",
                )))
            }
        }
    }

    /// Final accounting, available once [`Self::next_chunk`] returned
    /// `Ok(None)`.
    pub fn summary(&self) -> Option<&StreamSummary> {
        self.summary.as_ref()
    }

    /// Underlying source's format name (`"pgt"`, `"csv"`, `"jsonl"`).
    pub fn format_name(&self) -> &'static str {
        self.format
    }

    fn shutdown(&mut self) {
        // Drop the receiver first: a producer blocked on a full channel
        // fails its `send` and exits instead of deadlocking the join.
        self.rx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReadAheadChunks {
    fn drop(&mut self) {
        self.shutdown();
    }
}

enum RecordMsg {
    Batch(Vec<Record>),
    Done,
    Failed(StreamError),
}

/// A [`GraphSource`] adaptor that parses records on a dedicated producer
/// thread, buffering up to `depth` batches of records (1024 per batch) ahead
/// of the consumer — the record-level sibling of [`ReadAheadChunks`], used
/// by single-pass consumers such as `pg_hive_graph::stats::stream_stats`.
pub struct ReadAheadRecords {
    rx: Option<Receiver<RecordMsg>>,
    handle: Option<JoinHandle<()>>,
    buf: VecDeque<Record>,
    format: &'static str,
}

impl ReadAheadRecords {
    /// Spawn a producer thread draining `source`, with at most `depth`
    /// record batches in flight (`depth` is clamped to ≥ 1).
    pub fn spawn<S>(source: S, depth: usize) -> Self
    where
        S: RawGraphSource + Send + 'static,
    {
        let format = source.format_name();
        let (tx, rx) = sync_channel(depth.max(1));
        let handle = std::thread::Builder::new()
            .name("pg-hive-read-ahead-records".into())
            .spawn(move || {
                let mut source = source;
                let mut buf = RecordBuf::new();
                let mut batch = Vec::with_capacity(RECORD_BATCH);
                loop {
                    match source.read_record(&mut buf) {
                        Ok(true) => {
                            batch.push(buf.take_record());
                            if batch.len() == RECORD_BATCH
                                && tx
                                    .send(RecordMsg::Batch(std::mem::take(&mut batch)))
                                    .is_err()
                            {
                                return;
                            }
                        }
                        Ok(false) => {
                            if !batch.is_empty() {
                                let _ = tx.send(RecordMsg::Batch(batch));
                            }
                            let _ = tx.send(RecordMsg::Done);
                            return;
                        }
                        Err(e) => {
                            if !batch.is_empty() {
                                let _ = tx.send(RecordMsg::Batch(batch));
                            }
                            let _ = tx.send(RecordMsg::Failed(e));
                            return;
                        }
                    }
                }
            })
            .expect("spawn read-ahead record producer thread");
        Self {
            rx: Some(rx),
            handle: Some(handle),
            buf: VecDeque::new(),
            format,
        }
    }

    fn shutdown(&mut self) {
        self.rx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl GraphSource for ReadAheadRecords {
    fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        loop {
            if let Some(rec) = self.buf.pop_front() {
                return Ok(Some(rec));
            }
            let Some(rx) = self.rx.as_ref() else {
                return Ok(None);
            };
            match rx.recv() {
                Ok(RecordMsg::Batch(batch)) => {
                    self.buf = batch.into();
                }
                Ok(RecordMsg::Done) => {
                    self.shutdown();
                    return Ok(None);
                }
                Ok(RecordMsg::Failed(e)) => {
                    self.shutdown();
                    return Err(e);
                }
                Err(_) => {
                    self.shutdown();
                    return Err(StreamError::Io(std::io::Error::other(
                        "read-ahead record producer terminated unexpectedly",
                    )));
                }
            }
        }
    }

    fn format_name(&self) -> &'static str {
        self.format
    }
}

impl Drop for ReadAheadRecords {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::super::pgt::PgtSource;
    use super::*;

    fn dataset(nodes: usize) -> String {
        let mut text = String::new();
        for i in 0..nodes {
            text.push_str(&format!("N n{i} Person name=p{i}\n"));
        }
        for i in 1..nodes {
            text.push_str(&format!("E n{i} n0 KNOWS -\n"));
        }
        text
    }

    #[test]
    fn read_ahead_yields_the_same_chunks_as_direct_reading() {
        let text = dataset(100);
        let mut direct = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 16);
        let mut ahead = ReadAheadChunks::spawn(
            PgtSource::new(std::io::Cursor::new(text.clone().into_bytes())),
            16,
            3,
        );
        loop {
            let a = direct.next_chunk().unwrap();
            let b = ahead.next_chunk().unwrap();
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.node_count(), y.node_count());
                    assert_eq!(x.edge_count(), y.edge_count());
                }
                (a, b) => panic!(
                    "chunk sequences diverged: direct={:?} ahead={:?}",
                    a.map(|g| g.node_count()),
                    b.map(|g| g.node_count())
                ),
            }
        }
        let s = *ahead.summary().expect("summary after exhaustion");
        assert_eq!(s.warnings, direct.warnings());
        assert_eq!(s.max_resident_elements, direct.max_resident_elements());
        assert_eq!(s.chunks, direct.chunks_emitted());
        assert_eq!(ahead.format_name(), "pgt");
    }

    #[test]
    fn parse_errors_propagate_to_the_consumer() {
        let text = "N a Person -\nBOGUS line\n";
        let mut ahead = ReadAheadChunks::spawn(PgtSource::new(text.as_bytes()), 10, 2);
        let err = loop {
            match ahead.next_chunk() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected a parse error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, StreamError::Parse { line: 2, .. }), "{err}");
        // After an error the reader is terminal.
        assert!(ahead.next_chunk().unwrap().is_none());
    }

    #[test]
    fn dropping_the_consumer_early_does_not_hang() {
        // Plenty of chunks, tiny channel: the producer will block on send;
        // dropping the consumer must unblock and join it.
        let text = dataset(2_000);
        let mut ahead = ReadAheadChunks::spawn(
            PgtSource::new(std::io::Cursor::new(text.into_bytes())),
            8,
            1,
        );
        let first = ahead.next_chunk().unwrap();
        assert!(first.is_some());
        drop(ahead); // must not deadlock
    }

    #[test]
    fn record_read_ahead_preserves_the_record_sequence() {
        let text = dataset(RECORD_BATCH + 37); // force multiple batches
        let mut direct = PgtSource::new(text.as_bytes());
        let mut ahead = ReadAheadRecords::spawn(
            PgtSource::new(std::io::Cursor::new(text.clone().into_bytes())),
            2,
        );
        assert_eq!(ahead.format_name(), "pgt");
        loop {
            let a = direct.next_record().unwrap();
            let b = ahead.next_record().unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn record_read_ahead_delivers_prefix_then_error() {
        let text = "N a Person -\nN b Person -\n???\n";
        let mut ahead = ReadAheadRecords::spawn(PgtSource::new(text.as_bytes()), 2);
        assert!(ahead.next_record().unwrap().is_some());
        assert!(ahead.next_record().unwrap().is_some());
        assert!(ahead.next_record().is_err());
        // Terminal after the error.
        assert!(ahead.next_record().unwrap().is_none());
    }

    #[test]
    fn summary_defaults_are_zero() {
        let s = StreamSummary::default();
        assert_eq!(s.chunks, 0);
        assert!(s.warnings.is_empty());
    }
}
