//! JSON-Lines ingestion and export: one node or edge object per line, the
//! shape of `neo4j-admin` / APOC style JSON dumps.
//!
//! # Format
//!
//! ```text
//! {"type":"node","id":"n0","labels":["Person"],"props":{"name":"Ann","age":30}}
//! {"type":"edge","src":"n0","tgt":"n1","labels":["KNOWS"],"props":{"since":2020}}
//! ```
//!
//! `labels` and `props` are optional (default empty). Property values may
//! be JSON numbers, booleans or strings; strings (and the raw text of
//! numbers) are re-parsed with [`Value::parse_lexical`], so `"1999-12-19"`
//! becomes a date and `"42"` an integer — identical typing semantics to the
//! `.pgt` and CSV loaders. `null` values mean *absent*; nested arrays or
//! objects are rejected.
//!
//! The vendored `serde` subset has no JSON support (this workspace builds
//! offline), so a minimal recursive-descent parser lives here.

use super::raw::{RawGraphSource, RecordBuf, RecordKind, Span};
use super::{GraphSource, Record, StreamError};
use crate::graph::PropertyGraph;
use crate::value::Value;
use std::io::BufRead;

/// Streaming source over a JSON-Lines dump.
///
/// Parses **zero-copy** through [`RawGraphSource`]: instead of building a
/// JSON value tree per line, the record fields pg-hive cares about are
/// decoded straight into the caller's [`RecordBuf`] and everything else is
/// skipped (syntax-checked but never materialized). The owned
/// [`GraphSource`] impl remains as a compatibility shim.
pub struct JsonlSource<R> {
    reader: R,
    line: u64,
    /// Reused physical-line scratch.
    linebuf: String,
    /// Reused object-key decode scratch.
    keybuf: String,
    /// Reused string-value decode scratch.
    valbuf: String,
    /// Scratch buffer backing the owned [`GraphSource`] shim only.
    shim: RecordBuf,
}

impl<R: BufRead> JsonlSource<R> {
    /// Source over any buffered reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            line: 0,
            linebuf: String::new(),
            keybuf: String::new(),
            valbuf: String::new(),
            shim: RecordBuf::new(),
        }
    }
}

impl<R: BufRead> RawGraphSource for JsonlSource<R> {
    fn read_record(&mut self, buf: &mut RecordBuf) -> Result<bool, StreamError> {
        loop {
            buf.clear();
            self.linebuf.clear();
            if self.reader.read_line(&mut self.linebuf)? == 0 {
                return Ok(false);
            }
            self.line += 1;
            let trimmed = self.linebuf.trim();
            if trimmed.is_empty() {
                continue;
            }
            return match parse_record_into(trimmed, buf, &mut self.keybuf, &mut self.valbuf) {
                Ok(()) => Ok(true),
                Err(msg) => Err(StreamError::Parse {
                    line: self.line,
                    msg,
                }),
            };
        }
    }

    fn format_name(&self) -> &'static str {
        "jsonl"
    }
}

impl<R: BufRead> GraphSource for JsonlSource<R> {
    fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        let mut buf = std::mem::take(&mut self.shim);
        let result = self.read_record(&mut buf);
        let rec = match result {
            Ok(true) => Some(buf.take_record()),
            Ok(false) => None,
            Err(e) => {
                self.shim = buf;
                return Err(e);
            }
        };
        self.shim = buf;
        Ok(rec)
    }

    fn format_name(&self) -> &'static str {
        "jsonl"
    }
}

/// Serialize a graph as JSON-Lines, the inverse of [`JsonlSource`] (node
/// ids are `n<index>` as in [`crate::loader::save_text`]).
pub fn save_jsonl(g: &PropertyGraph) -> String {
    let mut out = String::new();
    for (id, n) in g.nodes() {
        out.push_str(&format!("{{\"type\":\"node\",\"id\":\"n{}\"", id.0));
        push_labels(g, &mut out, &n.labels);
        push_props(g, &mut out, &n.props);
        out.push_str("}\n");
    }
    for (_, e) in g.edges() {
        out.push_str(&format!(
            "{{\"type\":\"edge\",\"src\":\"n{}\",\"tgt\":\"n{}\"",
            e.src.0, e.tgt.0
        ));
        push_labels(g, &mut out, &e.labels);
        push_props(g, &mut out, &e.props);
        out.push_str("}\n");
    }
    out
}

fn push_labels(g: &PropertyGraph, out: &mut String, labels: &[crate::Symbol]) {
    out.push_str(",\"labels\":[");
    for (i, &l) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(g.label_str(l)));
    }
    out.push(']');
}

fn push_props(g: &PropertyGraph, out: &mut String, props: &[(crate::Symbol, Value)]) {
    out.push_str(",\"props\":{");
    for (i, (k, v)) in props.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(g.key_str(*k)));
        out.push(':');
        match v {
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) if x.is_finite() => out.push_str(&v.lexical()),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            // Dates, timestamps, strings — and non-finite floats, which
            // JSON cannot represent as numbers — go through their lexical
            // form, which `parse_lexical` maps back to the same kind.
            _ => out.push_str(&json_string(&v.lexical())),
        }
    }
    out.push('}');
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `"type"` field of the line being parsed.
enum TypeField {
    Missing,
    NonString,
    Node,
    Edge,
    Other(String),
}

/// Known top-level record fields (anything else is skipped).
enum Field {
    Type,
    Id,
    Src,
    Tgt,
    Labels,
    Props,
    Other,
}

/// Parse one JSON-Lines record from `src` into `buf`.
///
/// Single streaming pass, no value tree: `id`/`src`/`tgt`, label strings
/// and property keys are decoded straight into `buf`'s backing text;
/// unknown fields (and later duplicates of known ones — first wins, as
/// before) are syntax-checked and discarded. Semantic errors (bad `labels`
/// shape, nested property values, unknown type) are *deferred* to the end
/// of the line and reported in the same precedence order as the old
/// tree-building parser: syntax > trailing text > `type` > `labels` >
/// `props` > missing id fields.
fn parse_record_into(
    src: &str,
    buf: &mut RecordBuf,
    key: &mut String,
    scratch: &mut String,
) -> Result<(), String> {
    let mut p = RawParser {
        chars: src.char_indices().peekable(),
        src,
    };
    p.skip_ws();
    if !matches!(p.chars.peek(), Some((_, '{'))) {
        // Not an object. Still run the syntax and trailing-text checks so
        // malformed lines keep their parser-level errors.
        p.skip_value(scratch)?;
        p.skip_ws();
        if let Some(&(i, c)) = p.chars.peek() {
            return Err(format!("trailing '{c}' at byte {i}"));
        }
        return Err("expected a JSON object per line".into());
    }

    let mut ty = TypeField::Missing;
    let mut id: Option<Span> = None;
    let mut src_span: Option<Span> = None;
    let mut tgt_span: Option<Span> = None;
    let (mut seen_type, mut seen_id, mut seen_src) = (false, false, false);
    let (mut seen_tgt, mut seen_labels, mut seen_props) = (false, false, false);
    let mut labels_err: Option<String> = None;
    let mut props_err: Option<String> = None;

    p.expect('{')?;
    p.skip_ws();
    if matches!(p.chars.peek(), Some((_, '}'))) {
        p.chars.next();
    } else {
        loop {
            p.skip_ws();
            key.clear();
            p.string_into(key)?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let field = match key.as_str() {
                "type" if !seen_type => Field::Type,
                "id" if !seen_id => Field::Id,
                "src" if !seen_src => Field::Src,
                "tgt" if !seen_tgt => Field::Tgt,
                "labels" if !seen_labels => Field::Labels,
                "props" if !seen_props => Field::Props,
                _ => Field::Other,
            };
            match field {
                Field::Type => {
                    seen_type = true;
                    if matches!(p.chars.peek(), Some((_, '"'))) {
                        scratch.clear();
                        p.string_into(scratch)?;
                        ty = match scratch.as_str() {
                            "node" => TypeField::Node,
                            "edge" => TypeField::Edge,
                            other => TypeField::Other(other.to_string()),
                        };
                    } else {
                        p.skip_value(scratch)?;
                        ty = TypeField::NonString;
                    }
                }
                Field::Id => {
                    seen_id = true;
                    id = p.id_string(buf, scratch)?;
                }
                Field::Src => {
                    seen_src = true;
                    src_span = p.id_string(buf, scratch)?;
                }
                Field::Tgt => {
                    seen_tgt = true;
                    tgt_span = p.id_string(buf, scratch)?;
                }
                Field::Labels => {
                    seen_labels = true;
                    labels_err = p.labels_into(buf, scratch)?;
                }
                Field::Props => {
                    seen_props = true;
                    props_err = p.props_into(buf, key, scratch)?;
                }
                Field::Other => p.skip_value(scratch)?,
            }
            p.skip_ws();
            match p.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                Some((i, c)) => return Err(format!("expected ',' or '}}', got '{c}' at byte {i}")),
                None => return Err("unterminated object".into()),
            }
        }
    }
    p.skip_ws();
    if let Some(&(i, c)) = p.chars.peek() {
        return Err(format!("trailing '{c}' at byte {i}"));
    }

    if matches!(ty, TypeField::Missing | TypeField::NonString) {
        return Err("missing string field \"type\"".into());
    }
    if let Some(m) = labels_err {
        return Err(m);
    }
    if let Some(m) = props_err {
        return Err(m);
    }
    match ty {
        TypeField::Node => {
            buf.kind = RecordKind::Node;
            buf.id = id.ok_or_else(|| "missing string field \"id\"".to_string())?;
        }
        TypeField::Edge => {
            buf.kind = RecordKind::Edge;
            buf.id = src_span.ok_or_else(|| "missing string field \"src\"".to_string())?;
            buf.tgt = tgt_span.ok_or_else(|| "missing string field \"tgt\"".to_string())?;
        }
        TypeField::Other(other) => return Err(format!("unknown record type \"{other}\"")),
        TypeField::Missing | TypeField::NonString => unreachable!(),
    }
    Ok(())
}

/// Streaming JSON scanner over one line. Same grammar and error messages
/// as the old tree parser, but strings decode into caller-provided buffers
/// and skipped values are never materialized.
struct RawParser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

enum Kw {
    True,
    False,
    Null,
}

impl<'a> RawParser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, ' ' | '\t' | '\n' | '\r'))) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}', got '{c}' at byte {i}")),
            None => Err(format!("expected '{want}', got end of input")),
        }
    }

    /// An id-position value: a non-empty string decodes into `buf`'s text
    /// and yields a span; anything else is skipped and yields `None` (the
    /// "missing string field" diagnosis happens at end of line).
    fn id_string(
        &mut self,
        buf: &mut RecordBuf,
        scratch: &mut String,
    ) -> Result<Option<Span>, String> {
        if matches!(self.chars.peek(), Some((_, '"'))) {
            let start = buf.text.len() as u32;
            self.string_into(&mut buf.text)?;
            let len = buf.text.len() as u32 - start;
            Ok((len > 0).then_some((start, len)))
        } else {
            self.skip_value(scratch)?;
            Ok(None)
        }
    }

    /// The `labels` value. Returns the deferred semantic error, if any.
    fn labels_into(
        &mut self,
        buf: &mut RecordBuf,
        scratch: &mut String,
    ) -> Result<Option<String>, String> {
        match self.chars.peek().copied() {
            Some((_, '[')) => {
                let mut err = None;
                self.chars.next();
                self.skip_ws();
                if matches!(self.chars.peek(), Some((_, ']'))) {
                    self.chars.next();
                    return Ok(err);
                }
                loop {
                    self.skip_ws();
                    if matches!(self.chars.peek(), Some((_, '"'))) {
                        let start = buf.text.len() as u32;
                        self.string_into(&mut buf.text)?;
                        buf.labels.push((start, buf.text.len() as u32 - start));
                    } else {
                        self.skip_value(scratch)?;
                        err.get_or_insert_with(|| "\"labels\" must hold strings".to_string());
                    }
                    self.skip_ws();
                    match self.chars.next() {
                        Some((_, ',')) => continue,
                        Some((_, ']')) => return Ok(err),
                        Some((i, c)) => {
                            return Err(format!("expected ',' or ']', got '{c}' at byte {i}"))
                        }
                        None => return Err("unterminated array".into()),
                    }
                }
            }
            Some((_, 'n')) => match self.keyword()? {
                Kw::Null => Ok(None),
                _ => Ok(Some("\"labels\" must be an array".into())),
            },
            _ => {
                self.skip_value(scratch)?;
                Ok(Some("\"labels\" must be an array".into()))
            }
        }
    }

    /// The `props` value: each pair's key decodes into `buf`'s text and
    /// its value parses to a [`Value`] (duplicate keys push both pairs,
    /// `null` means absent — both as before). Returns the deferred
    /// semantic error, if any.
    fn props_into(
        &mut self,
        buf: &mut RecordBuf,
        key: &mut String,
        scratch: &mut String,
    ) -> Result<Option<String>, String> {
        match self.chars.peek().copied() {
            Some((_, '{')) => {
                let mut err = None;
                self.chars.next();
                self.skip_ws();
                if matches!(self.chars.peek(), Some((_, '}'))) {
                    self.chars.next();
                    return Ok(err);
                }
                loop {
                    self.skip_ws();
                    key.clear();
                    self.string_into(key)?;
                    self.skip_ws();
                    self.expect(':')?;
                    self.skip_ws();
                    match self.chars.peek().copied() {
                        Some((_, '"')) => {
                            scratch.clear();
                            self.string_into(scratch)?;
                            let v = Value::parse_lexical(scratch);
                            let k = buf.push_str(key);
                            buf.props.push((k, v));
                        }
                        Some((_, c)) if c == '-' || c.is_ascii_digit() => {
                            let v = Value::parse_lexical(self.number_raw()?);
                            let k = buf.push_str(key);
                            buf.props.push((k, v));
                        }
                        Some((_, 't' | 'f' | 'n')) => match self.keyword()? {
                            Kw::True => {
                                let k = buf.push_str(key);
                                buf.props.push((k, Value::Bool(true)));
                            }
                            Kw::False => {
                                let k = buf.push_str(key);
                                buf.props.push((k, Value::Bool(false)));
                            }
                            Kw::Null => {}
                        },
                        Some((_, '{' | '[')) => {
                            self.skip_value(scratch)?;
                            err.get_or_insert_with(|| {
                                format!("property \"{key}\": nested arrays/objects unsupported")
                            });
                        }
                        Some((i, c)) => return Err(format!("unexpected '{c}' at byte {i}")),
                        None => return Err("unexpected end of input".into()),
                    }
                    self.skip_ws();
                    match self.chars.next() {
                        Some((_, ',')) => continue,
                        Some((_, '}')) => return Ok(err),
                        Some((i, c)) => {
                            return Err(format!("expected ',' or '}}', got '{c}' at byte {i}"))
                        }
                        None => return Err("unterminated object".into()),
                    }
                }
            }
            Some((_, 'n')) => match self.keyword()? {
                Kw::Null => Ok(None),
                _ => Ok(Some("\"props\" must be an object".into())),
            },
            _ => {
                self.skip_value(scratch)?;
                Ok(Some("\"props\" must be an object".into()))
            }
        }
    }

    /// Consume any JSON value, validating syntax without materializing it.
    fn skip_value(&mut self, scratch: &mut String) -> Result<(), String> {
        match self.chars.peek().copied() {
            Some((_, '{')) => {
                self.chars.next();
                self.skip_ws();
                if matches!(self.chars.peek(), Some((_, '}'))) {
                    self.chars.next();
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    scratch.clear();
                    self.string_into(scratch)?;
                    self.skip_ws();
                    self.expect(':')?;
                    self.skip_ws();
                    self.skip_value(scratch)?;
                    self.skip_ws();
                    match self.chars.next() {
                        Some((_, ',')) => continue,
                        Some((_, '}')) => return Ok(()),
                        Some((i, c)) => {
                            return Err(format!("expected ',' or '}}', got '{c}' at byte {i}"))
                        }
                        None => return Err("unterminated object".into()),
                    }
                }
            }
            Some((_, '[')) => {
                self.chars.next();
                self.skip_ws();
                if matches!(self.chars.peek(), Some((_, ']'))) {
                    self.chars.next();
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.skip_value(scratch)?;
                    self.skip_ws();
                    match self.chars.next() {
                        Some((_, ',')) => continue,
                        Some((_, ']')) => return Ok(()),
                        Some((i, c)) => {
                            return Err(format!("expected ',' or ']', got '{c}' at byte {i}"))
                        }
                        None => return Err("unterminated array".into()),
                    }
                }
            }
            Some((_, '"')) => {
                scratch.clear();
                self.string_into(scratch)
            }
            Some((_, 't' | 'f' | 'n')) => self.keyword().map(|_| ()),
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number_raw().map(|_| ()),
            Some((i, c)) => Err(format!("unexpected '{c}' at byte {i}")),
            None => Err("unexpected end of input".into()),
        }
    }

    /// Decode a JSON string (escapes, surrogate pairs) appending to `out`.
    fn string_into(&mut self, out: &mut String) -> Result<(), String> {
        self.expect('"')?;
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(()),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'b')) => out.push('\u{0008}'),
                    Some((_, 'f')) => out.push('\u{000C}'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low half.
                            if self.chars.next().map(|(_, c)| c) == Some('\\')
                                && self.chars.next().map(|(_, c)| c) == Some('u')
                            {
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else {
                            hi
                        };
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                    None => return Err("unterminated escape".into()),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some((i, c)) = self.chars.next() else {
                return Err("unterminated \\u escape".into());
            };
            let d = c
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit '{c}' at byte {i}"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    /// Scan a number, returning its raw text (value typing is delegated to
    /// [`Value::parse_lexical`]).
    fn number_raw(&mut self) -> Result<&'a str, String> {
        let start = match self.chars.peek() {
            Some(&(i, _)) => i,
            None => return Err("unexpected end of input".into()),
        };
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        let raw = &self.src[start..end];
        // Validate through the float parser; the raw text is kept.
        raw.parse::<f64>()
            .map_err(|_| format!("bad number '{raw}'"))?;
        Ok(raw)
    }

    fn keyword(&mut self) -> Result<Kw, String> {
        let start = match self.chars.peek() {
            Some(&(i, _)) => i,
            None => return Err("unexpected end of input".into()),
        };
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_alphabetic() {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        match &self.src[start..end] {
            "true" => Ok(Kw::True),
            "false" => Ok(Kw::False),
            "null" => Ok(Kw::Null),
            other => Err(format!("unknown keyword '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_all;
    use crate::{GraphBuilder, ValueKind};

    #[test]
    fn parses_node_and_edge_lines() {
        let text = r#"
{"type":"node","id":"a","labels":["Person"],"props":{"name":"Ann","age":30}}
{"type":"node","id":"b","labels":[],"props":{"bday":"1999-12-19","score":2.5}}
{"type":"edge","src":"a","tgt":"b","labels":["KNOWS"],"props":{"close":true,"gone":null}}
"#;
        let (g, warnings) = read_all(JsonlSource::new(text.as_bytes())).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let age = g.keys().get("age").unwrap();
        assert_eq!(g.nodes().next().unwrap().1.get(age), Some(&Value::Int(30)));
        let bday = g.keys().get("bday").unwrap();
        assert_eq!(
            g.nodes().nth(1).unwrap().1.get(bday).unwrap().kind(),
            ValueKind::Date
        );
        let (_, e) = g.edges().next().unwrap();
        let close = g.keys().get("close").unwrap();
        assert_eq!(e.get(close), Some(&Value::Bool(true)));
        assert!(g.keys().get("gone").is_none(), "null means absent");
    }

    #[test]
    fn jsonl_round_trip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("A \"quoted\" na\\me\nnewline")),
                ("age", Value::Int(30)),
                ("score", Value::Float(2.0)),
            ],
        );
        let o = b.add_node(&["Org"], &[("url", Value::from("x.com"))]);
        b.add_edge(a, o, &["WORKS_AT"], &[("from", Value::Int(2001))]);
        let g = b.finish();
        let text = save_jsonl(&g);
        let (back, warnings) = read_all(JsonlSource::new(text.as_bytes())).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        let name = back.keys().get("name").unwrap();
        assert_eq!(
            back.nodes().next().unwrap().1.get(name),
            Some(&Value::from("A \"quoted\" na\\me\nnewline"))
        );
        let score = back.keys().get("score").unwrap();
        assert_eq!(
            back.nodes().next().unwrap().1.get(score),
            Some(&Value::Float(2.0)),
            "the .0 marker keeps integral floats floats"
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "not json",
            "[1,2]",
            "{\"type\":\"node\"}",
            "{\"type\":\"what\",\"id\":\"a\"}",
            "{\"type\":\"node\",\"id\":\"a\",\"props\":{\"x\":[1]}}",
            "{\"type\":\"node\",\"id\":\"a\"} trailing",
        ] {
            let err = read_all(JsonlSource::new(bad.as_bytes()));
            assert!(err.is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let text = "{\"type\":\"node\",\"id\":\"a\",\"props\":{\"s\":\"\\u00e9\\ud83d\\ude00\"}}\n";
        let (g, _) = read_all(JsonlSource::new(text.as_bytes())).unwrap();
        let s = g.keys().get("s").unwrap();
        assert_eq!(
            g.nodes().next().unwrap().1.get(s),
            Some(&Value::from("é😀"))
        );
    }
}
