//! JSON-Lines ingestion and export: one node or edge object per line, the
//! shape of `neo4j-admin` / APOC style JSON dumps.
//!
//! # Format
//!
//! ```text
//! {"type":"node","id":"n0","labels":["Person"],"props":{"name":"Ann","age":30}}
//! {"type":"edge","src":"n0","tgt":"n1","labels":["KNOWS"],"props":{"since":2020}}
//! ```
//!
//! `labels` and `props` are optional (default empty). Property values may
//! be JSON numbers, booleans or strings; strings (and the raw text of
//! numbers) are re-parsed with [`Value::parse_lexical`], so `"1999-12-19"`
//! becomes a date and `"42"` an integer — identical typing semantics to the
//! `.pgt` and CSV loaders. `null` values mean *absent*; nested arrays or
//! objects are rejected.
//!
//! The vendored `serde` subset has no JSON support (this workspace builds
//! offline), so a minimal recursive-descent parser lives here.

use super::{GraphSource, Record, StreamError};
use crate::graph::PropertyGraph;
use crate::value::Value;
use std::io::BufRead;

/// Streaming source over a JSON-Lines dump.
pub struct JsonlSource<R> {
    reader: R,
    line: u64,
    buf: String,
}

impl<R: BufRead> JsonlSource<R> {
    /// Source over any buffered reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            line: 0,
            buf: String::new(),
        }
    }

    fn parse_err(&self, msg: impl Into<String>) -> StreamError {
        StreamError::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }
}

impl<R: BufRead> GraphSource for JsonlSource<R> {
    fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        loop {
            self.buf.clear();
            if self.reader.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            self.line += 1;
            let trimmed = self.buf.trim();
            if trimmed.is_empty() {
                continue;
            }
            let json = parse_json(trimmed).map_err(|m| self.parse_err(m))?;
            let Json::Obj(fields) = json else {
                return Err(self.parse_err("expected a JSON object per line"));
            };
            let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            let kind = match get("type") {
                Some(Json::Str(s)) => s.clone(),
                _ => return Err(self.parse_err("missing string field \"type\"")),
            };
            let labels = match get("labels") {
                None | Some(Json::Null) => Vec::new(),
                Some(Json::Arr(items)) => {
                    let mut out = Vec::with_capacity(items.len());
                    for it in items {
                        match it {
                            Json::Str(s) => out.push(s.clone()),
                            _ => return Err(self.parse_err("\"labels\" must hold strings")),
                        }
                    }
                    out
                }
                _ => return Err(self.parse_err("\"labels\" must be an array")),
            };
            let props = match get("props") {
                None | Some(Json::Null) => Vec::new(),
                Some(Json::Obj(pairs)) => {
                    let mut out = Vec::with_capacity(pairs.len());
                    for (k, v) in pairs {
                        let value = match v {
                            Json::Str(s) => Value::parse_lexical(s),
                            Json::Num(raw) => Value::parse_lexical(raw),
                            Json::Bool(b) => Value::Bool(*b),
                            Json::Null => continue,
                            _ => {
                                return Err(self.parse_err(format!(
                                    "property \"{k}\": nested arrays/objects unsupported"
                                )))
                            }
                        };
                        out.push((k.clone(), value));
                    }
                    out
                }
                _ => return Err(self.parse_err("\"props\" must be an object")),
            };
            let str_field = |k: &str| -> Result<String, StreamError> {
                match get(k) {
                    Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
                    _ => Err(StreamError::Parse {
                        line: self.line,
                        msg: format!("missing string field \"{k}\""),
                    }),
                }
            };
            return Ok(Some(match kind.as_str() {
                "node" => Record::Node {
                    id: str_field("id")?,
                    labels,
                    props,
                },
                "edge" => Record::Edge {
                    src: str_field("src")?,
                    tgt: str_field("tgt")?,
                    labels,
                    props,
                },
                other => return Err(self.parse_err(format!("unknown record type \"{other}\""))),
            }));
        }
    }

    fn format_name(&self) -> &'static str {
        "jsonl"
    }
}

/// Serialize a graph as JSON-Lines, the inverse of [`JsonlSource`] (node
/// ids are `n<index>` as in [`crate::loader::save_text`]).
pub fn save_jsonl(g: &PropertyGraph) -> String {
    let mut out = String::new();
    for (id, n) in g.nodes() {
        out.push_str(&format!("{{\"type\":\"node\",\"id\":\"n{}\"", id.0));
        push_labels(g, &mut out, &n.labels);
        push_props(g, &mut out, &n.props);
        out.push_str("}\n");
    }
    for (_, e) in g.edges() {
        out.push_str(&format!(
            "{{\"type\":\"edge\",\"src\":\"n{}\",\"tgt\":\"n{}\"",
            e.src.0, e.tgt.0
        ));
        push_labels(g, &mut out, &e.labels);
        push_props(g, &mut out, &e.props);
        out.push_str("}\n");
    }
    out
}

fn push_labels(g: &PropertyGraph, out: &mut String, labels: &[crate::Symbol]) {
    out.push_str(",\"labels\":[");
    for (i, &l) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(g.label_str(l)));
    }
    out.push(']');
}

fn push_props(g: &PropertyGraph, out: &mut String, props: &[(crate::Symbol, Value)]) {
    out.push_str(",\"props\":{");
    for (i, (k, v)) in props.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(g.key_str(*k)));
        out.push(':');
        match v {
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) if x.is_finite() => out.push_str(&v.lexical()),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            // Dates, timestamps, strings — and non-finite floats, which
            // JSON cannot represent as numbers — go through their lexical
            // form, which `parse_lexical` maps back to the same kind.
            _ => out.push_str(&json_string(&v.lexical())),
        }
    }
    out.push('}');
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value tree. Numbers keep their raw text so value typing is
/// delegated to [`Value::parse_lexical`].
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(String),
    Bool(bool),
    Null,
}

/// Parse a complete JSON document (trailing non-whitespace rejected).
fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: s.char_indices().peekable(),
        src: s,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if let Some((i, c)) = p.chars.peek() {
        return Err(format!("trailing '{c}' at byte {i}"));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, ' ' | '\t' | '\n' | '\r'))) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}', got '{c}' at byte {i}")),
            None => Err(format!("expected '{want}', got end of input")),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.chars.peek().copied() {
            Some((_, '{')) => self.object(),
            Some((_, '[')) => self.array(),
            Some((_, '"')) => Ok(Json::Str(self.string()?)),
            Some((_, 't' | 'f' | 'n')) => self.keyword(),
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            Some((i, c)) => Err(format!("unexpected '{c}' at byte {i}")),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(Json::Obj(fields)),
                Some((i, c)) => return Err(format!("expected ',' or '}}', got '{c}' at byte {i}")),
                None => return Err("unterminated object".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, ']')) => return Ok(Json::Arr(items)),
                Some((i, c)) => return Err(format!("expected ',' or ']', got '{c}' at byte {i}")),
                None => return Err("unterminated array".into()),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'b')) => out.push('\u{0008}'),
                    Some((_, 'f')) => out.push('\u{000C}'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low half.
                            if self.chars.next().map(|(_, c)| c) == Some('\\')
                                && self.chars.next().map(|(_, c)| c) == Some('u')
                            {
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else {
                            hi
                        };
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                    None => return Err("unterminated escape".into()),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some((i, c)) = self.chars.next() else {
                return Err("unterminated \\u escape".into());
            };
            let d = c
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit '{c}' at byte {i}"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = match self.chars.peek() {
            Some(&(i, _)) => i,
            None => return Err("unexpected end of input".into()),
        };
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        let raw = &self.src[start..end];
        // Validate through the float parser; the raw text is kept.
        raw.parse::<f64>()
            .map_err(|_| format!("bad number '{raw}'"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn keyword(&mut self) -> Result<Json, String> {
        let start = match self.chars.peek() {
            Some(&(i, _)) => i,
            None => return Err("unexpected end of input".into()),
        };
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_alphabetic() {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        match &self.src[start..end] {
            "true" => Ok(Json::Bool(true)),
            "false" => Ok(Json::Bool(false)),
            "null" => Ok(Json::Null),
            other => Err(format!("unknown keyword '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_all;
    use crate::{GraphBuilder, ValueKind};

    #[test]
    fn parses_node_and_edge_lines() {
        let text = r#"
{"type":"node","id":"a","labels":["Person"],"props":{"name":"Ann","age":30}}
{"type":"node","id":"b","labels":[],"props":{"bday":"1999-12-19","score":2.5}}
{"type":"edge","src":"a","tgt":"b","labels":["KNOWS"],"props":{"close":true,"gone":null}}
"#;
        let (g, warnings) = read_all(JsonlSource::new(text.as_bytes())).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let age = g.keys().get("age").unwrap();
        assert_eq!(g.nodes().next().unwrap().1.get(age), Some(&Value::Int(30)));
        let bday = g.keys().get("bday").unwrap();
        assert_eq!(
            g.nodes().nth(1).unwrap().1.get(bday).unwrap().kind(),
            ValueKind::Date
        );
        let (_, e) = g.edges().next().unwrap();
        let close = g.keys().get("close").unwrap();
        assert_eq!(e.get(close), Some(&Value::Bool(true)));
        assert!(g.keys().get("gone").is_none(), "null means absent");
    }

    #[test]
    fn jsonl_round_trip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("A \"quoted\" na\\me\nnewline")),
                ("age", Value::Int(30)),
                ("score", Value::Float(2.0)),
            ],
        );
        let o = b.add_node(&["Org"], &[("url", Value::from("x.com"))]);
        b.add_edge(a, o, &["WORKS_AT"], &[("from", Value::Int(2001))]);
        let g = b.finish();
        let text = save_jsonl(&g);
        let (back, warnings) = read_all(JsonlSource::new(text.as_bytes())).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 1);
        let name = back.keys().get("name").unwrap();
        assert_eq!(
            back.nodes().next().unwrap().1.get(name),
            Some(&Value::from("A \"quoted\" na\\me\nnewline"))
        );
        let score = back.keys().get("score").unwrap();
        assert_eq!(
            back.nodes().next().unwrap().1.get(score),
            Some(&Value::Float(2.0)),
            "the .0 marker keeps integral floats floats"
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "not json",
            "[1,2]",
            "{\"type\":\"node\"}",
            "{\"type\":\"what\",\"id\":\"a\"}",
            "{\"type\":\"node\",\"id\":\"a\",\"props\":{\"x\":[1]}}",
            "{\"type\":\"node\",\"id\":\"a\"} trailing",
        ] {
            let err = read_all(JsonlSource::new(bad.as_bytes()));
            assert!(err.is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let text = "{\"type\":\"node\",\"id\":\"a\",\"props\":{\"s\":\"\\u00e9\\ud83d\\ude00\"}}\n";
        let (g, _) = read_all(JsonlSource::new(text.as_bytes())).unwrap();
        let s = g.keys().get("s").unwrap();
        assert_eq!(
            g.nodes().next().unwrap().1.get(s),
            Some(&Value::from("é😀"))
        );
    }
}
