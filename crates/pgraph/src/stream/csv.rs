//! CSV ingestion and export: `nodes.csv` + `edges.csv`, the flat-export
//! shape most schema-profiling systems assume (DiScala/Abadi-style
//! relational extraction works from exactly such dumps).
//!
//! # Format
//!
//! `nodes.csv` header: `id,labels,<key>,<key>,...` — `id` and `labels`
//! are required leading columns; every further column names a property
//! key. `edges.csv` header: `src,tgt,labels,<key>,...`.
//!
//! - the `labels` cell holds `;`-separated labels (empty = unlabeled);
//!   label *names* therefore must not contain `;` — the same restriction
//!   the `.pgt` format imposes;
//! - an *unquoted* empty property cell means *absent* (this is what
//!   creates multiple patterns per type, Def. 3.5); a quoted empty cell
//!   (`""`) is a present empty-string value;
//! - values are parsed with [`Value::parse_lexical`], so `42` becomes an
//!   integer and `1999-12-19` a date, exactly like the `.pgt` loader;
//! - RFC 4180 quoting: cells containing `,`, `"`, or newlines are wrapped
//!   in double quotes with inner quotes doubled (quoted cells may span
//!   physical lines).

use super::{GraphSource, Record, StreamError};
use crate::graph::PropertyGraph;
use crate::value::Value;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Name of the node file inside a CSV dataset directory.
pub const NODES_FILE: &str = "nodes.csv";
/// Name of the (optional) edge file inside a CSV dataset directory.
pub const EDGES_FILE: &str = "edges.csv";

/// Streaming source over a `nodes.csv` + `edges.csv` pair. Nodes are
/// yielded first, then edges; the edge half is optional.
pub struct CsvSource<R> {
    nodes: CsvHalf<R>,
    edges: Option<CsvHalf<R>>,
    in_edges: bool,
}

struct CsvHalf<R> {
    reader: R,
    line: u64,
    /// Property-key columns after the fixed leading columns.
    keys: Option<Vec<String>>,
    fixed: usize,
}

impl CsvSource<BufReader<File>> {
    /// Open `<dir>/nodes.csv` (required) and `<dir>/edges.csv` (optional).
    pub fn open_dir(dir: &Path) -> Result<Self, StreamError> {
        let nodes = BufReader::new(File::open(dir.join(NODES_FILE))?);
        let edges_path = dir.join(EDGES_FILE);
        let edges = if edges_path.exists() {
            Some(BufReader::new(File::open(edges_path)?))
        } else {
            None
        };
        Ok(Self::new(nodes, edges))
    }
}

impl<R: BufRead> CsvSource<R> {
    /// Source over in-memory or file readers; `edges` may be `None`.
    pub fn new(nodes: R, edges: Option<R>) -> Self {
        Self {
            nodes: CsvHalf {
                reader: nodes,
                line: 0,
                keys: None,
                fixed: 2,
            },
            edges: edges.map(|reader| CsvHalf {
                reader,
                line: 0,
                keys: None,
                fixed: 3,
            }),
            in_edges: false,
        }
    }
}

impl<R: BufRead> CsvHalf<R> {
    /// Read the header once, checking the fixed leading columns.
    fn ensure_header(&mut self, expect: &[&str]) -> Result<bool, StreamError> {
        if self.keys.is_some() {
            return Ok(true);
        }
        let Some(cells) = read_csv_record(&mut self.reader, &mut self.line)? else {
            return Ok(false); // empty file: no records
        };
        let header: Vec<String> = cells.into_iter().map(|c| c.text).collect();
        if header.len() < expect.len()
            || header[..expect.len()]
                .iter()
                .zip(expect)
                .any(|(got, want)| got != want)
        {
            return Err(StreamError::Parse {
                line: self.line,
                msg: format!(
                    "csv header must start with {}, got {:?}",
                    expect.join(","),
                    header
                ),
            });
        }
        self.keys = Some(header[expect.len()..].to_vec());
        Ok(true)
    }

    /// Next data row, split into (fixed cells, property pairs).
    #[allow(clippy::type_complexity)]
    fn next_row(&mut self) -> Result<Option<(Vec<String>, Vec<(String, Value)>)>, StreamError> {
        let keys = self.keys.as_ref().expect("header read first");
        loop {
            let Some(cells) = read_csv_record(&mut self.reader, &mut self.line)? else {
                return Ok(None);
            };
            // Skip blank rows.
            if cells.iter().all(|c| c.text.is_empty() && !c.quoted) {
                continue;
            }
            if cells.len() > self.fixed + keys.len() {
                return Err(StreamError::Parse {
                    line: self.line,
                    msg: format!(
                        "row has {} cells, header declared {}",
                        cells.len(),
                        self.fixed + keys.len()
                    ),
                });
            }
            let mut fixed: Vec<String> = cells
                .iter()
                .take(self.fixed)
                .map(|c| c.text.clone())
                .collect();
            fixed.resize(self.fixed, String::new());
            let props = keys
                .iter()
                .zip(cells.iter().skip(self.fixed))
                // An unquoted empty cell is an absent property; a quoted
                // empty cell ("") is a present empty string.
                .filter(|(_, cell)| !cell.text.is_empty() || cell.quoted)
                .map(|(k, cell)| (k.clone(), Value::parse_lexical(&cell.text)))
                .collect();
            return Ok(Some((fixed, props)));
        }
    }
}

impl<R: BufRead> GraphSource for CsvSource<R> {
    fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        if !self.in_edges {
            if self.nodes.ensure_header(&["id", "labels"])? {
                if let Some((fixed, props)) = self.nodes.next_row()? {
                    if fixed[0].is_empty() {
                        return Err(StreamError::Parse {
                            line: self.nodes.line,
                            msg: "node row with empty id".into(),
                        });
                    }
                    return Ok(Some(Record::Node {
                        id: fixed[0].clone(),
                        labels: split_labels(&fixed[1]),
                        props,
                    }));
                }
            }
            self.in_edges = true;
        }
        let Some(edges) = self.edges.as_mut() else {
            return Ok(None);
        };
        if !edges.ensure_header(&["src", "tgt", "labels"])? {
            return Ok(None);
        }
        match edges.next_row()? {
            Some((fixed, props)) => {
                if fixed[0].is_empty() || fixed[1].is_empty() {
                    return Err(StreamError::Parse {
                        line: edges.line,
                        msg: "edge row with empty src/tgt".into(),
                    });
                }
                Ok(Some(Record::Edge {
                    src: fixed[0].clone(),
                    tgt: fixed[1].clone(),
                    labels: split_labels(&fixed[2]),
                    props,
                }))
            }
            None => Ok(None),
        }
    }

    fn format_name(&self) -> &'static str {
        "csv"
    }
}

fn split_labels(cell: &str) -> Vec<String> {
    cell.split(';')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// One parsed CSV cell. `quoted` distinguishes `""` (present empty
/// string) from a bare empty cell (absent property).
struct Cell {
    text: String,
    quoted: bool,
}

/// Read one (possibly multi-line, RFC 4180 quoted) CSV record.
fn read_csv_record<R: BufRead>(
    r: &mut R,
    line: &mut u64,
) -> Result<Option<Vec<Cell>>, StreamError> {
    let mut fields: Vec<Cell> = Vec::new();
    let mut cur = String::new();
    let mut cur_quoted = false;
    let mut in_quotes = false;
    let mut started = false;
    let mut buf = String::new();
    let push_field = |cur: &mut String, cur_quoted: &mut bool, fields: &mut Vec<Cell>| {
        fields.push(Cell {
            text: std::mem::take(cur),
            quoted: std::mem::take(cur_quoted),
        });
    };
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            if !started {
                return Ok(None);
            }
            if in_quotes {
                return Err(StreamError::Parse {
                    line: *line,
                    msg: "unterminated quoted csv field".into(),
                });
            }
            push_field(&mut cur, &mut cur_quoted, &mut fields);
            return Ok(Some(fields));
        }
        *line += 1;
        started = true;
        let mut chars = buf.chars().peekable();
        while let Some(c) = chars.next() {
            if in_quotes {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    cur.push(c);
                }
            } else {
                match c {
                    ',' => push_field(&mut cur, &mut cur_quoted, &mut fields),
                    '"' => {
                        in_quotes = true;
                        cur_quoted = true;
                    }
                    '\r' | '\n' => {}
                    other => cur.push(other),
                }
            }
        }
        if !in_quotes {
            push_field(&mut cur, &mut cur_quoted, &mut fields);
            return Ok(Some(fields));
        }
        // Quoted field spans the line break: the newline is part of the
        // value and was pushed above; keep reading physical lines.
    }
}

/// Quote a cell per RFC 4180 when it contains a reserved character.
fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// Serialize the node side of a graph as `nodes.csv` (inverse of the node
/// half of [`CsvSource`]; node ids are `n<index>` as in
/// [`crate::loader::save_text`]).
pub fn save_nodes_csv(g: &PropertyGraph) -> String {
    let keys = sorted_keys(g, true);
    let mut out = String::from("id,labels");
    for k in &keys {
        out.push(',');
        out.push_str(&csv_escape(k));
    }
    out.push('\n');
    for (id, n) in g.nodes() {
        out.push_str(&format!("n{}", id.0));
        out.push(',');
        out.push_str(&csv_escape(&labels_cell(g, &n.labels)));
        push_prop_cells(g, &mut out, &keys, &n.props);
        out.push('\n');
    }
    out
}

/// Serialize the edge side of a graph as `edges.csv`.
pub fn save_edges_csv(g: &PropertyGraph) -> String {
    let keys = sorted_keys(g, false);
    let mut out = String::from("src,tgt,labels");
    for k in &keys {
        out.push(',');
        out.push_str(&csv_escape(k));
    }
    out.push('\n');
    for (_, e) in g.edges() {
        out.push_str(&format!("n{},n{}", e.src.0, e.tgt.0));
        out.push(',');
        out.push_str(&csv_escape(&labels_cell(g, &e.labels)));
        push_prop_cells(g, &mut out, &keys, &e.props);
        out.push('\n');
    }
    out
}

fn sorted_keys(g: &PropertyGraph, nodes: bool) -> Vec<String> {
    let mut keys: std::collections::BTreeSet<String> = Default::default();
    if nodes {
        for (_, n) in g.nodes() {
            for k in n.keys() {
                keys.insert(g.key_str(k).to_string());
            }
        }
    } else {
        for (_, e) in g.edges() {
            for k in e.keys() {
                keys.insert(g.key_str(k).to_string());
            }
        }
    }
    keys.into_iter().collect()
}

fn labels_cell(g: &PropertyGraph, labels: &[crate::Symbol]) -> String {
    labels
        .iter()
        .map(|&l| g.label_str(l))
        .collect::<Vec<_>>()
        .join(";")
}

fn push_prop_cells(
    g: &PropertyGraph,
    out: &mut String,
    keys: &[String],
    props: &[(crate::Symbol, Value)],
) {
    for k in keys {
        out.push(',');
        if let Some(sym) = g.keys().get(k) {
            if let Some((_, v)) = props.iter().find(|(ks, _)| *ks == sym) {
                let lex = v.lexical();
                if lex.is_empty() {
                    // Quoted empty = present empty string; a bare empty
                    // cell would read back as absent.
                    out.push_str("\"\"");
                } else {
                    out.push_str(&csv_escape(&lex));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_all;
    use crate::{GraphBuilder, ValueKind};

    fn demo_graph() -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("Ann, \"the\" 1st")),
                ("age", Value::Int(30)),
            ],
        );
        let c = b.add_node(&[], &[("bday", Value::from("1999-12-19"))]);
        let o = b.add_node(&["Org", "Corp"], &[("url", Value::from("x.com"))]);
        b.add_edge(a, o, &["WORKS_AT"], &[("from", Value::Int(2001))]);
        b.add_edge(c, a, &["KNOWS"], &[]);
        b.finish()
    }

    #[test]
    fn csv_round_trip_preserves_structure() {
        let g = demo_graph();
        let nodes = save_nodes_csv(&g);
        let edges = save_edges_csv(&g);
        let (back, warnings) =
            read_all(CsvSource::new(nodes.as_bytes(), Some(edges.as_bytes()))).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.edge_count(), 2);
        let (_, ann) = back.nodes().next().unwrap();
        let name = back.keys().get("name").unwrap();
        assert_eq!(ann.get(name), Some(&Value::from("Ann, \"the\" 1st")));
        let bday = back.keys().get("bday").unwrap();
        let (_, anon) = back.nodes().nth(1).unwrap();
        assert_eq!(anon.get(bday).unwrap().kind(), ValueKind::Date);
        let (_, org) = back.nodes().nth(2).unwrap();
        assert_eq!(back.label_set_str(&org.labels), "{Corp, Org}");
    }

    #[test]
    fn quoted_cells_may_span_lines() {
        let nodes = "id,labels,note\na,Doc,\"line one\nline two\"\n";
        let (g, _) = read_all(CsvSource::new(nodes.as_bytes(), None)).unwrap();
        let (_, n) = g.nodes().next().unwrap();
        let note = g.keys().get("note").unwrap();
        assert_eq!(n.get(note), Some(&Value::from("line one\nline two")));
    }

    #[test]
    fn empty_cells_mean_absent_properties() {
        let nodes = "id,labels,name,age\na,Person,Ann,30\nb,Person,Bob,\n";
        let (g, _) = read_all(CsvSource::new(nodes.as_bytes(), None)).unwrap();
        let age = g.keys().get("age").unwrap();
        assert!(g.nodes().nth(1).unwrap().1.get(age).is_none());
        assert!(g.nodes().next().unwrap().1.get(age).is_some());
    }

    #[test]
    fn quoted_empty_cells_are_present_empty_strings() {
        // Regression: a present empty-string value used to export as a
        // bare empty cell, which reads back as *absent* and silently
        // changes the node's pattern.
        let mut b = GraphBuilder::new();
        b.add_node(&["Doc"], &[("note", Value::from("")), ("n", Value::Int(1))]);
        b.add_node(&["Doc"], &[("n", Value::Int(2))]);
        let g = b.finish();
        let csv = save_nodes_csv(&g);
        let (back, _) = read_all(CsvSource::new(csv.as_bytes(), None)).unwrap();
        let note = back.keys().get("note").unwrap();
        assert_eq!(
            back.nodes().next().unwrap().1.get(note),
            Some(&Value::from("")),
            "{csv}"
        );
        assert!(back.nodes().nth(1).unwrap().1.get(note).is_none());
    }

    #[test]
    fn bad_header_is_an_error() {
        let nodes = "identifier,labels\na,Person\n";
        let err = read_all(CsvSource::new(nodes.as_bytes(), None)).unwrap_err();
        assert!(matches!(err, StreamError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn short_rows_tolerated_long_rows_rejected() {
        let ok = "id,labels,name\na,Person\n";
        let (g, _) = read_all(CsvSource::new(ok.as_bytes(), None)).unwrap();
        assert_eq!(g.node_count(), 1);
        let bad = "id,labels\na,Person,extra\n";
        assert!(read_all(CsvSource::new(bad.as_bytes(), None)).is_err());
    }

    #[test]
    fn missing_edges_file_means_no_edges() {
        let nodes = "id,labels\na,Person\n";
        let (g, _) = read_all(CsvSource::new(nodes.as_bytes(), None)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }
}
