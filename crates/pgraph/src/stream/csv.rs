//! CSV ingestion and export: `nodes.csv` + `edges.csv`, the flat-export
//! shape most schema-profiling systems assume (DiScala/Abadi-style
//! relational extraction works from exactly such dumps).
//!
//! # Format
//!
//! `nodes.csv` header: `id,labels,<key>,<key>,...` — `id` and `labels`
//! are required leading columns; every further column names a property
//! key. `edges.csv` header: `src,tgt,labels,<key>,...`.
//!
//! - the `labels` cell holds `;`-separated labels (empty = unlabeled);
//!   label *names* therefore must not contain `;` — the same restriction
//!   the `.pgt` format imposes;
//! - an *unquoted* empty property cell means *absent* (this is what
//!   creates multiple patterns per type, Def. 3.5); a quoted empty cell
//!   (`""`) is a present empty-string value;
//! - values are parsed with [`Value::parse_lexical`], so `42` becomes an
//!   integer and `1999-12-19` a date, exactly like the `.pgt` loader;
//! - RFC 4180 quoting: cells containing `,`, `"`, or newlines are wrapped
//!   in double quotes with inner quotes doubled (quoted cells may span
//!   physical lines).

use super::raw::{RawGraphSource, RecordBuf, RecordKind, Span};
use super::{GraphSource, Record, StreamError};
use crate::graph::PropertyGraph;
use crate::value::Value;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Name of the node file inside a CSV dataset directory.
pub const NODES_FILE: &str = "nodes.csv";
/// Name of the (optional) edge file inside a CSV dataset directory.
pub const EDGES_FILE: &str = "edges.csv";

/// Streaming source over a `nodes.csv` + `edges.csv` pair. Nodes are
/// yielded first, then edges; the edge half is optional.
pub struct CsvSource<R> {
    nodes: CsvHalf<R>,
    edges: Option<CsvHalf<R>>,
    in_edges: bool,
    /// Scratch buffer backing the owned [`GraphSource`] shim only.
    shim: RecordBuf,
}

struct CsvHalf<R> {
    reader: R,
    line: u64,
    /// Property-key columns after the fixed leading columns.
    keys: Option<Vec<String>>,
    fixed: usize,
    /// Reused physical-line scratch for the zero-copy row reader.
    linebuf: String,
    /// Cell spans of the current row (into the caller's `RecordBuf` text),
    /// with the RFC 4180 `quoted` flag distinguishing `""` from absent.
    cells: Vec<(Span, bool)>,
}

impl CsvSource<BufReader<File>> {
    /// Open `<dir>/nodes.csv` (required) and `<dir>/edges.csv` (optional).
    pub fn open_dir(dir: &Path) -> Result<Self, StreamError> {
        let nodes = BufReader::with_capacity(1 << 20, File::open(dir.join(NODES_FILE))?);
        let edges_path = dir.join(EDGES_FILE);
        let edges = if edges_path.exists() {
            Some(BufReader::with_capacity(1 << 20, File::open(edges_path)?))
        } else {
            None
        };
        Ok(Self::new(nodes, edges))
    }
}

impl<R: BufRead> CsvSource<R> {
    /// Source over in-memory or file readers; `edges` may be `None`.
    pub fn new(nodes: R, edges: Option<R>) -> Self {
        Self {
            nodes: CsvHalf {
                reader: nodes,
                line: 0,
                keys: None,
                fixed: 2,
                linebuf: String::new(),
                cells: Vec::new(),
            },
            edges: edges.map(|reader| CsvHalf {
                reader,
                line: 0,
                keys: None,
                fixed: 3,
                linebuf: String::new(),
                cells: Vec::new(),
            }),
            in_edges: false,
            shim: RecordBuf::new(),
        }
    }
}

impl<R: BufRead> CsvHalf<R> {
    /// Read the header once, checking the fixed leading columns.
    fn ensure_header(&mut self, expect: &[&str]) -> Result<bool, StreamError> {
        if self.keys.is_some() {
            return Ok(true);
        }
        let Some(header) = read_csv_record(&mut self.reader, &mut self.line)? else {
            return Ok(false); // empty file: no records
        };
        if header.len() < expect.len()
            || header[..expect.len()]
                .iter()
                .zip(expect)
                .any(|(got, want)| got != want)
        {
            return Err(StreamError::Parse {
                line: self.line,
                msg: format!(
                    "csv header must start with {}, got {:?}",
                    expect.join(","),
                    header
                ),
            });
        }
        self.keys = Some(header[expect.len()..].to_vec());
        Ok(true)
    }

    /// Next data row, decoded **into** `buf.text` with cell spans recorded
    /// in `self.cells`. Returns `Ok(false)` at end of file.
    fn next_row_raw(&mut self, buf: &mut RecordBuf) -> Result<bool, StreamError> {
        let keys_len = self.keys.as_ref().expect("header read first").len();
        loop {
            self.cells.clear();
            let mark = buf.text.len();
            if !read_csv_record_raw(
                &mut self.reader,
                &mut self.line,
                &mut self.linebuf,
                &mut buf.text,
                &mut self.cells,
            )? {
                return Ok(false);
            }
            // Skip blank rows.
            if self
                .cells
                .iter()
                .all(|&((_, len), quoted)| len == 0 && !quoted)
            {
                buf.text.truncate(mark);
                continue;
            }
            if self.cells.len() > self.fixed + keys_len {
                return Err(StreamError::Parse {
                    line: self.line,
                    msg: format!(
                        "row has {} cells, header declared {}",
                        self.cells.len(),
                        self.fixed + keys_len
                    ),
                });
            }
            return Ok(true);
        }
    }

    /// Span of the `i`-th cell; missing trailing cells read as empty
    /// (short rows are tolerated, matching the owned path's `resize`).
    fn cell(&self, i: usize) -> Span {
        self.cells.get(i).map_or((0, 0), |&(span, _)| span)
    }

    /// Fill `buf.labels` and `buf.props` from the current row's cells.
    fn fill_buf(&self, buf: &mut RecordBuf, labels_cell: usize) {
        let text = &buf.text;
        let base = text.as_ptr() as usize;
        let (off, len) = self.cell(labels_cell);
        for part in text[off as usize..(off + len) as usize].split(';') {
            if part.is_empty() {
                continue;
            }
            buf.labels
                .push(((part.as_ptr() as usize - base) as u32, part.len() as u32));
        }
        let keys = self.keys.as_ref().expect("header read first");
        for (k, &((off, len), quoted)) in keys.iter().zip(self.cells.iter().skip(self.fixed)) {
            // An unquoted empty cell is an absent property; a quoted
            // empty cell ("") is a present empty string.
            if len == 0 && !quoted {
                continue;
            }
            let value = Value::parse_lexical(&buf.text[off as usize..(off + len) as usize]);
            let key = buf.push_str(k);
            buf.props.push((key, value));
        }
    }
}

impl<R: BufRead> RawGraphSource for CsvSource<R> {
    fn read_record(&mut self, buf: &mut RecordBuf) -> Result<bool, StreamError> {
        buf.clear();
        if !self.in_edges {
            if self.nodes.ensure_header(&["id", "labels"])? && self.nodes.next_row_raw(buf)? {
                let id = self.nodes.cell(0);
                if id.1 == 0 {
                    return Err(StreamError::Parse {
                        line: self.nodes.line,
                        msg: "node row with empty id".into(),
                    });
                }
                buf.kind = RecordKind::Node;
                buf.id = id;
                self.nodes.fill_buf(buf, 1);
                return Ok(true);
            }
            self.in_edges = true;
        }
        let Some(edges) = self.edges.as_mut() else {
            return Ok(false);
        };
        if !edges.ensure_header(&["src", "tgt", "labels"])? {
            return Ok(false);
        }
        if !edges.next_row_raw(buf)? {
            return Ok(false);
        }
        let (src, tgt) = (edges.cell(0), edges.cell(1));
        if src.1 == 0 || tgt.1 == 0 {
            return Err(StreamError::Parse {
                line: edges.line,
                msg: "edge row with empty src/tgt".into(),
            });
        }
        buf.kind = RecordKind::Edge;
        buf.id = src;
        buf.tgt = tgt;
        edges.fill_buf(buf, 2);
        Ok(true)
    }

    fn format_name(&self) -> &'static str {
        "csv"
    }
}

impl<R: BufRead> GraphSource for CsvSource<R> {
    fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        let mut buf = std::mem::take(&mut self.shim);
        let result = self.read_record(&mut buf);
        let rec = match result {
            Ok(true) => Some(buf.take_record()),
            Ok(false) => None,
            Err(e) => {
                self.shim = buf;
                return Err(e);
            }
        };
        self.shim = buf;
        Ok(rec)
    }

    fn format_name(&self) -> &'static str {
        "csv"
    }
}

/// Read one owned (possibly multi-line, RFC 4180 quoted) CSV record — used
/// only for the once-per-file header row; data rows go through the
/// zero-copy [`read_csv_record_raw`].
fn read_csv_record<R: BufRead>(
    r: &mut R,
    line: &mut u64,
) -> Result<Option<Vec<String>>, StreamError> {
    let mut text = String::new();
    let mut cells: Vec<(Span, bool)> = Vec::new();
    let mut linebuf = String::new();
    if !read_csv_record_raw(r, line, &mut linebuf, &mut text, &mut cells)? {
        return Ok(None);
    }
    Ok(Some(
        cells
            .into_iter()
            .map(|((off, len), _)| text[off as usize..(off + len) as usize].to_string())
            .collect(),
    ))
}

/// Zero-copy counterpart of [`read_csv_record`]: decodes cell text straight
/// into `text` (a [`RecordBuf`]'s backing string) and records `(span,
/// quoted)` pairs in `cells`. Only `linebuf` is refilled per physical line;
/// steady-state reading performs no allocations.
fn read_csv_record_raw<R: BufRead>(
    r: &mut R,
    line: &mut u64,
    linebuf: &mut String,
    text: &mut String,
    cells: &mut Vec<(Span, bool)>,
) -> Result<bool, StreamError> {
    let mut start = text.len() as u32;
    let mut cur_quoted = false;
    let mut in_quotes = false;
    let mut started = false;
    loop {
        linebuf.clear();
        if r.read_line(linebuf)? == 0 {
            if !started {
                return Ok(false);
            }
            if in_quotes {
                return Err(StreamError::Parse {
                    line: *line,
                    msg: "unterminated quoted csv field".into(),
                });
            }
            cells.push(((start, text.len() as u32 - start), cur_quoted));
            return Ok(true);
        }
        *line += 1;
        started = true;
        let mut chars = linebuf.chars().peekable();
        while let Some(c) = chars.next() {
            if in_quotes {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        text.push('"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    text.push(c);
                }
            } else {
                match c {
                    ',' => {
                        cells.push(((start, text.len() as u32 - start), cur_quoted));
                        start = text.len() as u32;
                        cur_quoted = false;
                    }
                    '"' => {
                        in_quotes = true;
                        cur_quoted = true;
                    }
                    '\r' | '\n' => {}
                    other => text.push(other),
                }
            }
        }
        if !in_quotes {
            cells.push(((start, text.len() as u32 - start), cur_quoted));
            return Ok(true);
        }
        // Quoted field spans the line break; keep reading physical lines.
    }
}

/// Quote a cell per RFC 4180 when it contains a reserved character.
fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// Serialize the node side of a graph as `nodes.csv` (inverse of the node
/// half of [`CsvSource`]; node ids are `n<index>` as in
/// [`crate::loader::save_text`]).
pub fn save_nodes_csv(g: &PropertyGraph) -> String {
    let keys = sorted_keys(g, true);
    let mut out = String::from("id,labels");
    for k in &keys {
        out.push(',');
        out.push_str(&csv_escape(k));
    }
    out.push('\n');
    for (id, n) in g.nodes() {
        out.push_str(&format!("n{}", id.0));
        out.push(',');
        out.push_str(&csv_escape(&labels_cell(g, &n.labels)));
        push_prop_cells(g, &mut out, &keys, &n.props);
        out.push('\n');
    }
    out
}

/// Serialize the edge side of a graph as `edges.csv`.
pub fn save_edges_csv(g: &PropertyGraph) -> String {
    let keys = sorted_keys(g, false);
    let mut out = String::from("src,tgt,labels");
    for k in &keys {
        out.push(',');
        out.push_str(&csv_escape(k));
    }
    out.push('\n');
    for (_, e) in g.edges() {
        out.push_str(&format!("n{},n{}", e.src.0, e.tgt.0));
        out.push(',');
        out.push_str(&csv_escape(&labels_cell(g, &e.labels)));
        push_prop_cells(g, &mut out, &keys, &e.props);
        out.push('\n');
    }
    out
}

fn sorted_keys(g: &PropertyGraph, nodes: bool) -> Vec<String> {
    let mut keys: std::collections::BTreeSet<String> = Default::default();
    if nodes {
        for (_, n) in g.nodes() {
            for k in n.keys() {
                keys.insert(g.key_str(k).to_string());
            }
        }
    } else {
        for (_, e) in g.edges() {
            for k in e.keys() {
                keys.insert(g.key_str(k).to_string());
            }
        }
    }
    keys.into_iter().collect()
}

fn labels_cell(g: &PropertyGraph, labels: &[crate::Symbol]) -> String {
    labels
        .iter()
        .map(|&l| g.label_str(l))
        .collect::<Vec<_>>()
        .join(";")
}

fn push_prop_cells(
    g: &PropertyGraph,
    out: &mut String,
    keys: &[String],
    props: &[(crate::Symbol, Value)],
) {
    for k in keys {
        out.push(',');
        if let Some(sym) = g.keys().get(k) {
            if let Some((_, v)) = props.iter().find(|(ks, _)| *ks == sym) {
                let lex = v.lexical();
                if lex.is_empty() {
                    // Quoted empty = present empty string; a bare empty
                    // cell would read back as absent.
                    out.push_str("\"\"");
                } else {
                    out.push_str(&csv_escape(&lex));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_all;
    use crate::{GraphBuilder, ValueKind};

    fn demo_graph() -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(
            &["Person"],
            &[
                ("name", Value::from("Ann, \"the\" 1st")),
                ("age", Value::Int(30)),
            ],
        );
        let c = b.add_node(&[], &[("bday", Value::from("1999-12-19"))]);
        let o = b.add_node(&["Org", "Corp"], &[("url", Value::from("x.com"))]);
        b.add_edge(a, o, &["WORKS_AT"], &[("from", Value::Int(2001))]);
        b.add_edge(c, a, &["KNOWS"], &[]);
        b.finish()
    }

    #[test]
    fn csv_round_trip_preserves_structure() {
        let g = demo_graph();
        let nodes = save_nodes_csv(&g);
        let edges = save_edges_csv(&g);
        let (back, warnings) =
            read_all(CsvSource::new(nodes.as_bytes(), Some(edges.as_bytes()))).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.edge_count(), 2);
        let (_, ann) = back.nodes().next().unwrap();
        let name = back.keys().get("name").unwrap();
        assert_eq!(ann.get(name), Some(&Value::from("Ann, \"the\" 1st")));
        let bday = back.keys().get("bday").unwrap();
        let (_, anon) = back.nodes().nth(1).unwrap();
        assert_eq!(anon.get(bday).unwrap().kind(), ValueKind::Date);
        let (_, org) = back.nodes().nth(2).unwrap();
        assert_eq!(back.label_set_str(&org.labels), "{Corp, Org}");
    }

    #[test]
    fn quoted_cells_may_span_lines() {
        let nodes = "id,labels,note\na,Doc,\"line one\nline two\"\n";
        let (g, _) = read_all(CsvSource::new(nodes.as_bytes(), None)).unwrap();
        let (_, n) = g.nodes().next().unwrap();
        let note = g.keys().get("note").unwrap();
        assert_eq!(n.get(note), Some(&Value::from("line one\nline two")));
    }

    #[test]
    fn empty_cells_mean_absent_properties() {
        let nodes = "id,labels,name,age\na,Person,Ann,30\nb,Person,Bob,\n";
        let (g, _) = read_all(CsvSource::new(nodes.as_bytes(), None)).unwrap();
        let age = g.keys().get("age").unwrap();
        assert!(g.nodes().nth(1).unwrap().1.get(age).is_none());
        assert!(g.nodes().next().unwrap().1.get(age).is_some());
    }

    #[test]
    fn quoted_empty_cells_are_present_empty_strings() {
        // Regression: a present empty-string value used to export as a
        // bare empty cell, which reads back as *absent* and silently
        // changes the node's pattern.
        let mut b = GraphBuilder::new();
        b.add_node(&["Doc"], &[("note", Value::from("")), ("n", Value::Int(1))]);
        b.add_node(&["Doc"], &[("n", Value::Int(2))]);
        let g = b.finish();
        let csv = save_nodes_csv(&g);
        let (back, _) = read_all(CsvSource::new(csv.as_bytes(), None)).unwrap();
        let note = back.keys().get("note").unwrap();
        assert_eq!(
            back.nodes().next().unwrap().1.get(note),
            Some(&Value::from("")),
            "{csv}"
        );
        assert!(back.nodes().nth(1).unwrap().1.get(note).is_none());
    }

    #[test]
    fn bad_header_is_an_error() {
        let nodes = "identifier,labels\na,Person\n";
        let err = read_all(CsvSource::new(nodes.as_bytes(), None)).unwrap_err();
        assert!(matches!(err, StreamError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn short_rows_tolerated_long_rows_rejected() {
        let ok = "id,labels,name\na,Person\n";
        let (g, _) = read_all(CsvSource::new(ok.as_bytes(), None)).unwrap();
        assert_eq!(g.node_count(), 1);
        let bad = "id,labels\na,Person,extra\n";
        assert!(read_all(CsvSource::new(bad.as_bytes(), None)).is_err());
    }

    #[test]
    fn missing_edges_file_means_no_edges() {
        let nodes = "id,labels\na,Person\n";
        let (g, _) = read_all(CsvSource::new(nodes.as_bytes(), None)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }
}
