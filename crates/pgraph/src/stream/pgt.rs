//! Streaming source for the line-oriented `.pgt` text format of
//! [`crate::loader`] — same grammar, same percent-encoding, but reads one
//! record at a time from any [`BufRead`] instead of a full in-memory string.

use super::raw::{RawGraphSource, RecordBuf};
use super::{GraphSource, Record, StreamError};
use crate::loader::parse_line_into;
use std::io::BufRead;

/// Record-at-a-time reader of the `.pgt` format.
///
/// Parses **zero-copy** through [`RawGraphSource`]: each line is read into
/// the caller's [`RecordBuf`] and fields are recorded as spans, so steady-
/// state parsing performs no per-record allocations. The owned
/// [`GraphSource`] impl remains as a compatibility shim.
pub struct PgtSource<R> {
    reader: R,
    line: u64,
    /// Scratch buffer backing the owned [`GraphSource`] shim only.
    shim: RecordBuf,
}

impl<R: BufRead> PgtSource<R> {
    /// Source over any buffered reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            line: 0,
            shim: RecordBuf::new(),
        }
    }
}

impl<R: BufRead> RawGraphSource for PgtSource<R> {
    fn read_record(&mut self, buf: &mut RecordBuf) -> Result<bool, StreamError> {
        loop {
            buf.clear();
            if self.reader.read_line(&mut buf.text)? == 0 {
                return Ok(false);
            }
            self.line += 1;
            match parse_line_into(self.line as usize, buf) {
                Ok(true) => return Ok(true),
                Ok(false) => continue,
                Err(e) => {
                    return Err(StreamError::Parse {
                        line: self.line,
                        msg: e.to_string(),
                    })
                }
            }
        }
    }

    fn format_name(&self) -> &'static str {
        "pgt"
    }
}

impl<R: BufRead> GraphSource for PgtSource<R> {
    fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        let mut buf = std::mem::take(&mut self.shim);
        let result = self.read_record(&mut buf);
        let rec = match result {
            Ok(true) => Some(buf.take_record()),
            Ok(false) => None,
            Err(e) => {
                self.shim = buf;
                return Err(e);
            }
        };
        self.shim = buf;
        Ok(rec)
    }

    fn format_name(&self) -> &'static str {
        "pgt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load_text, save_text};
    use crate::stream::read_all;
    use crate::GraphBuilder;
    use crate::Value;

    #[test]
    fn streams_same_records_as_loader() {
        let text = "# comment\n\
                    N a Person name=Ann,age=30\n\
                    N b - -\n\
                    E a b KNOWS since=2020\n";
        let mut src = PgtSource::new(text.as_bytes());
        let mut records = Vec::new();
        while let Some(r) = src.next_record().unwrap() {
            records.push(r);
        }
        assert_eq!(records.len(), 3);
        assert!(matches!(&records[0], Record::Node { id, .. } if id == "a"));
        assert!(matches!(&records[2], Record::Edge { src, tgt, .. } if src == "a" && tgt == "b"));
    }

    #[test]
    fn read_all_matches_load_text() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(&["Person"], &[("name", Value::from("Ann, esq."))]);
        let y = b.add_node(&[], &[("score", Value::Float(2.5))]);
        b.add_edge(x, y, &["KNOWS"], &[("since", Value::Int(2020))]);
        let text = save_text(&b.finish());

        let via_loader = load_text(&text).unwrap();
        let (via_stream, warnings) = read_all(PgtSource::new(text.as_bytes())).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(via_stream.node_count(), via_loader.node_count());
        assert_eq!(via_stream.edge_count(), via_loader.edge_count());
        for ((_, a), (_, b)) in via_loader.nodes().zip(via_stream.nodes()) {
            assert_eq!(a.props.len(), b.props.len());
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "N a - -\nX bogus\n";
        let mut src = PgtSource::new(text.as_bytes());
        src.next_record().unwrap();
        let err = src.next_record().unwrap_err();
        assert!(matches!(err, StreamError::Parse { line: 2, .. }), "{err}");
    }
}
