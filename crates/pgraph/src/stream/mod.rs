//! Streaming ingestion: chunked, format-agnostic graph loading (§4.6).
//!
//! The paper motivates incremental discovery with "process large datasets on
//! machines with limited memory". This module supplies the I/O side of that
//! scenario: instead of slurping a whole export into one [`PropertyGraph`],
//! a [`ChunkedTextReader`] wraps any [`GraphSource`] — a format-specific
//! record parser over a [`std::io::BufRead`] — and yields *independent*
//! graph chunks of roughly `chunk_size` elements. Each chunk has its own
//! interners and ids and can be dropped as soon as the discovery pipeline
//! has consumed it, so resident memory is O(chunk), not O(dataset).
//!
//! Three wire formats implement [`GraphSource`]:
//!
//! - [`pgt::PgtSource`] — the line-oriented `.pgt` text format of
//!   [`crate::loader`];
//! - [`csv::CsvSource`] — `nodes.csv` + `edges.csv` with `id`/`src`/`tgt`,
//!   a `;`-separated `labels` column, and one column per property key;
//! - [`jsonl::JsonlSource`] — one JSON object per line
//!   (`{"type":"node",...}` / `{"type":"edge",...}`).
//!
//! # Cross-chunk edges
//!
//! Edges are resolved within their chunk. For an edge whose endpoint lives
//! in an *earlier* chunk, the reader keeps a compact id → label-set
//! registry (a few tens of bytes per node id — property values, the
//! dominant memory cost, never outlive their chunk) and materializes a
//! property-less *stub* node carrying the endpoint's label set, so the edge
//! keeps its endpoint labels for clustering and type extraction. Such edges
//! are surfaced as counted warnings ([`StreamWarnings::cross_chunk_edges`]),
//! not errors. Edges that reference an id *never* declared anywhere are
//! dropped and counted ([`StreamWarnings::unresolved_edges`]). Edges that
//! arrive *before* their endpoint's `N` record are buffered (bounded) and
//! resolved once the node appears.
//!
//! Stubs are **marked** on the chunk graph
//! ([`crate::PropertyGraph::is_stub`]) and the discovery pipeline excludes
//! them from clustering and instance counting: they contribute edge
//! endpoint labels and nothing else. Streamed per-type instance counts and
//! property optionality are therefore *exact* — identical to the resident
//! single-graph run — for any chunk size, shard partition, or thread count
//! (the property the sharded-merge proptests and CI smoke gate on).

pub mod csv;
pub mod jsonl;
pub mod multi;
pub mod pgt;
pub mod raw;
pub mod read_ahead;

pub use raw::{OwnedSource, RawGraphSource, RecordBuf, RecordRef};
pub use read_ahead::{ReadAheadChunks, ReadAheadRecords, StreamSummary};

use crate::builder::GraphBuilder;
use crate::element::NodeId;
use crate::graph::PropertyGraph;
use crate::interner::Symbol;
use crate::value::Value;
use raw::RecordKind;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// One parsed ingestion record, independent of the wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A node declaration with a dataset-scoped id.
    Node {
        /// Dataset-scoped node id (referenced by edges).
        id: String,
        /// The node's labels (may be empty).
        labels: Vec<String>,
        /// The node's `(key, value)` properties.
        props: Vec<(String, Value)>,
    },
    /// An edge between two node ids.
    Edge {
        /// Source node id.
        src: String,
        /// Target node id.
        tgt: String,
        /// The edge's labels (may be empty).
        labels: Vec<String>,
        /// The edge's `(key, value)` properties.
        props: Vec<(String, Value)>,
    },
}

/// Errors produced while streaming records from a source.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying reader failure.
    Io(std::io::Error),
    /// A record could not be parsed. `line` is 1-based within the file the
    /// source was reading when the error occurred.
    Parse {
        /// 1-based line number within the file being read.
        line: u64,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "io error: {e}"),
            StreamError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// A format-specific record parser: the one trait the CLI, benches and the
/// chunker program against, so they stay format-agnostic.
///
/// ```
/// use pg_hive_graph::stream::{pgt::PgtSource, GraphSource, Record};
///
/// let mut src = PgtSource::new("N a Person name=Ann\nE a a SELF -\n".as_bytes());
/// let first = src.next_record().unwrap().unwrap();
/// assert!(matches!(first, Record::Node { ref id, .. } if id == "a"));
/// let second = src.next_record().unwrap().unwrap();
/// assert!(matches!(second, Record::Edge { .. }));
/// assert!(src.next_record().unwrap().is_none()); // end of stream
/// assert_eq!(src.format_name(), "pgt");
/// ```
pub trait GraphSource {
    /// Next record, `Ok(None)` at end of stream.
    fn next_record(&mut self) -> Result<Option<Record>, StreamError>;

    /// Short format name for diagnostics (`"pgt"`, `"csv"`, `"jsonl"`).
    fn format_name(&self) -> &'static str;
}

impl<S: GraphSource + ?Sized> GraphSource for Box<S> {
    fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        (**self).next_record()
    }
    fn format_name(&self) -> &'static str {
        (**self).format_name()
    }
}

/// Counted non-fatal conditions observed while chunking a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamWarnings {
    /// Edges whose endpoint node lived in an earlier chunk; the endpoint
    /// was materialized as a label-carrying stub node.
    pub cross_chunk_edges: u64,
    /// Edges dropped because an endpoint id was never declared (includes
    /// `evicted_edges`).
    pub unresolved_edges: u64,
    /// Edges that arrived before an endpoint's node record and were
    /// buffered until it appeared.
    pub deferred_edges: u64,
    /// Deferred edges evicted because the pending buffer overflowed.
    pub evicted_edges: u64,
    /// Node ids declared more than once. Each declaration still becomes its
    /// own node; later declarations win in the endpoint registry.
    pub duplicate_nodes: u64,
}

impl StreamWarnings {
    /// True when nothing noteworthy happened.
    pub fn is_empty(&self) -> bool {
        *self == StreamWarnings::default()
    }

    /// Add another accumulator's counts field-wise — shard, file, and
    /// watch-pass aggregation all sum the same per-category counters
    /// instead of concatenating reports.
    pub fn absorb(&mut self, other: &StreamWarnings) {
        self.cross_chunk_edges += other.cross_chunk_edges;
        self.unresolved_edges += other.unresolved_edges;
        self.deferred_edges += other.deferred_edges;
        self.evicted_edges += other.evicted_edges;
        self.duplicate_nodes += other.duplicate_nodes;
    }
}

struct PendingEdge {
    src: String,
    tgt: String,
    labels: Vec<String>,
    props: Vec<(String, Value)>,
}

/// Compact id → label-set registry: interns every distinct label set once
/// and maps each node id ever seen to its set. Shared by
/// [`ChunkedTextReader`] (stub endpoints for cross-chunk edges) and
/// [`crate::stats::stream_stats`] (edge patterns); memory is O(distinct
/// ids + distinct label sets), never O(property values).
///
/// The registry is exposed so a long-running consumer (`pg-hive watch`) can
/// carry it across **passes**: extract it from an exhausted reader with
/// [`ChunkedTextReader::into_registry`] and seed the next pass's reader
/// with [`ChunkedTextReader::with_registry`], so edges appended later still
/// resolve endpoints declared in any earlier pass.
///
/// Because the id set otherwise only ever grows, every binding carries a
/// **generation** stamp ([`LabelSetRegistry::generation`]): a lifecycle
/// manager advances the generation at its rotation boundary (a watch
/// partition roll, a retention cut) and later calls
/// [`LabelSetRegistry::compact`] to drop ids whose stamp fell out of the
/// retention window — the GC that keeps a forever-running watch's registry
/// bounded. Generations are runtime bookkeeping only: snapshot persistence
/// does not record them, so every binding restored from a snapshot starts
/// in the restored registry's current generation.
#[derive(Debug, Default, Clone)]
pub struct LabelSetRegistry {
    /// Node-id strings, arena-interned (one growing allocation instead of
    /// an owned `String` key per id, FNV instead of SipHash per lookup).
    pub(crate) id_syms: crate::interner::Interner,
    /// `id_ls[sym.index()]` is the label-set id currently bound to the
    /// node-id symbol `sym` — parallel to `id_syms`, dense.
    pub(crate) id_ls: Vec<u32>,
    /// Generation stamp of each binding — parallel to `id_ls`. Refreshed on
    /// rebind, consulted by [`Self::compact`].
    pub(crate) id_gen: Vec<u32>,
    pub(crate) sets: Vec<Vec<String>>,
    /// Label-set lookup keyed by interned label symbols (in record order),
    /// so the zero-copy hot path can look a set up without building an
    /// owned `Vec<String>` key first.
    set_ids: HashMap<Box<[u32]>, u32>,
    /// Interner for the individual label strings behind `set_ids` keys.
    label_syms: crate::interner::Interner,
    /// Reused symbol-key scratch for lookups.
    scratch: Vec<u32>,
    /// Current generation: the stamp new/refreshed bindings receive.
    generation: u32,
}

impl LabelSetRegistry {
    /// Finish interning whatever label set sits in `scratch`, materializing
    /// the owned string set via `make` only on first sight.
    fn intern_scratch(&mut self, make: impl FnOnce() -> Vec<String>) -> u32 {
        if let Some(&id) = self.set_ids.get(&self.scratch[..]) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.sets.push(make());
        self.set_ids
            .insert(self.scratch.clone().into_boxed_slice(), id);
        id
    }

    /// Intern a label set, returning its dense id.
    pub(crate) fn intern(&mut self, labels: &[String]) -> u32 {
        self.scratch.clear();
        for l in labels {
            let sym = self.label_syms.intern(l);
            self.scratch.push(sym.0);
        }
        self.intern_scratch(|| labels.to_vec())
    }

    /// Intern the label set of the record in `buf` without allocating on
    /// the repeat path.
    pub(crate) fn intern_buf(&mut self, buf: &RecordBuf) -> u32 {
        self.scratch.clear();
        for &span in &buf.labels {
            let sym = self.label_syms.intern(buf.str(span));
            self.scratch.push(sym.0);
        }
        self.intern_scratch(|| buf.labels.iter().map(|&s| buf.str(s).to_string()).collect())
    }

    /// Register a node id; returns `true` when the id was already present
    /// (the new label set wins).
    pub(crate) fn insert(&mut self, id: &str, labels: &[String]) -> bool {
        let ls = self.intern(labels);
        self.bind(id, ls).1
    }

    /// Register a node id against an interned set id, returning the id's
    /// symbol and whether it was already present (the new set wins). Repeat
    /// ids touch no allocation at all. Either way the binding's generation
    /// stamp is refreshed to the current generation.
    pub(crate) fn bind(&mut self, id: &str, ls: u32) -> (Symbol, bool) {
        let sym = self.id_syms.intern(id);
        if sym.index() == self.id_ls.len() {
            self.id_ls.push(ls);
            self.id_gen.push(self.generation);
            (sym, false)
        } else {
            self.id_ls[sym.index()] = ls;
            self.id_gen[sym.index()] = self.generation;
            (sym, true)
        }
    }

    /// Register a borrowed node id against an interned set id; returns
    /// `true` when the id was already present.
    pub(crate) fn insert_ls(&mut self, id: &str, ls: u32) -> bool {
        self.bind(id, ls).1
    }

    /// Symbol of a registered node id.
    pub(crate) fn sym_of(&self, id: &str) -> Option<Symbol> {
        self.id_syms.get(id)
    }

    /// Label-set id bound to a node-id symbol.
    pub(crate) fn ls_of(&self, sym: Symbol) -> u32 {
        self.id_ls[sym.index()]
    }

    /// Label-set id of a registered node id.
    pub(crate) fn get(&self, id: &str) -> Option<u32> {
        self.sym_of(id).map(|s| self.ls_of(s))
    }

    /// Whether the node id has been registered.
    pub(crate) fn contains(&self, id: &str) -> bool {
        self.id_syms.get(id).is_some()
    }

    /// Resolve an interned label-set id.
    pub(crate) fn set(&self, ls: u32) -> &[String] {
        &self.sets[ls as usize]
    }

    /// The label set registered for a node id, if the id has been seen.
    /// This is the cross-shard stub-resolution lookup: a carried edge's
    /// endpoint labels come from the *merged* registry even though the
    /// endpoint's declaring file was read by another shard.
    pub fn label_set(&self, id: &str) -> Option<&[String]> {
        self.get(id).map(|ls| self.set(ls))
    }

    /// Register the node record currently held in `buf` (id → label set),
    /// returning `true` when the id was already present (the new set wins).
    /// External streaming consumers — the schema validator rides the
    /// registry for its cross-chunk endpoint checks — go through this
    /// entry point; the chunked reader uses the internal span-level path.
    /// Calling it with an edge record registers the edge's *source* id,
    /// so callers must route node records only.
    pub fn insert_record(&mut self, buf: &RecordBuf) -> bool {
        let ls = self.intern_buf(buf);
        let id = buf.str(buf.id);
        self.insert_ls(id, ls)
    }

    /// The current generation — the stamp new and refreshed bindings
    /// receive. Starts at 0; snapshot restore resets bindings to the
    /// restored registry's generation.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Start a new generation. Call at a lifecycle boundary (e.g. a watch
    /// partition roll): ids bound or re-seen from now on are stamped with
    /// the new generation, so a later [`Self::compact`] can tell live ids
    /// from ones last seen before the boundary.
    pub fn advance_generation(&mut self) {
        self.generation += 1;
    }

    /// Garbage-collect the registry: keep only the ids for which
    /// `keep(id, generation_stamp)` returns true, rebuilding every internal
    /// table (the id arena, the label-set pool, the symbol indices) so the
    /// memory of dropped ids — and of label sets no surviving id references
    /// — is actually reclaimed. Surviving bindings keep their generation
    /// stamps, so retention windows compose across repeated compactions.
    /// Returns the number of ids dropped.
    ///
    /// Dropping an id means a *future* edge referencing it no longer
    /// resolves (it will be counted unresolved); callers choose the
    /// retention predicate accordingly — e.g. `pg-hive watch --partition`
    /// keeps the generations of its retained partitions.
    pub fn compact(&mut self, mut keep: impl FnMut(&str, u32) -> bool) -> usize {
        let old = std::mem::take(self);
        self.generation = old.generation;
        let mut dropped = 0usize;
        for (sym, id) in old.id_syms.iter() {
            let stamp = old.id_gen[sym.index()];
            if keep(id, stamp) {
                let ls = self.intern(old.set(old.id_ls[sym.index()]));
                let (new_sym, _) = self.bind(id, ls);
                self.id_gen[new_sym.index()] = stamp;
            } else {
                dropped += 1;
            }
        }
        dropped
    }

    /// Keep only bindings whose generation stamp is `>= min_generation` —
    /// the retention cut used by snapshot rotation. Returns the number of
    /// ids dropped.
    pub fn compact_before(&mut self, min_generation: u32) -> usize {
        self.compact(|_, stamp| stamp >= min_generation)
    }

    /// Merge another registry's bindings into this one (cross-shard stub
    /// resolution: after per-shard ingestion, the merged registry can
    /// resolve an edge whose endpoints were declared in different shards).
    /// `other`'s bindings win on id collisions, mirroring the
    /// later-declaration-wins rule within a stream; every merged binding is
    /// stamped with *this* registry's current generation. Returns the
    /// number of colliding ids (ids present in both) — callers surface
    /// them as duplicate-node warnings, since a serial run over the same
    /// concatenated input would have counted them the same way.
    pub fn merge(&mut self, other: &LabelSetRegistry) -> u64 {
        let mut collisions = 0u64;
        for (sym, id) in other.id_syms.iter() {
            let ls = self.intern(other.set(other.id_ls[sym.index()]));
            let (_, dup) = self.bind(id, ls);
            collisions += u64::from(dup);
        }
        collisions
    }
}

/// Chunks any [`GraphSource`] into independent [`PropertyGraph`]s of
/// roughly `chunk_size` elements (nodes + edges + endpoint stubs), so a
/// dataset can be discovered with O(chunk) resident memory via
/// `Discoverer::discover_stream`.
///
/// See the [module docs](self) for the cross-chunk edge semantics.
///
/// ```
/// use pg_hive_graph::stream::pgt::PgtSource;
/// use pg_hive_graph::ChunkedTextReader;
///
/// let text = "N a Person -\nN b Person -\nN c Org -\nE a c WORKS_AT -\n";
/// let mut reader = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 2);
/// let mut chunks = 0;
/// while let Some(chunk) = reader.next_chunk().unwrap() {
///     chunks += 1;
///     assert!(chunk.node_count() + chunk.edge_count() <= 2 * 2); // O(chunk)
/// }
/// assert_eq!(chunks, reader.chunks_emitted());
/// assert!(chunks >= 2);
/// assert_eq!(reader.warnings().unresolved_edges, 0);
/// ```
pub struct ChunkedTextReader<S> {
    source: S,
    /// Reused zero-copy record buffer: one per reader, not per record.
    buf: RecordBuf,
    chunk_size: usize,
    pending_cap: usize,
    registry: LabelSetRegistry,
    pending: VecDeque<PendingEdge>,
    /// When set, end-of-stream pending edges whose endpoints never appeared
    /// are **retained** (extractable via [`Self::take_pending`]) instead of
    /// being dropped and counted unresolved — the sharded-ingestion mode,
    /// where another shard's input may declare the endpoints.
    carry_unresolved: bool,
    warnings: StreamWarnings,
    max_resident: usize,
    chunks: usize,
    done: bool,
    /// Per-chunk id → [`NodeId`] tables, indexed by the registry's id
    /// symbols and stamped with `generation` — entries from earlier chunks
    /// are stale by stamp, so "clearing" them between chunks is free and
    /// the endpoint hot path needs no per-chunk hash map (or its per-insert
    /// owned `String` key).
    chunk_marks: Vec<(u32, NodeId)>,
    stub_marks: Vec<(u32, NodeId)>,
    /// Per-chunk cache of stub label sets, indexed by registry label-set id
    /// and generation-stamped like the mark tables: the canonical (sorted,
    /// deduplicated) symbols of set `ls` in the **current** chunk's label
    /// table, computed once per (chunk, set) instead of once per stub.
    stub_label_cache: Vec<(u32, Vec<Symbol>)>,
    generation: u32,
    /// Node/edge counts of the previous chunk — capacity hints for the next
    /// chunk's builder (steady-state chunks are similarly sized, so this
    /// skips the doubling-growth copies of the node/edge vectors).
    last_nodes: usize,
    last_edges: usize,
}

/// Stamp `sym` as resident in the current chunk (`generation`) with `nid`.
fn mark(table: &mut Vec<(u32, NodeId)>, sym: Symbol, generation: u32, nid: NodeId) {
    let i = sym.index();
    if i >= table.len() {
        table.resize(i + 1, (0, NodeId(0)));
    }
    table[i] = (generation, nid);
}

/// `sym`'s [`NodeId`] if it was marked during the current chunk.
fn marked(table: &[(u32, NodeId)], sym: Symbol, generation: u32) -> Option<NodeId> {
    match table.get(sym.index()) {
        Some(&(g, nid)) if g == generation => Some(nid),
        _ => None,
    }
}

impl<S: RawGraphSource> ChunkedTextReader<S> {
    /// Reader yielding chunks of roughly `chunk_size` elements (minimum 1).
    pub fn new(source: S, chunk_size: usize) -> Self {
        Self::with_registry(source, chunk_size, LabelSetRegistry::default())
    }

    /// Reader seeded with an existing id → label-set registry, so edges in
    /// this stream can resolve endpoints declared in an **earlier** stream
    /// (the `pg-hive watch` pass-over-pass case). Endpoints found only in
    /// the registry are materialized as stubs and counted as
    /// [`StreamWarnings::cross_chunk_edges`], exactly like within-stream
    /// cross-chunk edges.
    pub fn with_registry(source: S, chunk_size: usize, registry: LabelSetRegistry) -> Self {
        let chunk_size = chunk_size.max(1);
        Self {
            source,
            buf: RecordBuf::new(),
            chunk_size,
            // Forward-referencing edges are buffered up to this many before
            // the oldest are dropped as unresolved — keeps memory bounded on
            // adversarial (edges-before-nodes) input orderings.
            pending_cap: chunk_size.saturating_mul(4).max(1024),
            registry,
            pending: VecDeque::new(),
            carry_unresolved: false,
            warnings: StreamWarnings::default(),
            max_resident: 0,
            chunks: 0,
            done: false,
            chunk_marks: Vec::new(),
            stub_marks: Vec::new(),
            stub_label_cache: Vec::new(),
            generation: 0,
            last_nodes: 0,
            last_edges: 0,
        }
    }

    /// Consume the reader and hand back its registry, for seeding the next
    /// pass's reader via [`Self::with_registry`].
    pub fn into_registry(self) -> LabelSetRegistry {
        self.registry
    }

    /// Retain end-of-stream unresolved edges instead of dropping them (see
    /// [`Self::take_pending`]). Set this **before** draining the reader.
    pub fn set_carry_unresolved(&mut self, on: bool) {
        self.carry_unresolved = on;
    }

    /// Drain the edges still pending after the stream ended — edges whose
    /// endpoint ids this stream never declared. Meaningful after
    /// [`Self::set_carry_unresolved`]`(true)` and a fully drained stream;
    /// the sharded pipeline collects these and resolves them against the
    /// cross-shard **merged** registry. Returned in arrival order.
    pub fn take_pending(&mut self) -> Vec<Record> {
        self.pending
            .drain(..)
            .map(|e| Record::Edge {
                src: e.src,
                tgt: e.tgt,
                labels: e.labels,
                props: e.props,
            })
            .collect()
    }

    /// Warnings accumulated so far (final after the last chunk).
    pub fn warnings(&self) -> StreamWarnings {
        self.warnings
    }

    /// Largest `node_count + edge_count` of any emitted chunk — the
    /// peak-resident element count the streaming pipeline had to hold.
    pub fn max_resident_elements(&self) -> usize {
        self.max_resident
    }

    /// Chunks emitted so far.
    pub fn chunks_emitted(&self) -> usize {
        self.chunks
    }

    /// Underlying source's format name.
    pub fn format_name(&self) -> &'static str {
        self.source.format_name()
    }

    fn resolvable(&self, e: &PendingEdge) -> bool {
        self.registry.contains(&e.src) && self.registry.contains(&e.tgt)
    }

    /// Move every currently-resolvable pending edge into `ready`,
    /// preserving arrival order.
    fn refill_ready(&mut self, ready: &mut VecDeque<PendingEdge>) {
        let mut rest = VecDeque::with_capacity(self.pending.len());
        while let Some(e) = self.pending.pop_front() {
            if self.resolvable(&e) {
                ready.push_back(e);
            } else {
                rest.push_back(e);
            }
        }
        self.pending = rest;
    }

    /// Next chunk, or `Ok(None)` when the stream is exhausted. Each chunk
    /// is a self-contained graph: fresh interners, edges wired to resident
    /// (or stub) endpoints.
    pub fn next_chunk(&mut self) -> Result<Option<PropertyGraph>, StreamError> {
        if self.done && self.pending.is_empty() {
            return Ok(None);
        }

        let mut b = GraphBuilder::with_capacity(self.last_nodes, self.last_edges);
        let mut ready: VecDeque<PendingEdge> = VecDeque::new();
        let mut budget = 0usize;
        self.generation += 1; // invalidates every chunk/stub mark at once
        self.refill_ready(&mut ready);

        loop {
            if budget >= self.chunk_size {
                break;
            }
            if let Some(e) = ready.pop_front() {
                load_pending(&mut self.buf, e);
                let (s_sym, t_sym) = self.edge_syms();
                self.accept_edge(&mut b, s_sym, t_sym, &mut budget);
                continue;
            }
            if self.done {
                // The source is drained; see whether nodes read since the
                // last refill unlocked more pending edges.
                self.refill_ready(&mut ready);
                if ready.is_empty() {
                    break;
                }
                continue;
            }
            if !self.source.read_record(&mut self.buf)? {
                self.done = true;
                continue;
            }
            match self.buf.kind {
                RecordKind::Node => {
                    let ls = self.registry.intern_buf(&self.buf);
                    let id_str = self.buf.str(self.buf.id);
                    let (sym, duplicate) = self.registry.bind(id_str, ls);
                    if duplicate {
                        self.warnings.duplicate_nodes += 1;
                    }
                    let nid = b.add_node_from_buf(&mut self.buf);
                    mark(&mut self.chunk_marks, sym, self.generation, nid);
                    budget += 1;
                }
                RecordKind::Edge => {
                    // Resolve both endpoint symbols once — the same lookups
                    // double as the resolvability check and the endpoint
                    // resolution inside `accept_edge`.
                    let s_sym = self.registry.sym_of(self.buf.str(self.buf.id));
                    let t_sym = self.registry.sym_of(self.buf.str(self.buf.tgt));
                    if let (Some(s_sym), Some(t_sym)) = (s_sym, t_sym) {
                        self.accept_edge(&mut b, s_sym, t_sym, &mut budget);
                    } else {
                        self.warnings.deferred_edges += 1;
                        let e = pending_from_buf(&mut self.buf);
                        self.pending.push_back(e);
                        if self.pending.len() > self.pending_cap {
                            let victim = self.pending.pop_front().expect("cap >= 1");
                            if self.resolvable(&victim) {
                                // Its endpoints were declared after it was
                                // deferred: emit it rather than dropping a
                                // fully-declared edge.
                                load_pending(&mut self.buf, victim);
                                let (s_sym, t_sym) = self.edge_syms();
                                self.accept_edge(&mut b, s_sym, t_sym, &mut budget);
                            } else {
                                self.warnings.evicted_edges += 1;
                                self.warnings.unresolved_edges += 1;
                            }
                        }
                    }
                }
            }
        }

        let any_resolvable = self
            .pending
            .iter()
            .any(|e| self.registry.contains(&e.src) && self.registry.contains(&e.tgt));
        if self.done && ready.is_empty() && !any_resolvable {
            // Whatever is still pending references ids that never appeared
            // in *this* stream. In carry mode they are kept for the caller
            // (another shard may declare the endpoints); otherwise they are
            // dropped and counted.
            if !self.carry_unresolved {
                self.warnings.unresolved_edges += self.pending.len() as u64;
                self.pending.clear();
            }
        } else {
            // Budget filled with resolvable edges left over: put them back
            // in front so the next chunk starts with them.
            while let Some(e) = ready.pop_back() {
                self.pending.push_front(e);
            }
        }

        if budget == 0 {
            return Ok(None);
        }
        let g = b.finish();
        self.last_nodes = g.node_count();
        self.last_edges = g.edge_count();
        self.max_resident = self.max_resident.max(g.node_count() + g.edge_count());
        self.chunks += 1;
        Ok(Some(g))
    }

    /// Endpoint symbols of the edge currently held in `self.buf`, which
    /// must be resolvable (both ids known to the registry).
    fn edge_syms(&self) -> (Symbol, Symbol) {
        let expect = "accepted edges are resolvable";
        (
            self.registry
                .sym_of(self.buf.str(self.buf.id))
                .expect(expect),
            self.registry
                .sym_of(self.buf.str(self.buf.tgt))
                .expect(expect),
        )
    }

    /// Emit the edge currently held in `self.buf` (already known to be
    /// resolvable; `s_sym`/`t_sym` are its pre-resolved endpoint symbols),
    /// materializing stub endpoints as needed.
    fn accept_edge(
        &mut self,
        b: &mut GraphBuilder,
        s_sym: Symbol,
        t_sym: Symbol,
        budget: &mut usize,
    ) {
        let mut used_stub = false;
        let registry = &self.registry;
        let generation = self.generation;
        let s = Self::endpoint(
            registry,
            b,
            &self.chunk_marks,
            &mut self.stub_marks,
            &mut self.stub_label_cache,
            generation,
            budget,
            &mut used_stub,
            s_sym,
        );
        let t = Self::endpoint(
            registry,
            b,
            &self.chunk_marks,
            &mut self.stub_marks,
            &mut self.stub_label_cache,
            generation,
            budget,
            &mut used_stub,
            t_sym,
        );
        b.add_edge_from_buf(s, t, &mut self.buf);
        *budget += 1;
        if used_stub {
            self.warnings.cross_chunk_edges += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn endpoint(
        registry: &LabelSetRegistry,
        b: &mut GraphBuilder,
        chunk_marks: &[(u32, NodeId)],
        stub_marks: &mut Vec<(u32, NodeId)>,
        stub_label_cache: &mut Vec<(u32, Vec<Symbol>)>,
        generation: u32,
        budget: &mut usize,
        used_stub: &mut bool,
        sym: Symbol,
    ) -> NodeId {
        if let Some(nid) = marked(chunk_marks, sym, generation) {
            return nid;
        }
        if let Some(nid) = marked(stub_marks, sym, generation) {
            *used_stub = true;
            return nid;
        }
        let ls = registry.ls_of(sym) as usize;
        if ls >= stub_label_cache.len() {
            stub_label_cache.resize(ls + 1, (0, Vec::new()));
        }
        if stub_label_cache[ls].0 != generation {
            // First stub with this label set in this chunk: canonicalize
            // once, interning into the chunk's label table.
            let mut sorted: Vec<&str> =
                registry.set(ls as u32).iter().map(String::as_str).collect();
            sorted.sort_unstable();
            sorted.dedup();
            let syms: Vec<Symbol> = sorted.into_iter().map(|l| b.intern_label(l)).collect();
            stub_label_cache[ls] = (generation, syms);
        }
        let nid = b.add_node_syms(stub_label_cache[ls].1.clone());
        mark(stub_marks, sym, generation, nid);
        *budget += 1;
        *used_stub = true;
        nid
    }
}

/// Move the edge in `buf` out as an owned [`PendingEdge`] (the deferred
/// path — property values are moved, never cloned).
fn pending_from_buf(buf: &mut RecordBuf) -> PendingEdge {
    let src = buf.str(buf.id).to_string();
    let tgt = buf.str(buf.tgt).to_string();
    let labels: Vec<String> = buf.labels.iter().map(|&s| buf.str(s).to_string()).collect();
    let text = &buf.text;
    let props: Vec<(String, Value)> = buf
        .props
        .drain(..)
        .map(|(k, v)| (raw::span_str(text, k).to_string(), v))
        .collect();
    PendingEdge {
        src,
        tgt,
        labels,
        props,
    }
}

/// Load a deferred edge back into the record buffer for acceptance through
/// the same zero-copy path as freshly parsed edges.
fn load_pending(buf: &mut RecordBuf, e: PendingEdge) {
    buf.clear();
    buf.kind = RecordKind::Edge;
    buf.id = buf.push_str(&e.src);
    buf.tgt = buf.push_str(&e.tgt);
    for l in &e.labels {
        let span = buf.push_str(l);
        buf.labels.push(span);
    }
    for (k, v) in e.props {
        let span = buf.push_str(&k);
        buf.props.push((span, v));
    }
}

/// Drain a whole source into a single [`PropertyGraph`] (the non-streaming
/// path for formats other than `.pgt`). Forward-referencing edges resolve
/// within the single chunk; truly dangling edges are counted in the
/// returned warnings, mirroring the chunked semantics.
pub fn read_all<S: RawGraphSource>(
    source: S,
) -> Result<(PropertyGraph, StreamWarnings), StreamError> {
    let mut reader = ChunkedTextReader::new(source, usize::MAX);
    let g = reader.next_chunk()?.unwrap_or_default();
    Ok((g, reader.warnings()))
}

#[cfg(test)]
mod tests {
    use super::pgt::PgtSource;
    use super::*;

    fn chunks_of(text: &str, chunk_size: usize) -> (Vec<PropertyGraph>, StreamWarnings, usize) {
        let mut r = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), chunk_size);
        let mut out = Vec::new();
        while let Some(g) = r.next_chunk().unwrap() {
            out.push(g);
        }
        (out, r.warnings(), r.max_resident_elements())
    }

    /// 6 nodes then 3 edges, nodes-first like a real export.
    const SMALL: &str = "\
N a Person name=Ann
N b Person name=Bob
N c Person name=Cid
N d Org url=x.com
N e Org url=y.com
N f Place name=GR
E a d WORKS_AT -
E b e WORKS_AT -
E d f LOCATED_IN -
";

    #[test]
    fn one_big_chunk_contains_everything() {
        let (chunks, warnings, peak) = chunks_of(SMALL, 1000);
        assert_eq!(chunks.len(), 1);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(chunks[0].node_count(), 6);
        assert_eq!(chunks[0].edge_count(), 3);
        assert_eq!(peak, 9);
    }

    #[test]
    fn chunking_bounds_resident_elements() {
        let (chunks, _, peak) = chunks_of(SMALL, 3);
        assert!(chunks.len() >= 3, "got {} chunks", chunks.len());
        // Budget is checked before appending, and an edge can bring at most
        // two stub endpoints: resident stays under 2x the chunk size.
        assert!(peak <= 6, "peak resident {peak}");
        let total_edges: usize = chunks.iter().map(|c| c.edge_count()).sum();
        assert_eq!(total_edges, 3, "no edge lost to chunking");
    }

    #[test]
    fn cross_chunk_edges_get_labeled_stubs_and_warnings() {
        let (chunks, warnings, _) = chunks_of(SMALL, 3);
        assert!(warnings.cross_chunk_edges > 0);
        assert_eq!(warnings.unresolved_edges, 0);
        // Every edge still sees its endpoints' label sets: collect endpoint
        // label pairs across chunks and check WORKS_AT goes Person -> Org.
        let mut pairs = Vec::new();
        for c in &chunks {
            for (_, e) in c.edges() {
                let (src, tgt) = c.edge_endpoint_labels(e);
                pairs.push((
                    c.label_set_str(src),
                    c.label_set_str(tgt),
                    c.label_set_str(&e.labels),
                ));
            }
        }
        assert!(pairs
            .iter()
            .any(|(s, t, l)| s == "{Person}" && t == "{Org}" && l == "{WORKS_AT}"));
    }

    #[test]
    fn forward_references_resolve_across_chunks() {
        // Edge arrives before either endpoint exists.
        let text = "E a b KNOWS -\nN a Person -\nN b Person -\n";
        let (chunks, warnings, _) = chunks_of(text, 2);
        assert_eq!(warnings.deferred_edges, 1);
        assert_eq!(warnings.unresolved_edges, 0);
        let total_edges: usize = chunks.iter().map(|c| c.edge_count()).sum();
        assert_eq!(total_edges, 1);
    }

    #[test]
    fn never_declared_endpoints_are_counted_not_fatal() {
        let text = "N a Person -\nE a ghost KNOWS -\nE phantom a KNOWS -\n";
        let (chunks, warnings, _) = chunks_of(text, 100);
        assert_eq!(warnings.unresolved_edges, 2);
        let total_edges: usize = chunks.iter().map(|c| c.edge_count()).sum();
        assert_eq!(total_edges, 0);
        assert_eq!(chunks[0].node_count(), 1);
    }

    #[test]
    fn duplicate_ids_warn_and_rebind() {
        let text = "N a Person -\nN a Org -\nE a a SELF -\n";
        let (chunks, warnings, _) = chunks_of(text, 100);
        assert_eq!(warnings.duplicate_nodes, 1);
        // The edge binds to the latest declaration.
        let c = &chunks[0];
        let (_, e) = c.edges().next().unwrap();
        let (src, _) = c.edge_endpoint_labels(e);
        assert_eq!(c.label_set_str(src), "{Org}");
    }

    #[test]
    fn pending_buffer_is_bounded() {
        // Thousands of dangling edges must not accumulate unboundedly.
        let mut text = String::from("N a Person -\n");
        for i in 0..10_000 {
            text.push_str(&format!("E a ghost{i} KNOWS -\n"));
        }
        let mut r = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 4);
        while r.next_chunk().unwrap().is_some() {}
        let w = r.warnings();
        assert_eq!(w.unresolved_edges, 10_000);
        assert!(w.evicted_edges > 0, "cap kicked in: {w:?}");
    }

    #[test]
    fn eviction_never_drops_a_resolvable_edge() {
        // Regression: a deferred edge whose endpoints are declared later in
        // the same chunk used to be evictable by a flood of dangling edges
        // (it was only re-checked at chunk boundaries). Eviction must emit
        // it instead.
        let mut text = String::from("E a b KNOWS -\nN a Person -\nN b Person -\n");
        let dangling = 8_200; // cap is 4 * 2000 = 8000
        for i in 0..dangling {
            text.push_str(&format!("E a ghost{i} REF -\n"));
        }
        let mut r = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 2_000);
        let mut edges = 0usize;
        while let Some(c) = r.next_chunk().unwrap() {
            edges += c.edge_count();
        }
        assert_eq!(edges, 1, "the fully-declared KNOWS edge survives");
        let w = r.warnings();
        assert_eq!(w.unresolved_edges, dangling);
        assert!(w.evicted_edges > 0, "{w:?}");
    }

    #[test]
    fn registry_carries_across_readers() {
        // The watch scenario: pass 1 declares nodes, pass 2 appends an edge
        // referencing them. Seeding pass 2's reader with pass 1's registry
        // resolves the edge through labeled stubs instead of dropping it.
        let pass1 = "N a Person -\nN b Org -\n";
        let mut r1 = ChunkedTextReader::new(PgtSource::new(pass1.as_bytes()), 10);
        while r1.next_chunk().unwrap().is_some() {}
        let registry = r1.into_registry();

        let pass2 = "E a b WORKS_AT -\n";
        let mut r2 =
            ChunkedTextReader::with_registry(PgtSource::new(pass2.as_bytes()), 10, registry);
        let c = r2.next_chunk().unwrap().unwrap();
        assert_eq!(c.edge_count(), 1);
        let (_, e) = c.edges().next().unwrap();
        let (src, tgt) = c.edge_endpoint_labels(e);
        assert_eq!(c.label_set_str(src), "{Person}");
        assert_eq!(c.label_set_str(tgt), "{Org}");
        assert_eq!(r2.warnings().cross_chunk_edges, 1);
        assert_eq!(r2.warnings().unresolved_edges, 0);

        // Without the carried registry the same edge is dropped.
        let mut bare = ChunkedTextReader::new(PgtSource::new(pass2.as_bytes()), 10);
        assert!(bare.next_chunk().unwrap().is_none());
        assert_eq!(bare.warnings().unresolved_edges, 1);
    }

    #[test]
    fn empty_source_yields_no_chunks() {
        let (chunks, warnings, peak) = chunks_of("# only comments\n", 10);
        assert!(chunks.is_empty());
        assert!(warnings.is_empty());
        assert_eq!(peak, 0);
    }

    #[test]
    fn stubs_are_marked_on_chunk_graphs() {
        let (chunks, warnings, _) = chunks_of(SMALL, 3);
        assert!(warnings.cross_chunk_edges > 0);
        let stubs: usize = chunks.iter().map(|c| c.stub_count()).sum();
        assert!(stubs > 0, "chunking this input must create stubs");
        for c in &chunks {
            for (id, n) in c.nodes() {
                if c.is_stub(id) {
                    assert!(n.props.is_empty(), "stubs are property-less");
                }
            }
        }
        // The unchunked read sees every node declared: no stubs at all.
        let (all, _, _) = chunks_of(SMALL, 1000);
        assert_eq!(all[0].stub_count(), 0);
    }

    #[test]
    fn carry_unresolved_retains_cross_shard_edges() {
        // This shard's input references a node only another shard declares.
        let text = "N a Person -\nE a other WORKS_AT since=2020\n";
        let mut r = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 10);
        r.set_carry_unresolved(true);
        while r.next_chunk().unwrap().is_some() {}
        assert_eq!(r.warnings().unresolved_edges, 0, "not dropped");
        let pending = r.take_pending();
        assert_eq!(pending.len(), 1);
        match &pending[0] {
            Record::Edge {
                src,
                tgt,
                labels,
                props,
            } => {
                assert_eq!(src, "a");
                assert_eq!(tgt, "other");
                assert_eq!(labels, &["WORKS_AT"]);
                assert_eq!(props.len(), 1);
            }
            other => panic!("expected edge, got {other:?}"),
        }
        // Without carry mode, the same edge is dropped and counted.
        let mut bare = ChunkedTextReader::new(PgtSource::new(text.as_bytes()), 10);
        while bare.next_chunk().unwrap().is_some() {}
        assert_eq!(bare.warnings().unresolved_edges, 1);
        assert!(bare.take_pending().is_empty());
    }

    #[test]
    fn registry_merge_unions_bindings_and_counts_collisions() {
        let mut a = LabelSetRegistry::default();
        a.insert("n1", &["Person".into()]);
        a.insert("n2", &["Org".into()]);
        let mut b = LabelSetRegistry::default();
        b.insert("n2", &["Place".into()]); // collision: b wins
        b.insert("n3", &[]);
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.set(a.get("n1").unwrap()), ["Person".to_string()]);
        assert_eq!(a.set(a.get("n2").unwrap()), ["Place".to_string()]);
        assert!(a.set(a.get("n3").unwrap()).is_empty());
    }

    #[test]
    fn registry_compact_drops_stale_generations_and_reclaims_sets() {
        let mut r = LabelSetRegistry::default();
        r.insert("old", &["Ancient".into()]);
        r.advance_generation();
        r.insert("new", &["Fresh".into()]);
        // A rebind refreshes the stamp: "kept" was first seen in gen 0 but
        // re-seen in gen 1.
        r.advance_generation();
        r.insert("kept", &["Fresh".into()]);
        assert_eq!(r.generation(), 2);
        let dropped = r.compact_before(1);
        assert_eq!(dropped, 1);
        assert_eq!(r.len(), 2);
        assert!(r.get("old").is_none());
        assert!(r.get("new").is_some() && r.get("kept").is_some());
        // The dropped id's label set is gone from the pool too.
        assert!(!r.sets.iter().any(|s| s == &["Ancient".to_string()]));
        // Stamps survive compaction: a second cut at the same floor is a
        // no-op, a higher floor drops the gen-1 binding.
        assert_eq!(r.compact_before(1), 0);
        assert_eq!(r.compact_before(2), 1);
        assert_eq!(r.len(), 1);
        assert!(r.get("kept").is_some());
    }

    #[test]
    fn chunk_graphs_are_independent() {
        let (chunks, _, _) = chunks_of(SMALL, 3);
        // Interners are per chunk: the same label resolves independently.
        for c in &chunks {
            for (_, n) in c.nodes() {
                for &l in &n.labels {
                    assert!(!c.label_str(l).is_empty());
                }
            }
        }
    }
}
