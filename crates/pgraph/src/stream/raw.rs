//! Zero-copy ingestion: borrowed record views over a reused line buffer.
//!
//! The owned [`Record`] allocates a `String` per field —
//! fine for tests and small inputs, but the streaming hot path parses
//! millions of records whose bytes are immediately interned and never
//! needed again. [`RawGraphSource`] is the allocation-free counterpart of
//! [`GraphSource`](super::GraphSource): the caller owns one [`RecordBuf`]
//! and the source parses each record **into** it, storing field *spans*
//! (byte ranges) over the buffer's backing text instead of owned strings.
//! Spans are index pairs, not pointers, so the backing `String` may grow
//! (reallocate) mid-record without invalidating earlier fields.
//!
//! [`RecordRef`] is the borrowed view handed to consumers; its
//! [`RecordRef::to_owned`] shim rebuilds the old owned `Record`, which is
//! how the compatibility [`GraphSource`](super::GraphSource) impls of the
//! pgt/CSV/JSONL sources keep every existing caller compiling. Conversely
//! [`OwnedSource`] adapts any owned-record source to the raw trait, so the
//! two paths stay interchangeable (and testable against each other).

use super::{Record, StreamError};
use crate::value::Value;

/// Byte range `(offset, len)` into [`RecordBuf`]'s backing text.
pub(crate) type Span = (u32, u32);

/// Whether the buffered record is a node or an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum RecordKind {
    #[default]
    Node,
    Edge,
}

/// A reusable record buffer: one backing `String` plus span tables for the
/// fields of the most recently parsed record. Allocations amortize to zero
/// once the buffer has grown to the largest record in the stream.
#[derive(Debug, Default)]
pub struct RecordBuf {
    /// Backing bytes: the raw input line, plus any decoded/copied field
    /// bytes appended behind it.
    pub(crate) text: String,
    pub(crate) kind: RecordKind,
    /// Node id, or edge source id.
    pub(crate) id: Span,
    /// Edge target id (unused for nodes).
    pub(crate) tgt: Span,
    pub(crate) labels: Vec<Span>,
    /// Property key spans with already-parsed values. Values are *owned*
    /// (parsing `age=42` yields `Value::Int` — only string values allocate,
    /// inside [`Value`] itself) and are moved out by the consumer.
    pub(crate) props: Vec<(Span, Value)>,
}

impl RecordBuf {
    /// Fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for the next record, keeping every allocation.
    pub(crate) fn clear(&mut self) {
        self.text.clear();
        self.labels.clear();
        self.props.clear();
        self.id = (0, 0);
        self.tgt = (0, 0);
    }

    /// Resolve a span against the backing text.
    pub(crate) fn str(&self, span: Span) -> &str {
        &self.text[span.0 as usize..(span.0 + span.1) as usize]
    }

    /// Append `s` to the backing text, returning its span.
    pub(crate) fn push_str(&mut self, s: &str) -> Span {
        let start = self.text.len() as u32;
        self.text.push_str(s);
        (start, s.len() as u32)
    }

    /// Borrowed view of the buffered record.
    pub fn view(&self) -> RecordRef<'_> {
        match self.kind {
            RecordKind::Node => RecordRef::Node {
                id: self.str(self.id),
                labels: LabelsRef {
                    text: &self.text,
                    spans: &self.labels,
                },
                props: PropsRef {
                    text: &self.text,
                    spans: &self.props,
                },
            },
            RecordKind::Edge => RecordRef::Edge {
                src: self.str(self.id),
                tgt: self.str(self.tgt),
                labels: LabelsRef {
                    text: &self.text,
                    spans: &self.labels,
                },
                props: PropsRef {
                    text: &self.text,
                    spans: &self.props,
                },
            },
        }
    }

    /// Move the buffered record out as an owned [`Record`], draining the
    /// property values (strings are copied, values are moved).
    pub(crate) fn take_record(&mut self) -> Record {
        let text = &self.text;
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|&s| span_str(text, s).to_string())
            .collect();
        let props: Vec<(String, Value)> = self
            .props
            .drain(..)
            .map(|(k, v)| (span_str(text, k).to_string(), v))
            .collect();
        match self.kind {
            RecordKind::Node => Record::Node {
                id: self.str(self.id).to_string(),
                labels,
                props,
            },
            RecordKind::Edge => Record::Edge {
                src: self.str(self.id).to_string(),
                tgt: self.str(self.tgt).to_string(),
                labels,
                props,
            },
        }
    }

    /// Load an owned [`Record`] into the buffer (the [`OwnedSource`]
    /// adapter and the pending-edge replay path).
    pub(crate) fn load_owned(&mut self, rec: Record) {
        self.clear();
        match rec {
            Record::Node { id, labels, props } => {
                self.kind = RecordKind::Node;
                self.id = self.push_str(&id);
                for l in &labels {
                    let span = self.push_str(l);
                    self.labels.push(span);
                }
                for (k, v) in props {
                    let span = self.push_str(&k);
                    self.props.push((span, v));
                }
            }
            Record::Edge {
                src,
                tgt,
                labels,
                props,
            } => {
                self.kind = RecordKind::Edge;
                self.id = self.push_str(&src);
                self.tgt = self.push_str(&tgt);
                for l in &labels {
                    let span = self.push_str(l);
                    self.labels.push(span);
                }
                for (k, v) in props {
                    let span = self.push_str(&k);
                    self.props.push((span, v));
                }
            }
        }
    }
}

pub(crate) fn span_str(text: &str, span: Span) -> &str {
    &text[span.0 as usize..(span.0 + span.1) as usize]
}

/// Borrowed label list of a [`RecordBuf`] record.
#[derive(Debug, Clone, Copy)]
pub struct LabelsRef<'a> {
    text: &'a str,
    spans: &'a [Span],
}

impl<'a> LabelsRef<'a> {
    /// Number of labels.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the record has no labels.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterate the labels as `&str`.
    pub fn iter(&self) -> impl Iterator<Item = &'a str> + Clone + '_ {
        self.spans.iter().map(|&s| span_str(self.text, s))
    }
}

/// Borrowed property list of a [`RecordBuf`] record.
#[derive(Debug)]
pub struct PropsRef<'a> {
    text: &'a str,
    spans: &'a [(Span, Value)],
}

impl<'a> PropsRef<'a> {
    /// Number of properties.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the record has no properties.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterate the properties as `(&str, &Value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&'a str, &'a Value)> + '_ {
        self.spans.iter().map(|(k, v)| (span_str(self.text, *k), v))
    }
}

/// Borrowed view of one parsed record: `&str` fields pointing into the
/// [`RecordBuf`] that parsed it.
#[derive(Debug)]
pub enum RecordRef<'a> {
    /// A node declaration.
    Node {
        /// Dataset-scoped node id.
        id: &'a str,
        /// The node's labels.
        labels: LabelsRef<'a>,
        /// The node's properties.
        props: PropsRef<'a>,
    },
    /// An edge between two node ids.
    Edge {
        /// Source node id.
        src: &'a str,
        /// Target node id.
        tgt: &'a str,
        /// The edge's labels.
        labels: LabelsRef<'a>,
        /// The edge's properties.
        props: PropsRef<'a>,
    },
}

impl RecordRef<'_> {
    /// Rebuild the owned [`Record`] — the compatibility shim the existing
    /// `GraphSource` callers go through.
    pub fn to_owned(&self) -> Record {
        match self {
            RecordRef::Node { id, labels, props } => Record::Node {
                id: (*id).to_string(),
                labels: labels.iter().map(str::to_string).collect(),
                props: props
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            },
            RecordRef::Edge {
                src,
                tgt,
                labels,
                props,
            } => Record::Edge {
                src: (*src).to_string(),
                tgt: (*tgt).to_string(),
                labels: labels.iter().map(str::to_string).collect(),
                props: props
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            },
        }
    }
}

/// Allocation-free record parser: fills a caller-owned [`RecordBuf`]
/// instead of returning owned records. This is the trait the streaming hot
/// path ([`ChunkedTextReader`](super::ChunkedTextReader), the read-ahead
/// pipeline, the CLI) programs against; the owned
/// [`GraphSource`](super::GraphSource) remains as a compatibility shim.
///
/// ```
/// use pg_hive_graph::stream::pgt::PgtSource;
/// use pg_hive_graph::stream::raw::{RawGraphSource, RecordBuf, RecordRef};
///
/// let mut src = PgtSource::new("N a Person name=Ann\n".as_bytes());
/// let mut buf = RecordBuf::new();
/// assert!(src.read_record(&mut buf).unwrap());
/// match buf.view() {
///     RecordRef::Node { id, labels, props } => {
///         assert_eq!(id, "a");
///         assert_eq!(labels.iter().collect::<Vec<_>>(), ["Person"]);
///         assert_eq!(props.len(), 1);
///     }
///     _ => panic!("expected a node"),
/// }
/// assert!(!src.read_record(&mut buf).unwrap()); // end of stream
/// ```
pub trait RawGraphSource {
    /// Parse the next record into `buf`. Returns `Ok(false)` at end of
    /// stream (leaving `buf` cleared), `Ok(true)` when `buf` holds a
    /// record.
    fn read_record(&mut self, buf: &mut RecordBuf) -> Result<bool, StreamError>;

    /// Short format name for diagnostics (`"pgt"`, `"csv"`, `"jsonl"`).
    fn format_name(&self) -> &'static str;
}

impl<S: RawGraphSource + ?Sized> RawGraphSource for Box<S> {
    fn read_record(&mut self, buf: &mut RecordBuf) -> Result<bool, StreamError> {
        (**self).read_record(buf)
    }
    fn format_name(&self) -> &'static str {
        (**self).format_name()
    }
}

/// Adapt any owned-record [`GraphSource`](super::GraphSource) to
/// [`RawGraphSource`] by loading each record into the buffer. Used by
/// consumers that accept custom sources, and by the equivalence tests that
/// pit the zero-copy parsers against the owned path.
pub struct OwnedSource<S>(pub S);

impl<S: super::GraphSource> RawGraphSource for OwnedSource<S> {
    fn read_record(&mut self, buf: &mut RecordBuf) -> Result<bool, StreamError> {
        match self.0.next_record()? {
            None => {
                buf.clear();
                Ok(false)
            }
            Some(rec) => {
                buf.load_owned(rec);
                Ok(true)
            }
        }
    }
    fn format_name(&self) -> &'static str {
        self.0.format_name()
    }
}

#[cfg(test)]
mod tests {
    use super::super::GraphSource;
    use super::*;

    struct TwoRecords(u8);
    impl GraphSource for TwoRecords {
        fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
            self.0 += 1;
            Ok(match self.0 {
                1 => Some(Record::Node {
                    id: "a".into(),
                    labels: vec!["Person".into(), "Student".into()],
                    props: vec![("age".into(), Value::Int(30))],
                }),
                2 => Some(Record::Edge {
                    src: "a".into(),
                    tgt: "a".into(),
                    labels: vec!["SELF".into()],
                    props: vec![],
                }),
                _ => None,
            })
        }
        fn format_name(&self) -> &'static str {
            "test"
        }
    }

    #[test]
    fn owned_adapter_round_trips_records() {
        let mut src = OwnedSource(TwoRecords(0));
        let mut buf = RecordBuf::new();
        assert!(src.read_record(&mut buf).unwrap());
        match buf.view() {
            RecordRef::Node { id, labels, props } => {
                assert_eq!(id, "a");
                assert_eq!(labels.iter().collect::<Vec<_>>(), ["Person", "Student"]);
                let props: Vec<(&str, &Value)> = props.iter().collect();
                assert_eq!(props, vec![("age", &Value::Int(30))]);
            }
            other => panic!("expected node, got {other:?}"),
        }
        // to_owned rebuilds the original record exactly.
        assert_eq!(
            buf.view().to_owned(),
            Record::Node {
                id: "a".into(),
                labels: vec!["Person".into(), "Student".into()],
                props: vec![("age".into(), Value::Int(30))],
            }
        );
        assert!(src.read_record(&mut buf).unwrap());
        assert!(matches!(
            buf.view(),
            RecordRef::Edge {
                src: "a",
                tgt: "a",
                ..
            }
        ));
        assert!(!src.read_record(&mut buf).unwrap());
        assert_eq!(src.format_name(), "test");
    }

    /// Drain a CSV input through both parse paths: the zero-copy span
    /// parser (`RawGraphSource`) and the owned compatibility shim. The two
    /// must agree record-for-record — this is the span-level equality the
    /// quoting corner-case tests below assert.
    fn csv_both_paths(nodes: &str, edges: Option<&str>) -> (Vec<Record>, Vec<Record>) {
        use super::super::csv::CsvSource;
        use std::io::Cursor;
        let mut raw = CsvSource::new(
            Cursor::new(nodes.to_string()),
            edges.map(|e| Cursor::new(e.to_string())),
        );
        let mut buf = RecordBuf::new();
        let mut via_spans = Vec::new();
        while raw.read_record(&mut buf).unwrap() {
            via_spans.push(buf.view().to_owned());
        }
        let mut owned = OwnedSource(CsvSource::new(
            Cursor::new(nodes.to_string()),
            edges.map(|e| Cursor::new(e.to_string())),
        ));
        let mut via_owned = Vec::new();
        while owned.read_record(&mut buf).unwrap() {
            via_owned.push(buf.view().to_owned());
        }
        (via_spans, via_owned)
    }

    #[test]
    fn csv_quoted_embedded_crlf_is_preserved_and_span_equal() {
        // RFC 4180: a quoted field may span lines; the line break belongs
        // to the cell verbatim, including the `\r` of a CRLF terminator.
        let nodes = "id,labels,bio\r\na,Person,\"line one\r\nline two\"\r\n";
        let (spans, owned) = csv_both_paths(nodes, None);
        assert_eq!(spans, owned, "raw span path must match the owned path");
        assert_eq!(spans.len(), 1);
        match &spans[0] {
            Record::Node { id, props, .. } => {
                assert_eq!(id, "a");
                assert_eq!(
                    props,
                    &vec![("bio".to_string(), Value::from("line one\r\nline two"))],
                    "embedded CRLF inside quotes is part of the value"
                );
            }
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    fn csv_trailing_empty_field_absent_unless_quoted() {
        // A row ending in a bare comma has an *absent* trailing cell;
        // a quoted-empty trailing cell is *present* with value "".
        let nodes = "id,labels,age,nick\na,Person,41,\nb,Person,42,\"\"\n";
        let (spans, owned) = csv_both_paths(nodes, None);
        assert_eq!(spans, owned, "raw span path must match the owned path");
        assert_eq!(spans.len(), 2);
        match &spans[0] {
            Record::Node { props, .. } => {
                assert_eq!(
                    props,
                    &vec![("age".to_string(), Value::Int(41))],
                    "unquoted trailing empty cell is an absent property"
                );
            }
            other => panic!("expected node, got {other:?}"),
        }
        match &spans[1] {
            Record::Node { props, .. } => {
                assert_eq!(
                    props,
                    &vec![
                        ("age".to_string(), Value::Int(42)),
                        ("nick".to_string(), Value::from("")),
                    ],
                    "quoted empty trailing cell is a present empty string"
                );
            }
            other => panic!("expected node, got {other:?}"),
        }
    }

    #[test]
    fn take_record_moves_values_and_resets_props() {
        let mut buf = RecordBuf::new();
        buf.load_owned(Record::Node {
            id: "n1".into(),
            labels: vec![],
            props: vec![("k".into(), Value::from("v"))],
        });
        let rec = buf.take_record();
        assert!(matches!(rec, Record::Node { ref id, ref props, .. }
            if id == "n1" && props.len() == 1));
        assert!(buf.props.is_empty(), "values drained out of the buffer");
    }
}
