//! Batch splitting for the incremental pipeline (§4.6).
//!
//! The paper evaluates incrementality by "randomly separat\[ing\] the graph
//! into 10 batches" (Fig. 7). A batch is a view over the parent graph: node
//! and edge id lists. Edges are assigned to the batch of their *source* node
//! insertion round, mirroring a streaming ingest where an edge arrives with
//! its later endpoint; the pipeline reads endpoint labels from the full store
//! (exactly like the paper reads them from Neo4j with a single query).

use crate::element::{EdgeId, NodeId};
use crate::graph::PropertyGraph;

/// One batch of a [`PropertyGraph`] stream: which nodes and edges arrive in
/// this round.
#[derive(Debug, Clone, Default)]
pub struct GraphBatch {
    /// Node ids of this batch.
    pub nodes: Vec<NodeId>,
    /// Edge ids of this batch.
    pub edges: Vec<EdgeId>,
}

impl GraphBatch {
    /// Total number of elements in the batch.
    pub fn len(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }

    /// True when the batch carries no elements.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }
}

/// Split `g` into `n` batches using a deterministic xorshift-style shuffle
/// seeded with `seed`. Every node and edge appears in exactly one batch.
///
/// # Panics
/// Panics if `n == 0`.
pub fn split_batches(g: &PropertyGraph, n: usize, seed: u64) -> Vec<GraphBatch> {
    assert!(n > 0, "batch count must be positive");
    let mut batches = vec![GraphBatch::default(); n];

    let mut node_ids: Vec<u32> = (0..g.node_count() as u32).collect();
    shuffle(&mut node_ids, seed);
    for (i, id) in node_ids.iter().enumerate() {
        batches[i % n].nodes.push(NodeId(*id));
    }

    let mut edge_ids: Vec<u32> = (0..g.edge_count() as u32).collect();
    shuffle(&mut edge_ids, seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    for (i, id) in edge_ids.iter().enumerate() {
        batches[i % n].edges.push(EdgeId(*id));
    }

    batches
}

/// Fisher–Yates with a splitmix64 PRNG — dependency-free and deterministic
/// across platforms, which keeps incremental experiments reproducible.
fn shuffle(xs: &mut [u32], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..xs.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn small_graph(nodes: usize, edges: usize) -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..nodes).map(|_| b.add_node(&["N"], &[])).collect();
        for i in 0..edges {
            b.add_edge(ids[i % nodes], ids[(i + 1) % nodes], &["E"], &[]);
        }
        b.finish()
    }

    #[test]
    fn batches_partition_all_elements() {
        let g = small_graph(53, 97);
        let batches = split_batches(&g, 10, 42);
        assert_eq!(batches.len(), 10);
        let total_nodes: usize = batches.iter().map(|b| b.nodes.len()).sum();
        let total_edges: usize = batches.iter().map(|b| b.edges.len()).sum();
        assert_eq!(total_nodes, 53);
        assert_eq!(total_edges, 97);

        let mut seen_nodes: Vec<u32> = batches
            .iter()
            .flat_map(|b| b.nodes.iter().map(|n| n.0))
            .collect();
        seen_nodes.sort_unstable();
        seen_nodes.dedup();
        assert_eq!(seen_nodes.len(), 53, "no node appears twice");
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let g = small_graph(20, 20);
        let a = split_batches(&g, 4, 7);
        let b = split_batches(&g, 4, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.edges, y.edges);
        }
        let c = split_batches(&g, 4, 8);
        assert_ne!(
            a.iter().map(|b| b.nodes.clone()).collect::<Vec<_>>(),
            c.iter().map(|b| b.nodes.clone()).collect::<Vec<_>>(),
            "different seeds shuffle differently"
        );
    }

    #[test]
    fn batch_sizes_are_balanced() {
        let g = small_graph(100, 0);
        let batches = split_batches(&g, 10, 1);
        for b in &batches {
            assert_eq!(b.nodes.len(), 10);
        }
    }

    #[test]
    fn single_batch_contains_everything() {
        let g = small_graph(5, 5);
        let batches = split_batches(&g, 1, 0);
        assert_eq!(batches[0].nodes.len(), 5);
        assert_eq!(batches[0].edges.len(), 5);
    }

    #[test]
    #[should_panic(expected = "batch count")]
    fn zero_batches_panics() {
        let g = small_graph(1, 0);
        split_batches(&g, 0, 0);
    }

    #[test]
    fn empty_batch_helpers() {
        let b = GraphBatch::default();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
