//! Typed property values.
//!
//! PG-Schema builds on GQL's predefined data types; the paper's datatype
//! inference (§4.4) distinguishes `INTEGER`, `FLOAT` (double), `BOOLEAN`,
//! `DATE`/`TIMESTAMP` (via ISO regex) and defaults to `STRING`. Values here
//! carry their runtime type, but inference in `pg-hive-core` deliberately
//! works from the *lexical* form (`Value::lexical`) so that, exactly like the
//! paper's Neo4j loader, a property stored as the string `"42"` is inferred
//! as an integer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A property value attached to a node or edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (`v ∈ Z` in §4.4).
    Int(i64),
    /// Double-precision float (`v ∈ R \ Z`).
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Calendar date, ISO `YYYY-MM-DD`.
    Date {
        /// Calendar year (may be negative).
        year: i32,
        /// Month, 1–12.
        month: u8,
        /// Day of month, 1–31.
        day: u8,
    },
    /// Timestamp, ISO `YYYY-MM-DDThh:mm:ss` (seconds precision).
    DateTime {
        /// Calendar year (may be negative).
        year: i32,
        /// Month, 1–12.
        month: u8,
        /// Day of month, 1–31.
        day: u8,
        /// Hour, 0–23.
        hour: u8,
        /// Minute, 0–59.
        minute: u8,
        /// Second, 0–59.
        second: u8,
    },
    /// Arbitrary string (the inference default).
    Str(String),
}

/// The data-type lattice used by the paper's priority-based inference
/// (integer → float → boolean → date/timestamp → string).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueKind {
    /// 64-bit signed integers.
    Integer,
    /// Double-precision floats.
    Float,
    /// Boolean literals.
    Boolean,
    /// Calendar dates.
    Date,
    /// Timestamps with seconds precision.
    Timestamp,
    /// Arbitrary strings (top of the lattice).
    String,
}

impl ValueKind {
    /// GQL-style type name used in PG-Schema serialization (§4.5).
    pub fn gql_name(self) -> &'static str {
        match self {
            ValueKind::Integer => "INT",
            ValueKind::Float => "DOUBLE",
            ValueKind::Boolean => "BOOLEAN",
            ValueKind::Date => "DATE",
            ValueKind::Timestamp => "TIMESTAMP",
            ValueKind::String => "STRING",
        }
    }

    /// XSD type name used in XSD serialization (§4.5).
    pub fn xsd_name(self) -> &'static str {
        match self {
            ValueKind::Integer => "xs:integer",
            ValueKind::Float => "xs:double",
            ValueKind::Boolean => "xs:boolean",
            ValueKind::Date => "xs:date",
            ValueKind::Timestamp => "xs:dateTime",
            ValueKind::String => "xs:string",
        }
    }

    /// Least upper bound of two kinds in the inference lattice: identical
    /// kinds stay, `Integer ⊔ Float = Float`, anything else generalizes to
    /// `String` (the paper's fallback, §4.7 "Data type inference").
    pub fn join(self, other: ValueKind) -> ValueKind {
        use ValueKind::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Integer, Float) | (Float, Integer) => Float,
            (Date, Timestamp) | (Timestamp, Date) => Timestamp,
            _ => String,
        }
    }
}

impl Value {
    /// Runtime kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Integer,
            Value::Float(_) => ValueKind::Float,
            Value::Bool(_) => ValueKind::Boolean,
            Value::Date { .. } => ValueKind::Date,
            Value::DateTime { .. } => ValueKind::Timestamp,
            Value::Str(_) => ValueKind::String,
        }
    }

    /// Lexical (string) form, as it would appear in a CSV export. Datatype
    /// inference runs on this form.
    pub fn lexical(&self) -> String {
        self.to_string()
    }

    /// Parse a lexical form back into the most specific value, following the
    /// paper's priority order: integer, float, boolean, date, timestamp,
    /// string fallback.
    pub fn parse_lexical(s: &str) -> Value {
        let t = s.trim();
        if let Ok(i) = t.parse::<i64>() {
            // Reject forms like "05" that round-trip differently? Keep them:
            // Neo4j CSV loaders treat any integral literal as an integer.
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        match t {
            "true" | "TRUE" | "True" => return Value::Bool(true),
            "false" | "FALSE" | "False" => return Value::Bool(false),
            _ => {}
        }
        if let Some(d) = parse_iso_date(t) {
            return d;
        }
        if let Some(dt) = parse_iso_datetime(t) {
            return dt;
        }
        Value::Str(t.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                // Keep a fractional marker so the lexical form round-trips as
                // a float rather than collapsing 2.0 -> "2" -> Int.
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date { year, month, day } => write!(f, "{year:04}-{month:02}-{day:02}"),
            Value::DateTime {
                year,
                month,
                day,
                hour,
                minute,
                second,
            } => write!(
                f,
                "{year:04}-{month:02}-{day:02}T{hour:02}:{minute:02}:{second:02}"
            ),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
            if leap {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Parse `YYYY-MM-DD`. A tiny hand-rolled recognizer standing in for the
/// paper's "regex for date/time ISO formats".
pub fn parse_iso_date(s: &str) -> Option<Value> {
    let b = s.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return None;
    }
    let year: i32 = s[0..4].parse().ok()?;
    let month: u8 = s[5..7].parse().ok()?;
    let day: u8 = s[8..10].parse().ok()?;
    if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
        return None;
    }
    Some(Value::Date { year, month, day })
}

/// Parse `YYYY-MM-DDThh:mm:ss` (optionally with a trailing `Z`).
pub fn parse_iso_datetime(s: &str) -> Option<Value> {
    let s = s.strip_suffix('Z').unwrap_or(s);
    let b = s.as_bytes();
    if b.len() != 19 || b[10] != b'T' || b[13] != b':' || b[16] != b':' {
        return None;
    }
    let Value::Date { year, month, day } = parse_iso_date(&s[0..10])? else {
        return None;
    };
    let hour: u8 = s[11..13].parse().ok()?;
    let minute: u8 = s[14..16].parse().ok()?;
    let second: u8 = s[17..19].parse().ok()?;
    if hour > 23 || minute > 59 || second > 60 {
        return None;
    }
    Some(Value::DateTime {
        year,
        month,
        day,
        hour,
        minute,
        second,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_integer_literal() {
        assert_eq!(Value::parse_lexical("42"), Value::Int(42));
        assert_eq!(Value::parse_lexical("-7"), Value::Int(-7));
        assert_eq!(Value::parse_lexical("  13 "), Value::Int(13));
    }

    #[test]
    fn parse_float_literal() {
        assert_eq!(Value::parse_lexical("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse_lexical("-0.25"), Value::Float(-0.25));
        assert_eq!(Value::parse_lexical("1e3"), Value::Float(1000.0));
    }

    #[test]
    fn parse_bool_literal() {
        assert_eq!(Value::parse_lexical("true"), Value::Bool(true));
        assert_eq!(Value::parse_lexical("FALSE"), Value::Bool(false));
    }

    #[test]
    fn parse_date_literal() {
        assert_eq!(
            Value::parse_lexical("1999-12-19"),
            Value::Date {
                year: 1999,
                month: 12,
                day: 19
            }
        );
    }

    #[test]
    fn parse_datetime_literal() {
        assert_eq!(
            Value::parse_lexical("2025-01-02T03:04:05"),
            Value::DateTime {
                year: 2025,
                month: 1,
                day: 2,
                hour: 3,
                minute: 4,
                second: 5
            }
        );
        assert!(matches!(
            Value::parse_lexical("2025-01-02T03:04:05Z"),
            Value::DateTime { .. }
        ));
    }

    #[test]
    fn invalid_dates_fall_back_to_string() {
        assert_eq!(
            Value::parse_lexical("2025-13-01"),
            Value::Str("2025-13-01".into())
        );
        assert_eq!(
            Value::parse_lexical("2025-02-30"),
            Value::Str("2025-02-30".into())
        );
        assert_eq!(
            Value::parse_lexical("2025-02-00"),
            Value::Str("2025-02-00".into())
        );
    }

    #[test]
    fn leap_year_date() {
        assert!(matches!(
            Value::parse_lexical("2024-02-29"),
            Value::Date { .. }
        ));
        assert!(matches!(Value::parse_lexical("2023-02-29"), Value::Str(_)));
        assert!(matches!(
            Value::parse_lexical("2000-02-29"),
            Value::Date { .. }
        ));
        assert!(matches!(Value::parse_lexical("1900-02-29"), Value::Str(_)));
    }

    #[test]
    fn string_fallback() {
        assert_eq!(
            Value::parse_lexical("bazinga!"),
            Value::Str("bazinga!".into())
        );
    }

    #[test]
    fn lexical_round_trip_preserves_kind() {
        for v in [
            Value::Int(99),
            Value::Float(2.0),
            Value::Float(-1.75),
            Value::Bool(true),
            Value::Date {
                year: 2001,
                month: 6,
                day: 30,
            },
            Value::DateTime {
                year: 2001,
                month: 6,
                day: 30,
                hour: 23,
                minute: 59,
                second: 59,
            },
            Value::Str("hello world".into()),
        ] {
            let reparsed = Value::parse_lexical(&v.lexical());
            assert_eq!(reparsed.kind(), v.kind(), "value {v:?}");
        }
    }

    #[test]
    fn kind_join_lattice() {
        use ValueKind::*;
        assert_eq!(Integer.join(Integer), Integer);
        assert_eq!(Integer.join(Float), Float);
        assert_eq!(Float.join(Integer), Float);
        assert_eq!(Date.join(Timestamp), Timestamp);
        assert_eq!(Integer.join(Boolean), String);
        assert_eq!(String.join(Integer), String);
    }

    #[test]
    fn gql_and_xsd_names() {
        assert_eq!(ValueKind::Integer.gql_name(), "INT");
        assert_eq!(ValueKind::Timestamp.xsd_name(), "xs:dateTime");
    }
}
