//! Adjacency index: per-node incident-edge lists, built on demand.
//!
//! The discovery pipeline itself only scans elements, but downstream
//! consumers of a discovered schema (validators, explorers, the examples)
//! need neighborhood access; this keeps the core store lean while offering
//! an O(V + E) one-shot index.

use crate::element::{EdgeId, NodeId};
use crate::graph::PropertyGraph;

/// Immutable adjacency lists over a snapshot of a [`PropertyGraph`].
#[derive(Debug, Clone)]
pub struct AdjacencyIndex {
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl AdjacencyIndex {
    /// Build the index with one pass over the edges.
    pub fn build(g: &PropertyGraph) -> Self {
        let mut out_edges = vec![Vec::new(); g.node_count()];
        let mut in_edges = vec![Vec::new(); g.node_count()];
        for (id, e) in g.edges() {
            out_edges[e.src.index()].push(id);
            in_edges[e.tgt.index()].push(id);
        }
        AdjacencyIndex {
            out_edges,
            in_edges,
        }
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_edges[n.index()]
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_edges[n.index()]
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_edges[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_edges[n.index()].len()
    }

    /// Successor node ids of `n` (with multiplicity).
    pub fn successors<'a>(
        &'a self,
        g: &'a PropertyGraph,
        n: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.out_edges[n.index()].iter().map(|&e| g.edge(e).tgt)
    }

    /// Predecessor node ids of `n` (with multiplicity).
    pub fn predecessors<'a>(
        &'a self,
        g: &'a PropertyGraph,
        n: NodeId,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.in_edges[n.index()].iter().map(|&e| g.edge(e).src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn chain(n: usize) -> (PropertyGraph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..n).map(|_| b.add_node(&["N"], &[])).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], &["E"], &[]);
        }
        (b.finish(), ids)
    }

    #[test]
    fn chain_degrees() {
        let (g, ids) = chain(4);
        let adj = AdjacencyIndex::build(&g);
        assert_eq!(adj.out_degree(ids[0]), 1);
        assert_eq!(adj.in_degree(ids[0]), 0);
        assert_eq!(adj.out_degree(ids[3]), 0);
        assert_eq!(adj.in_degree(ids[3]), 1);
        assert_eq!(adj.out_degree(ids[1]), 1);
        assert_eq!(adj.in_degree(ids[1]), 1);
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, ids) = chain(3);
        let adj = AdjacencyIndex::build(&g);
        let succ: Vec<NodeId> = adj.successors(&g, ids[0]).collect();
        assert_eq!(succ, vec![ids[1]]);
        let pred: Vec<NodeId> = adj.predecessors(&g, ids[2]).collect();
        assert_eq!(pred, vec![ids[1]]);
    }

    #[test]
    fn parallel_edges_keep_multiplicity() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(&["A"], &[]);
        let c = b.add_node(&["B"], &[]);
        b.add_edge(a, c, &["E"], &[]);
        b.add_edge(a, c, &["E"], &[]);
        let g = b.finish();
        let adj = AdjacencyIndex::build(&g);
        assert_eq!(adj.out_degree(a), 2);
        assert_eq!(adj.successors(&g, a).count(), 2);
    }

    #[test]
    fn empty_graph_index() {
        let g = PropertyGraph::new();
        let adj = AdjacencyIndex::build(&g);
        assert!(adj.out_edges.is_empty());
    }

    #[test]
    fn self_loop_counts_both_ways() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(&["A"], &[]);
        b.add_edge(a, a, &["SELF"], &[]);
        let g = b.finish();
        let adj = AdjacencyIndex::build(&g);
        assert_eq!(adj.out_degree(a), 1);
        assert_eq!(adj.in_degree(a), 1);
    }
}
