//! A small line-oriented text loader.
//!
//! The paper loads from Neo4j with a single Cypher query; examples in this
//! repository instead read a simple text format so they stay self-contained:
//!
//! ```text
//! # comment / blank lines ignored
//! N <id> <label;label|-> <key=value,key=value|->
//! E <srcId> <tgtId> <label;label|-> <key=value,...|->
//! ```
//!
//! `-` stands for "no labels" / "no properties". Values are parsed with
//! [`Value::parse_lexical`], so `age=42` becomes an integer and
//! `bday=1999-12-19` a date. Reserved characters inside values (space,
//! comma, equals, percent) are percent-encoded by [`save_text`] and decoded
//! on load, so arbitrary strings round-trip. Label names must not contain
//! `;` (the label-set separator here and in the CSV exporter) or
//! whitespace.

use crate::builder::GraphBuilder;
use crate::element::NodeId;
use crate::graph::PropertyGraph;
use crate::stream::Record;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A line did not start with `N` or `E`.
    UnknownRecord {
        /// 1-based line number.
        line: usize,
    },
    /// Wrong number of fields for the record type.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Fields the record type requires.
        expected: usize,
    },
    /// An edge referenced an id never declared by an `N` line.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The undeclared node id.
        id: String,
    },
    /// A `key=value` pair had no `=`.
    BadProperty {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The same node id was declared twice.
    DuplicateNode {
        /// 1-based line number.
        line: usize,
        /// The duplicated node id.
        id: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::UnknownRecord { line } => {
                write!(f, "line {line}: record must start with 'N' or 'E'")
            }
            LoadError::Malformed { line, expected } => {
                write!(f, "line {line}: expected {expected} fields")
            }
            LoadError::UnknownNode { line, id } => {
                write!(f, "line {line}: unknown node id '{id}'")
            }
            LoadError::BadProperty { line, token } => {
                write!(f, "line {line}: bad property token '{token}'")
            }
            LoadError::DuplicateNode { line, id } => {
                write!(f, "line {line}: duplicate node id '{id}'")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Parse one line of the text format into a [`Record`]. Returns `Ok(None)`
/// for blank lines and `#` comments. Shared by [`load_text`] and the
/// streaming [`crate::stream::pgt::PgtSource`].
pub fn parse_line(line: usize, raw: &str) -> Result<Option<Record>, LoadError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    // Consume the whitespace-separated fields positionally instead of
    // collecting them into a `Vec<&str>` — this runs once per line of every
    // `.pgt` input, and the vector was the only allocation for records
    // without labels or properties.
    let mut fields = trimmed.split_whitespace();
    let kind = fields.next().expect("non-blank trimmed line has a field");
    match kind {
        "N" => {
            let (Some(id), Some(labels), Some(props), None) =
                (fields.next(), fields.next(), fields.next(), fields.next())
            else {
                return Err(LoadError::Malformed { line, expected: 4 });
            };
            Ok(Some(Record::Node {
                id: id.to_string(),
                labels: parse_labels(labels),
                props: parse_props(props, line)?,
            }))
        }
        "E" => {
            let (Some(src), Some(tgt), Some(labels), Some(props), None) = (
                fields.next(),
                fields.next(),
                fields.next(),
                fields.next(),
                fields.next(),
            ) else {
                return Err(LoadError::Malformed { line, expected: 5 });
            };
            Ok(Some(Record::Edge {
                src: src.to_string(),
                tgt: tgt.to_string(),
                labels: parse_labels(labels),
                props: parse_props(props, line)?,
            }))
        }
        _ => Err(LoadError::UnknownRecord { line }),
    }
}

/// Parse the `.pgt` line held in `buf.text` **in place**, recording field
/// spans instead of allocating owned strings. Returns `Ok(false)` for blank
/// lines and `#` comments. This is the zero-copy twin of [`parse_line`],
/// used by the streaming [`crate::stream::pgt::PgtSource`]; the two are
/// pinned equivalent by the raw-vs-owned property tests.
pub(crate) fn parse_line_into(
    line: usize,
    buf: &mut crate::stream::RecordBuf,
) -> Result<bool, LoadError> {
    use crate::stream::raw::RecordKind;

    let trimmed = buf.text.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(false);
    }
    // Record the whitespace-separated fields as byte offsets into the
    // line. `N` needs 4 fields, `E` needs 5; anything beyond 6 is
    // malformed for both, so a fixed-size span array suffices.
    let base = buf.text.as_ptr() as usize;
    let mut spans = [(0u32, 0u32); 6];
    let mut n = 0usize;
    let mut fields = trimmed.split_whitespace();
    for f in fields.by_ref() {
        if n == spans.len() {
            break;
        }
        spans[n] = ((f.as_ptr() as usize - base) as u32, f.len() as u32);
        n += 1;
    }
    let overflow = n == spans.len() && fields.next().is_some();
    match buf.str(spans[0]) {
        "N" => {
            if n != 4 || overflow {
                return Err(LoadError::Malformed { line, expected: 4 });
            }
            buf.kind = RecordKind::Node;
            buf.id = spans[1];
            parse_labels_into(buf, spans[2]);
            parse_props_into(buf, spans[3], line)?;
            Ok(true)
        }
        "E" => {
            if n != 5 || overflow {
                return Err(LoadError::Malformed { line, expected: 5 });
            }
            buf.kind = RecordKind::Edge;
            buf.id = spans[1];
            buf.tgt = spans[2];
            parse_labels_into(buf, spans[3]);
            parse_props_into(buf, spans[4], line)?;
            Ok(true)
        }
        _ => Err(LoadError::UnknownRecord { line }),
    }
}

fn parse_labels_into(buf: &mut crate::stream::RecordBuf, span: (u32, u32)) {
    if buf.str(span) == "-" {
        return;
    }
    let text = &buf.text;
    let base = text.as_ptr() as usize;
    let field = &text[span.0 as usize..(span.0 + span.1) as usize];
    for part in field.split(';') {
        if part.is_empty() {
            continue;
        }
        buf.labels
            .push(((part.as_ptr() as usize - base) as u32, part.len() as u32));
    }
}

fn parse_props_into(
    buf: &mut crate::stream::RecordBuf,
    span: (u32, u32),
    line: usize,
) -> Result<(), LoadError> {
    if buf.str(span) == "-" {
        return Ok(());
    }
    let text = &buf.text;
    let base = text.as_ptr() as usize;
    let field = &text[span.0 as usize..(span.0 + span.1) as usize];
    for token in field.split(',') {
        if token.is_empty() {
            continue;
        }
        let Some((k, v)) = token.split_once('=') else {
            return Err(LoadError::BadProperty {
                line,
                token: token.to_string(),
            });
        };
        let key = ((k.as_ptr() as usize - base) as u32, k.len() as u32);
        let value = Value::parse_lexical(&percent_decode(v));
        buf.props.push((key, value));
    }
    Ok(())
}

/// Parse the text format into a [`PropertyGraph`].
///
/// `E` lines may reference node ids declared *later* in the file —
/// concatenated or re-ordered exports are common — so edges are deferred
/// and resolved after the full pass. Edge ids are assigned in `E`-line
/// order. [`LoadError::UnknownNode`] is reserved for ids never declared by
/// any `N` line.
pub fn load_text(input: &str) -> Result<PropertyGraph, LoadError> {
    struct DeferredEdge {
        line: usize,
        src: String,
        tgt: String,
        labels: Vec<String>,
        props: Vec<(String, Value)>,
    }
    let mut b = GraphBuilder::new();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut edges: Vec<DeferredEdge> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        match parse_line(line, raw)? {
            None => {}
            Some(Record::Node { id, labels, props }) => {
                if ids.contains_key(&id) {
                    return Err(LoadError::DuplicateNode { line, id });
                }
                let prop_refs: Vec<(&str, Value)> =
                    props.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                let nid = b.add_node(&label_refs, &prop_refs);
                ids.insert(id, nid);
            }
            Some(Record::Edge {
                src,
                tgt,
                labels,
                props,
            }) => edges.push(DeferredEdge {
                line,
                src,
                tgt,
                labels,
                props,
            }),
        }
    }

    for e in edges {
        let line = e.line;
        let src = *ids
            .get(&e.src)
            .ok_or(LoadError::UnknownNode { line, id: e.src })?;
        let tgt = *ids
            .get(&e.tgt)
            .ok_or(LoadError::UnknownNode { line, id: e.tgt })?;
        let prop_refs: Vec<(&str, Value)> = e
            .props
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let label_refs: Vec<&str> = e.labels.iter().map(String::as_str).collect();
        b.add_edge(src, tgt, &label_refs, &prop_refs);
    }
    Ok(b.finish())
}

/// Serialize a graph back to the text format, the inverse of [`load_text`]:
/// `load_text(&save_text(&g))` reproduces `g` up to node-id naming.
pub fn save_text(g: &PropertyGraph) -> String {
    let mut out = String::new();
    for (id, n) in g.nodes() {
        out.push_str(&format!(
            "N n{} {} {}\n",
            id.0,
            labels_field(g, &n.labels),
            props_field(g, &n.props)
        ));
    }
    for (_, e) in g.edges() {
        out.push_str(&format!(
            "E n{} n{} {} {}\n",
            e.src.0,
            e.tgt.0,
            labels_field(g, &e.labels),
            props_field(g, &e.props)
        ));
    }
    out
}

fn labels_field(g: &PropertyGraph, labels: &[crate::Symbol]) -> String {
    if labels.is_empty() {
        "-".to_string()
    } else {
        labels
            .iter()
            .map(|&l| g.label_str(l))
            .collect::<Vec<_>>()
            .join(";")
    }
}

fn props_field(g: &PropertyGraph, props: &[(crate::Symbol, Value)]) -> String {
    if props.is_empty() {
        "-".to_string()
    } else {
        props
            .iter()
            .map(|(k, v)| format!("{}={}", g.key_str(*k), percent_encode(&v.to_string())))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Encode the characters the line format reserves (space splits fields,
/// comma splits properties, equals splits key from value, percent is the
/// escape itself).
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            ' ' => out.push_str("%20"),
            ',' => out.push_str("%2C"),
            '=' => out.push_str("%3D"),
            '%' => out.push_str("%25"),
            other => out.push(other),
        }
    }
    out
}

/// Decode `%XX` escapes; borrows the input unchanged when it contains no
/// `%` at all (the overwhelmingly common case for property values).
pub(crate) fn percent_decode(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains('%') {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let (Some(&h), Some(&l)) = (bytes.get(i + 1), bytes.get(i + 2)) {
                if let (Some(h), Some(l)) = (hex_val(h), hex_val(l)) {
                    out.push((h * 16 + l) as char);
                    i += 3;
                    continue;
                }
            }
        }
        let c = s[i..].chars().next().expect("i is on a char boundary");
        out.push(c);
        i += c.len_utf8();
    }
    std::borrow::Cow::Owned(out)
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'A'..=b'F' => Some(b - b'A' + 10),
        b'a'..=b'f' => Some(b - b'a' + 10),
        _ => None,
    }
}

fn parse_labels(field: &str) -> Vec<String> {
    if field == "-" {
        return vec![];
    }
    field
        .split(';')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_props(field: &str, line: usize) -> Result<Vec<(String, Value)>, LoadError> {
    if field == "-" {
        return Ok(vec![]);
    }
    let mut out = Vec::new();
    for token in field.split(',').filter(|s| !s.is_empty()) {
        let Some((k, v)) = token.split_once('=') else {
            return Err(LoadError::BadProperty {
                line,
                token: token.to_string(),
            });
        };
        out.push((k.to_string(), Value::parse_lexical(&percent_decode(v))));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueKind;

    #[test]
    fn loads_small_graph() {
        let g = load_text(
            "# fig-1 fragment\n\
             N bob Person name=Bob,gender=male,bday=1980-05-02\n\
             N alice - name=Alice,gender=female,bday=1999-12-19\n\
             N org Org url=example.com,name=Example\n\
             E bob org WORKS_AT from=2000\n\
             E alice bob KNOWS -\n",
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let (_, alice) = g.nodes().nth(1).unwrap();
        assert!(alice.is_unlabeled());
        let bday = g.keys().get("bday").unwrap();
        assert_eq!(alice.get(bday).unwrap().kind(), ValueKind::Date);
    }

    #[test]
    fn rejects_unknown_node() {
        let err = load_text("E a b KNOWS -").unwrap_err();
        assert!(matches!(err, LoadError::UnknownNode { line: 1, .. }));
    }

    #[test]
    fn forward_edge_references_resolve() {
        // Regression: an `E` line may reference a node declared later (a
        // concatenated or re-ordered export); the single-pass loader used
        // to fail this with UnknownNode.
        let g = load_text(
            "E a b KNOWS since=2020\n\
             N a Person name=Ann\n\
             E b a KNOWS -\n\
             N b Person name=Bob\n",
        )
        .unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
        let (_, e0) = g.edges().next().unwrap();
        // Edge ids follow E-line order: first edge is a -> b.
        assert_eq!((e0.src.0, e0.tgt.0), (0, 1));
        // The error is kept for ids never declared anywhere.
        let err = load_text("N a - -\nE a ghost KNOWS -").unwrap_err();
        assert!(
            matches!(err, LoadError::UnknownNode { line: 2, ref id } if id == "ghost"),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            load_text("N onlyid").unwrap_err(),
            LoadError::Malformed { expected: 4, .. }
        ));
        assert!(matches!(
            load_text("X what is this").unwrap_err(),
            LoadError::UnknownRecord { line: 1 }
        ));
    }

    #[test]
    fn malformed_arity_reports_expected_field_counts() {
        // Regression for the allocation-free `parse_line` rewrite: too few
        // AND too many fields must still report the record type's arity —
        // 4 for `N`, 5 for `E` — exactly as the Vec-collecting parser did.
        for (input, want) in [
            ("N onlyid", 4),
            ("N a -", 4),
            ("N a - - extra", 4),
            ("E a b", 5),
            ("E a b KNOWS", 5),
            ("E a b KNOWS - extra", 5),
        ] {
            match load_text(input).unwrap_err() {
                LoadError::Malformed { line: 1, expected } => {
                    assert_eq!(expected, want, "{input:?}")
                }
                other => panic!("{input:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_bad_property_token() {
        let err = load_text("N a Person nameBob").unwrap_err();
        assert!(matches!(err, LoadError::BadProperty { .. }));
    }

    #[test]
    fn rejects_duplicate_node_ids() {
        let err = load_text("N a - -\nN a - -").unwrap_err();
        assert!(matches!(err, LoadError::DuplicateNode { line: 2, .. }));
    }

    #[test]
    fn multi_labels_split_on_semicolon() {
        let g = load_text("N a Person;Student -").unwrap();
        let (_, n) = g.nodes().next().unwrap();
        assert_eq!(g.label_set_str(&n.labels), "{Person, Student}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = load_text("\n# hi\n  \nN a - -\n").unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn save_load_round_trip() {
        let original = load_text(
            "N bob Person;Human name=Bob,age=45,bday=1980-05-02\n\
             N anon - score=2.5\n\
             N org Org url=example.com\n\
             E bob org WORKS_AT from=2000,active=true\n\
             E anon bob KNOWS -\n",
        )
        .unwrap();
        let text = save_text(&original);
        let reloaded = load_text(&text).unwrap();
        assert_eq!(reloaded.node_count(), original.node_count());
        assert_eq!(reloaded.edge_count(), original.edge_count());
        for ((_, a), (_, b)) in original.nodes().zip(reloaded.nodes()) {
            let la: Vec<&str> = a.labels.iter().map(|&l| original.label_str(l)).collect();
            let lb: Vec<&str> = b.labels.iter().map(|&l| reloaded.label_str(l)).collect();
            assert_eq!(la, lb);
            assert_eq!(a.props.len(), b.props.len());
            for ((ka, va), (kb, vb)) in a.props.iter().zip(&b.props) {
                assert_eq!(original.key_str(*ka), reloaded.key_str(*kb));
                assert_eq!(va.kind(), vb.kind(), "value kind preserved");
                assert_eq!(va.lexical(), vb.lexical());
            }
        }
        for ((_, a), (_, b)) in original.edges().zip(reloaded.edges()) {
            assert_eq!(a.src.0, b.src.0);
            assert_eq!(a.tgt.0, b.tgt.0);
        }
    }

    #[test]
    fn save_empty_graph() {
        assert_eq!(save_text(&PropertyGraph::new()), "");
    }

    #[test]
    fn values_with_reserved_characters_round_trip() {
        let mut b = GraphBuilder::new();
        b.add_node(
            &["Doc"],
            &[
                ("text", Value::from("graph schema, node=edge 100%")),
                ("clean", Value::Int(7)),
            ],
        );
        let original = b.finish();
        let reloaded = load_text(&save_text(&original)).unwrap();
        let (_, n) = reloaded.nodes().next().unwrap();
        let key = reloaded.keys().get("text").unwrap();
        assert_eq!(
            n.get(key),
            Some(&Value::from("graph schema, node=edge 100%"))
        );
    }

    #[test]
    fn percent_decode_tolerates_bare_percent() {
        assert_eq!(percent_decode("50%"), "50%");
        assert_eq!(percent_decode("a%2Gb"), "a%2Gb", "invalid hex left as-is");
        assert_eq!(percent_decode("%20"), " ");
    }

    #[test]
    fn error_display_is_informative() {
        let e = LoadError::UnknownNode {
            line: 3,
            id: "z".into(),
        };
        assert_eq!(e.to_string(), "line 3: unknown node id 'z'");
    }
}
