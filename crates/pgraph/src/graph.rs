//! The in-memory property-graph store.

use crate::element::{Edge, EdgeId, Node, NodeId};
use crate::interner::{Interner, Symbol};

/// An in-memory property graph `G = (V, E, ρ, λ, π)` with shared label and
/// property-key interners.
///
/// Construction goes through [`crate::GraphBuilder`]; the store itself is
/// read-oriented, matching how the discovery pipeline consumes it (a single
/// scan per batch, §4.1).
#[derive(Debug, Default, Clone)]
pub struct PropertyGraph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) labels: Interner,
    pub(crate) keys: Interner,
    /// Bitset over node indices: bit `i` set ⇔ node `i` is a **stub** — a
    /// property-less endpoint materialized by the streaming reader for an
    /// edge whose real node lives in another chunk (or shard). Stubs carry
    /// endpoint labels for edge patterns but are *not* instances of their
    /// type: the discovery pipeline excludes them from clustering and
    /// instance counting, which is what makes streamed/sharded counts equal
    /// to the resident run's.
    pub(crate) stubs: Vec<u64>,
}

impl PropertyGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes |V|.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges |E|.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node by id. Panics on out-of-range ids (they are only minted here).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Edge by id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// All nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Label interner (read access).
    pub fn labels(&self) -> &Interner {
        &self.labels
    }

    /// Property-key interner (read access).
    pub fn keys(&self) -> &Interner {
        &self.keys
    }

    /// Canonical-id view of the property-key interner: maps every key
    /// [`Symbol`] (by index) to its rank in the lexicographically sorted
    /// key table. Keying per-element data on these ranks instead of raw
    /// intern order makes downstream artifacts (representation vectors,
    /// hence clusterings, hence schemas) invariant to the order a wire
    /// format happened to introduce the keys in. See
    /// [`Interner::canonical_ids`].
    pub fn canonical_key_ids(&self) -> Vec<u32> {
        self.keys.canonical_ids()
    }

    /// Resolve a label symbol.
    pub fn label_str(&self, s: Symbol) -> &str {
        self.labels.resolve(s)
    }

    /// Resolve a key symbol.
    pub fn key_str(&self, s: Symbol) -> &str {
        self.keys.resolve(s)
    }

    /// Resolve a label set to its display form `{A, B}` (sorted by string,
    /// which holds by construction in the builder).
    pub fn label_set_str(&self, labels: &[Symbol]) -> String {
        let mut out = String::from("{");
        for (i, l) in labels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(self.label_str(*l));
        }
        out.push('}');
        out
    }

    /// Whether `id` is a stub endpoint (see the `stubs` field): a
    /// property-less node materialized only so a cross-chunk edge keeps its
    /// endpoint label set. Stubs are excluded from clustering and instance
    /// counting by the discovery pipeline.
    pub fn is_stub(&self, id: NodeId) -> bool {
        let i = id.index();
        self.stubs
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of stub nodes in the graph.
    pub fn stub_count(&self) -> usize {
        self.stubs.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Mark `id` as a stub endpoint (builder-side bookkeeping).
    pub(crate) fn mark_stub(&mut self, id: NodeId) {
        let i = id.index();
        if i / 64 >= self.stubs.len() {
            self.stubs.resize(i / 64 + 1, 0);
        }
        self.stubs[i / 64] |= 1u64 << (i % 64);
    }

    /// The source/target label sets of an edge (used by preprocessing and by
    /// edge patterns, Def. 3.6).
    pub fn edge_endpoint_labels(&self, e: &Edge) -> (&[Symbol], &[Symbol]) {
        (
            &self.nodes[e.src.index()].labels,
            &self.nodes[e.tgt.index()].labels,
        )
    }

    /// Mutable node access — used only by the noise injector in
    /// `pg-hive-datasets`, which degrades labels/properties in place.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Mutable edge access (see [`Self::node_mut`]).
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::value::Value;

    #[test]
    fn empty_graph() {
        let g = super::PropertyGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn endpoint_labels() {
        let mut b = GraphBuilder::new();
        let p = b.add_node(&["Person"], &[("name", Value::from("Bob"))]);
        let o = b.add_node(&["Org"], &[("url", Value::from("example.com"))]);
        b.add_edge(p, o, &["WORKS_AT"], &[]);
        let g = b.finish();
        let (_, e) = g.edges().next().unwrap();
        let (src, tgt) = g.edge_endpoint_labels(e);
        assert_eq!(g.label_set_str(src), "{Person}");
        assert_eq!(g.label_set_str(tgt), "{Org}");
    }

    #[test]
    fn label_set_str_formats() {
        let mut b = GraphBuilder::new();
        let n = b.add_node(&["Person", "Student"], &[]);
        let g = b.finish();
        assert_eq!(g.label_set_str(&g.node(n).labels), "{Person, Student}");
    }
}
