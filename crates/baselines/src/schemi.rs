//! SchemI (EDBT 2021) re-implementation.
//!
//! SchemI "assumes that all nodes and edges are labeled, and groups similar
//! node types based on shared labels" (PG-HIVE §2 / Table 1), treating
//! *each distinct label* as a separate type. The published system grows a
//! type registry node by node — every node is compared against the
//! registry's type profiles — and then organizes the types into a
//! hierarchy by structural similarity. Both steps are reproduced:
//!
//! 1. **Registry pass** — a node joins the best same-first-label registry
//!    entry whose property profile has Jaccard ≥ 0.5 with its key set
//!    (profiles grow by union), else it opens a new entry. This per-node
//!    linear scan over the registry is the published algorithm's cost
//!    profile — `O(N · |registry|)` with set comparisons, which is what
//!    PG-HIVE's hash-based clustering beats (the paper's 1.95× speedup).
//! 2. **Hierarchy pass** — entries whose ≥50%-presence profiles have
//!    Jaccard ≥ 0.5 merge transitively (single link), across labels.
//!    Property noise thins the profiles until sibling types (e.g. LDBC's
//!    Post and Comment) become indistinguishable and merge, mixing
//!    ground-truth types — SchemI's published noise sensitivity.
//!
//! Consequences the evaluation exercises:
//! - multi-label type combinations collapse into first-label groups
//!   (the F1 penalty on MB6/FIB25/IYP),
//! - edge types are grouped by label only, losing endpoint distinctions,
//! - any unlabeled element aborts the run (`None`).

use pg_hive_graph::PropertyGraph;
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use crate::method::MethodOutput;

/// Jaccard threshold of both the registry match and the hierarchy merge.
const HIERARCHY_THETA: f64 = 0.5;
/// Presence threshold for a key to enter an entry's hierarchy profile.
const PROFILE_PRESENCE: f64 = 0.5;

/// One registry entry: a candidate type under a single label.
struct RegistryEntry {
    label: String,
    /// Union of member key sets (used for the per-node match).
    profile: BTreeSet<String>,
    /// Per-key presence counts (used for the hierarchy profile).
    key_counts: HashMap<String, u64>,
    members: u64,
}

/// The SchemI discoverer.
#[derive(Debug, Clone, Default)]
pub struct SchemI;

impl SchemI {
    /// Run SchemI. Returns `None` unless the graph is fully labeled.
    pub fn discover(&self, g: &PropertyGraph) -> Option<MethodOutput> {
        if !crate::fully_labeled(g) {
            return None;
        }
        let start = Instant::now();

        // Registry pass: every node scans the registry for its best
        // same-label structural match.
        let mut registry: Vec<RegistryEntry> = Vec::new();
        let mut node_assignment = Vec::with_capacity(g.node_count());
        for (_, n) in g.nodes() {
            let first_label = n
                .labels
                .iter()
                .map(|&l| g.label_str(l))
                .min()
                .expect("fully labeled");
            let keys: BTreeSet<String> = n.keys().map(|k| g.key_str(k).to_string()).collect();

            let mut best: Option<(usize, f64)> = None;
            for (i, entry) in registry.iter().enumerate() {
                if entry.label != first_label {
                    continue;
                }
                let sim = jaccard(&keys, &entry.profile);
                if sim >= HIERARCHY_THETA && best.is_none_or(|(_, s)| sim > s) {
                    best = Some((i, sim));
                }
            }
            let id = match best {
                Some((i, _)) => i,
                None => {
                    registry.push(RegistryEntry {
                        label: first_label.to_string(),
                        profile: BTreeSet::new(),
                        key_counts: HashMap::new(),
                        members: 0,
                    });
                    registry.len() - 1
                }
            };
            let entry = &mut registry[id];
            entry.members += 1;
            for k in &keys {
                *entry.key_counts.entry(k.clone()).or_insert(0) += 1;
            }
            entry.profile.extend(keys);
            node_assignment.push(id as u32);
        }

        // Hierarchy pass over ≥50%-presence profiles.
        let profiles: Vec<BTreeSet<String>> = registry
            .iter()
            .map(|e| {
                e.key_counts
                    .iter()
                    .filter(|(_, &c)| {
                        e.members > 0 && c as f64 / e.members as f64 >= PROFILE_PRESENCE
                    })
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .collect();
        let merged_of = merge_profiles(&profiles);
        for a in node_assignment.iter_mut() {
            *a = merged_of[*a as usize];
        }

        // Edge grouping by first label.
        let mut egroups: HashMap<String, u32> = HashMap::new();
        let mut edge_assignment = Vec::with_capacity(g.edge_count());
        for (_, e) in g.edges() {
            let first_label = e
                .labels
                .iter()
                .map(|&l| g.label_str(l))
                .min()
                .expect("fully labeled");
            let next = egroups.len() as u32;
            let id = *egroups.entry(first_label.to_string()).or_insert(next);
            edge_assignment.push(id);
        }

        Some(MethodOutput {
            node_assignment,
            edge_assignment: Some(edge_assignment),
            elapsed: start.elapsed(),
        })
    }
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Transitive single-link merging of entries by profile Jaccard — SchemI's
/// hierarchy construction, collapsed to its leaf grouping. Returns the
/// merged group id per original entry.
fn merge_profiles(profiles: &[BTreeSet<String>]) -> Vec<u32> {
    let n = profiles.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if jaccard(&profiles[i], &profiles[j]) >= HIERARCHY_THETA {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    let mut remap: HashMap<usize, u32> = HashMap::new();
    (0..n)
        .map(|i| {
            let root = find(&mut parent, i);
            let next = remap.len() as u32;
            *remap.entry(root).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::{GraphBuilder, Value};

    #[test]
    fn groups_nodes_by_single_label() {
        let mut b = GraphBuilder::new();
        let p1 = b.add_node(&["Person"], &[("name", Value::from("a"))]);
        let p2 = b.add_node(&["Person"], &[("name", Value::from("b"))]);
        let o = b.add_node(&["Org"], &[("url", Value::from("u"))]);
        b.add_edge(p1, p2, &["KNOWS"], &[]);
        b.add_edge(p1, o, &["WORKS_AT"], &[]);
        let g = b.finish();
        let out = SchemI.discover(&g).unwrap();
        assert_eq!(out.node_assignment[0], out.node_assignment[1]);
        assert_ne!(out.node_assignment[0], out.node_assignment[2]);
        let edges = out.edge_assignment.unwrap();
        assert_ne!(edges[0], edges[1]);
    }

    #[test]
    fn multilabel_nodes_collapse_to_first_label() {
        let mut b = GraphBuilder::new();
        b.add_node(&["Person"], &[("name", Value::from("x"))]);
        b.add_node(&["Person", "Student"], &[("name", Value::from("y"))]);
        b.add_node(&["Student"], &[("school", Value::from("z"))]);
        let g = b.finish();
        let out = SchemI.discover(&g).unwrap();
        // {Person,Student} lands in "Person" (alphabetically first) —
        // merged with plain Person, distinct from plain Student (whose
        // property profile differs).
        assert_eq!(out.node_assignment[0], out.node_assignment[1]);
        assert_ne!(out.node_assignment[1], out.node_assignment[2]);
    }

    #[test]
    fn hierarchy_merges_structurally_similar_groups() {
        // Post and Comment share their entire ≥50%-presence profile ⇒
        // SchemI's hierarchy collapses them (the LDBC sibling-type mixing).
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            b.add_node(
                &["Post"],
                &[("content", Value::from("c")), ("length", Value::Int(i))],
            );
            b.add_node(
                &["Comment"],
                &[("content", Value::from("c")), ("length", Value::Int(i))],
            );
            b.add_node(&["Tag"], &[("url", Value::from("u"))]);
        }
        let g = b.finish();
        let out = SchemI.discover(&g).unwrap();
        assert_eq!(
            out.node_assignment[0], out.node_assignment[1],
            "Post+Comment merged"
        );
        assert_ne!(
            out.node_assignment[0], out.node_assignment[2],
            "Tag separate"
        );
    }

    #[test]
    fn dissimilar_same_label_patterns_open_new_registry_entries() {
        // Same label, disjoint key sets: the registry keeps them apart
        // (harmless fragmentation under majority-F1).
        let mut b = GraphBuilder::new();
        b.add_node(&["T"], &[("a", Value::Int(1)), ("b", Value::Int(2))]);
        b.add_node(&["T"], &[("x", Value::Int(1)), ("y", Value::Int(2))]);
        let g = b.finish();
        let out = SchemI.discover(&g).unwrap();
        assert_ne!(out.node_assignment[0], out.node_assignment[1]);
    }

    #[test]
    fn noise_emptied_profiles_collapse() {
        // Groups whose keys all fall below 50% presence have empty
        // hierarchy profiles and merge — SchemI's noise failure mode.
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            if i < 2 {
                b.add_node(&["A"], &[("a", Value::Int(1))]);
                b.add_node(&["B"], &[("b", Value::Int(1))]);
            } else {
                b.add_node(&["A"], &[]);
                b.add_node(&["B"], &[]);
            }
        }
        let g = b.finish();
        let out = SchemI.discover(&g).unwrap();
        // The property-less A and B instances (indices 4, 5) fall into
        // empty-profile entries, which the hierarchy collapses together.
        assert_eq!(out.node_assignment[4], out.node_assignment[5]);
    }

    #[test]
    fn refuses_unlabeled_graphs() {
        let mut b = GraphBuilder::new();
        b.add_node(&[], &[]);
        let g = b.finish();
        assert!(SchemI.discover(&g).is_none());
    }

    #[test]
    fn refuses_unlabeled_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(&["A"], &[]);
        let c = b.add_node(&["B"], &[]);
        b.add_edge(a, c, &[], &[]);
        let g = b.finish();
        assert!(SchemI.discover(&g).is_none());
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = PropertyGraph::new();
        let out = SchemI.discover(&g).unwrap();
        assert!(out.node_assignment.is_empty());
    }
}
