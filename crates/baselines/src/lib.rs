//! # pg-hive-baselines
//!
//! Re-implementations of the two competitors the PG-HIVE paper evaluates
//! against, plus a uniform [`Method`] runner used by the benchmark harness:
//!
//! - [`schemi`] — **SchemI** (Lbath, Bonifati, Harmer — EDBT 2021): label-
//!   driven inference that treats each distinct label as a type. Requires
//!   fully labeled data; cannot exploit structure.
//! - [`gmmschema`] — **GMMSchema** (Bonifati, Dumbrava, Mir — EDBT 2022):
//!   hierarchical Gaussian-mixture clustering over label + property-
//!   distribution features. Node types only; requires fully labeled data;
//!   samples for scalability.
//!
//! Both baselines return `None` when label availability is below 100%,
//! matching §5.1: *"GMM and SchemI are able to work only under fully
//! labeled datasets."*

pub mod gmmschema;
pub mod method;
pub mod schemi;

pub use gmmschema::{GmmSchema, GmmSchemaConfig};
pub use method::{Method, MethodOutput};
pub use schemi::SchemI;

use pg_hive_graph::PropertyGraph;

/// True when every node and every edge carries at least one label — the
/// precondition for both baselines.
pub fn fully_labeled(g: &PropertyGraph) -> bool {
    g.nodes().all(|(_, n)| !n.labels.is_empty()) && g.edges().all(|(_, e)| !e.labels.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::GraphBuilder;

    #[test]
    fn fully_labeled_detection() {
        let mut b = GraphBuilder::new();
        b.add_node(&["A"], &[]);
        let g = b.finish();
        assert!(fully_labeled(&g));

        let mut b = GraphBuilder::new();
        b.add_node(&[], &[]);
        let g = b.finish();
        assert!(!fully_labeled(&g));
    }
}
