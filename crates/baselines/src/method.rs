//! Uniform runner over the four evaluated methods: PG-HIVE-ELSH,
//! PG-HIVE-MinHash, GMMSchema, SchemI.

use crate::gmmschema::GmmSchema;
use crate::schemi::SchemI;
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_graph::PropertyGraph;
use std::time::Duration;

/// What every method produces: a cluster id per node (and per edge, when
/// the method discovers edge types) plus the wall-clock until type
/// discovery.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    pub node_assignment: Vec<u32>,
    /// `None` for methods that cannot discover edge types (GMMSchema).
    pub edge_assignment: Option<Vec<u32>>,
    pub elapsed: Duration,
}

/// The four methods of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    PgHiveElsh,
    PgHiveMinHash,
    GmmSchema,
    SchemI,
}

impl Method {
    /// All four, in the paper's plotting order.
    pub const ALL: [Method; 4] = [
        Method::PgHiveElsh,
        Method::PgHiveMinHash,
        Method::GmmSchema,
        Method::SchemI,
    ];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::PgHiveElsh => "PG-HIVE-ELSH",
            Method::PgHiveMinHash => "PG-HIVE-MinHash",
            Method::GmmSchema => "GMM",
            Method::SchemI => "SchemI",
        }
    }

    /// Whether the method needs 100% label availability.
    pub fn requires_full_labels(self) -> bool {
        matches!(self, Method::GmmSchema | Method::SchemI)
    }

    /// Whether the method discovers edge types at all.
    pub fn discovers_edges(self) -> bool {
        !matches!(self, Method::GmmSchema)
    }

    /// Run the method on `g` with the given seed. `None` when the method's
    /// preconditions are not met (the baselines on semi-labeled data).
    pub fn run(self, g: &PropertyGraph, seed: u64) -> Option<MethodOutput> {
        match self {
            Method::PgHiveElsh => {
                let cfg = PipelineConfig {
                    seed,
                    ..PipelineConfig::elsh_adaptive()
                };
                Some(run_pg_hive(g, cfg))
            }
            Method::PgHiveMinHash => {
                let cfg = PipelineConfig {
                    seed,
                    ..PipelineConfig::minhash_default()
                };
                Some(run_pg_hive(g, cfg))
            }
            Method::GmmSchema => GmmSchema {
                config: crate::GmmSchemaConfig {
                    seed,
                    ..Default::default()
                },
            }
            .discover(g),
            Method::SchemI => SchemI.discover(g),
        }
    }
}

fn run_pg_hive(g: &PropertyGraph, cfg: PipelineConfig) -> MethodOutput {
    let r = Discoverer::new(cfg).discover(g);
    MethodOutput {
        node_assignment: r.node_cluster_assignment,
        edge_assignment: Some(r.edge_cluster_assignment),
        elapsed: r.stats.timings.discovery(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::{GraphBuilder, Value};

    fn small_graph(labeled: bool) -> PropertyGraph {
        let mut b = GraphBuilder::new();
        let labels: &[&str] = if labeled { &["T"] } else { &[] };
        let mut prev = None;
        for i in 0..20 {
            let id = b.add_node(labels, &[("x", Value::Int(i))]);
            if let Some(p) = prev {
                b.add_edge(p, id, &["E"], &[]);
            }
            prev = Some(id);
        }
        b.finish()
    }

    #[test]
    fn all_methods_run_on_labeled_data() {
        let g = small_graph(true);
        for m in Method::ALL {
            let out = m
                .run(&g, 1)
                .unwrap_or_else(|| panic!("{} failed", m.name()));
            assert_eq!(out.node_assignment.len(), 20, "{}", m.name());
            assert_eq!(out.edge_assignment.is_some(), m.discovers_edges());
        }
    }

    #[test]
    fn baselines_refuse_unlabeled_data() {
        let g = small_graph(false);
        assert!(Method::GmmSchema.run(&g, 1).is_none());
        assert!(Method::SchemI.run(&g, 1).is_none());
        assert!(Method::PgHiveElsh.run(&g, 1).is_some());
        assert!(Method::PgHiveMinHash.run(&g, 1).is_some());
    }

    #[test]
    fn capability_flags_match_table1() {
        assert!(Method::GmmSchema.requires_full_labels());
        assert!(Method::SchemI.requires_full_labels());
        assert!(!Method::PgHiveElsh.requires_full_labels());
        assert!(!Method::GmmSchema.discovers_edges());
        assert!(Method::SchemI.discovers_edges());
    }
}
