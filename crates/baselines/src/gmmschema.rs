//! GMMSchema (EDBT 2022) re-implementation.
//!
//! GMMSchema "introduces hierarchical clustering based on Gaussian Mixture
//! Models to group nodes by analyzing labels and property distributions"
//! (§2). Its published limitations, all reproduced here:
//!
//! 1. node clustering only — no edge types,
//! 2. requires fully labeled data (`None` otherwise),
//! 3. not designed for missing/noisy properties: the property-distribution
//!    features overlap as noise grows and the Gaussians mix types,
//! 4. samples nodes to scale, then assigns the rest by prediction.
//!
//! Features: a per-label-set anchor coordinate (labels dominate on clean
//! data) concatenated with the binary property vector (which noise
//! perturbs). Model selection picks the component count by BIC around the
//! number of observed label sets.

use pg_hive_gmm::{fit_best, GmmConfig, SelectionCriterion};
use pg_hive_graph::PropertyGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

use crate::method::MethodOutput;

/// GMMSchema knobs.
#[derive(Debug, Clone)]
pub struct GmmSchemaConfig {
    /// Maximum nodes used to *fit* the mixture (limitation iv — sampling).
    pub fit_sample: usize,
    /// Half-width of the BIC search window around the label-set count.
    pub k_window: usize,
    /// EM iteration budget.
    pub max_iters: usize,
    pub seed: u64,
}

impl Default for GmmSchemaConfig {
    fn default() -> Self {
        Self {
            fit_sample: 1500,
            k_window: 2,
            max_iters: 40,
            seed: 0x6A5E,
        }
    }
}

/// The GMMSchema discoverer.
#[derive(Debug, Clone, Default)]
pub struct GmmSchema {
    pub config: GmmSchemaConfig,
}

impl GmmSchema {
    /// Discoverer with explicit configuration.
    pub fn new(config: GmmSchemaConfig) -> Self {
        Self { config }
    }

    /// Run GMMSchema. `None` unless fully labeled. Edge assignment is
    /// always `None` (limitation i).
    pub fn discover(&self, g: &PropertyGraph) -> Option<MethodOutput> {
        if !crate::fully_labeled(g) {
            return None;
        }
        let start = Instant::now();
        let n = g.node_count();
        if n == 0 {
            return Some(MethodOutput {
                node_assignment: vec![],
                edge_assignment: None,
                elapsed: start.elapsed(),
            });
        }

        // Label-set anchors: each distinct label set gets a 2-D coordinate
        // on a circle of radius `anchor_scale`. On clean data these anchors
        // dominate the Gaussian fit; property noise perturbs the binary
        // block and blurs the mixture — the paper's noise sensitivity.
        let mut label_sets: HashMap<Vec<u32>, usize> = HashMap::new();
        let mut set_of_node = Vec::with_capacity(n);
        for (_, node) in g.nodes() {
            let key: Vec<u32> = node.labels.iter().map(|l| l.0).collect();
            let next = label_sets.len();
            let id = *label_sets.entry(key).or_insert(next);
            set_of_node.push(id);
        }
        let l = label_sets.len();
        let anchor_scale = 1.5;
        let key_count = g.keys().len();
        let dim = 2 + key_count;

        let features: Vec<Vec<f64>> = g
            .nodes()
            .zip(&set_of_node)
            .map(|((_, node), &set_id)| {
                let mut v = vec![0.0f64; dim];
                let angle = std::f64::consts::TAU * set_id as f64 / l.max(1) as f64;
                v[0] = anchor_scale * angle.cos();
                v[1] = anchor_scale * angle.sin();
                for k in node.keys() {
                    v[2 + k.index()] = 1.0;
                }
                v
            })
            .collect();

        // Fit on a sample (limitation iv).
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let fit_set: Vec<Vec<f64>> = if n <= self.config.fit_sample {
            features.clone()
        } else {
            (0..self.config.fit_sample)
                .map(|_| features[rng.gen_range(0..n)].clone())
                .collect()
        };

        let k_lo = l.saturating_sub(self.config.k_window).max(1);
        let k_hi = (l + self.config.k_window).min(fit_set.len());
        let (_, model) = fit_best(
            &fit_set,
            k_lo..=k_hi,
            SelectionCriterion::Bic,
            &GmmConfig {
                max_iters: self.config.max_iters,
                seed: self.config.seed,
                ..GmmConfig::default()
            },
        );

        let node_assignment: Vec<u32> = features.iter().map(|f| model.predict(f) as u32).collect();

        Some(MethodOutput {
            node_assignment,
            edge_assignment: None,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::{GraphBuilder, Value};

    fn labeled_graph(noise_props: bool, seed: u64) -> PropertyGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for i in 0..120 {
            if i % 2 == 0 {
                let mut props = vec![
                    ("name", Value::from("x")),
                    ("age", Value::Int(i)),
                    ("city", Value::from("y")),
                ];
                if noise_props {
                    props.retain(|_| rng.gen::<f64>() > 0.4);
                }
                b.add_node(&["Person"], &props);
            } else {
                let mut props = vec![("url", Value::from("u")), ("founded", Value::Int(1990))];
                if noise_props {
                    props.retain(|_| rng.gen::<f64>() > 0.4);
                }
                b.add_node(&["Org"], &props);
            }
        }
        b.finish()
    }

    #[test]
    fn clean_data_separates_types() {
        let g = labeled_graph(false, 1);
        let out = GmmSchema::default().discover(&g).unwrap();
        // All Persons together, all Orgs together, distinct.
        let p = out.node_assignment[0];
        let o = out.node_assignment[1];
        assert_ne!(p, o);
        assert!(out.node_assignment.iter().step_by(2).all(|&a| a == p));
        assert!(out
            .node_assignment
            .iter()
            .skip(1)
            .step_by(2)
            .all(|&a| a == o));
    }

    #[test]
    fn no_edge_types_ever() {
        let g = labeled_graph(false, 2);
        let out = GmmSchema::default().discover(&g).unwrap();
        assert!(out.edge_assignment.is_none());
    }

    #[test]
    fn refuses_partially_labeled_graphs() {
        let mut b = GraphBuilder::new();
        b.add_node(&["A"], &[]);
        b.add_node(&[], &[]);
        let g = b.finish();
        assert!(GmmSchema::default().discover(&g).is_none());
    }

    #[test]
    fn sampling_path_still_assigns_everyone() {
        let g = labeled_graph(false, 3);
        let cfg = GmmSchemaConfig {
            fit_sample: 30, // force the sampling path
            ..Default::default()
        };
        let out = GmmSchema::new(cfg).discover(&g).unwrap();
        assert_eq!(out.node_assignment.len(), 120);
    }

    #[test]
    fn empty_graph() {
        let out = GmmSchema::default()
            .discover(&PropertyGraph::new())
            .unwrap();
        assert!(out.node_assignment.is_empty());
    }
}
