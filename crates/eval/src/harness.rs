//! The experiment grid of §5: dataset × noise × label availability ×
//! method.

use crate::f1::{majority_f1, F1Scores};
use pg_hive_baselines::Method;
use pg_hive_datasets::{inject_noise, DatasetId, NoiseSpec};
use std::time::Duration;

/// One cell of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentCase {
    pub dataset: DatasetId,
    /// Property-removal percentage (paper: 0, 10, 20, 30, 40).
    pub noise_pct: u32,
    /// Label availability percentage (paper: 100, 50, 0).
    pub label_pct: u32,
    pub method: Method,
    /// Dataset scale factor relative to the default sizes.
    pub scale: f64,
    pub seed: u64,
}

/// What one run of one cell yields.
#[derive(Debug, Clone, Copy)]
pub struct CaseResult {
    /// Node-type F1\*; `None` when the method refuses the input.
    pub node_f1: Option<F1Scores>,
    /// Edge-type F1\*; `None` when the method cannot discover edge types
    /// or refused the input.
    pub edge_f1: Option<F1Scores>,
    /// Time until type discovery.
    pub elapsed: Option<Duration>,
}

/// Run one grid cell: generate the dataset, degrade it, run the method,
/// score against ground truth.
pub fn run_case(case: &ExperimentCase) -> CaseResult {
    let mut dataset = case.dataset.generate(case.scale, case.seed);
    inject_noise(
        &mut dataset.graph,
        &NoiseSpec::grid(case.noise_pct, case.label_pct, case.seed),
    );
    let Some(out) = case.method.run(&dataset.graph, case.seed) else {
        return CaseResult {
            node_f1: None,
            edge_f1: None,
            elapsed: None,
        };
    };
    let node_f1 = majority_f1(&out.node_assignment, &dataset.truth.node_types);
    let edge_f1 = out
        .edge_assignment
        .as_ref()
        .map(|ea| majority_f1(ea, &dataset.truth.edge_types));
    CaseResult {
        node_f1: Some(node_f1),
        edge_f1,
        elapsed: Some(out.elapsed),
    }
}

/// The paper's noise levels.
pub const NOISE_LEVELS: [u32; 5] = [0, 10, 20, 30, 40];
/// The paper's label-availability levels.
pub const LABEL_LEVELS: [u32; 3] = [100, 50, 0];

#[cfg(test)]
mod tests {
    use super::*;

    fn case(method: Method, noise: u32, labels: u32) -> ExperimentCase {
        ExperimentCase {
            dataset: DatasetId::Pole,
            noise_pct: noise,
            label_pct: labels,
            method,
            scale: 0.08,
            seed: 9,
        }
    }

    #[test]
    fn pg_hive_scores_high_on_clean_pole() {
        let r = run_case(&case(Method::PgHiveElsh, 0, 100));
        let f1 = r.node_f1.expect("runs");
        assert!(f1.macro_f1 > 0.9, "node F1 = {}", f1.macro_f1);
        let ef1 = r.edge_f1.expect("edge types");
        assert!(ef1.macro_f1 > 0.9, "edge F1 = {}", ef1.macro_f1);
    }

    #[test]
    fn baselines_refuse_half_labeled_input() {
        for m in [Method::GmmSchema, Method::SchemI] {
            let r = run_case(&case(m, 0, 50));
            assert!(r.node_f1.is_none(), "{} should refuse", m.name());
        }
    }

    #[test]
    fn pg_hive_still_works_with_no_labels() {
        let r = run_case(&case(Method::PgHiveElsh, 20, 0));
        let f1 = r.node_f1.expect("label-independent");
        assert!(f1.macro_f1 > 0.5, "node F1 = {}", f1.macro_f1);
    }

    #[test]
    fn gmm_has_no_edge_f1() {
        let r = run_case(&case(Method::GmmSchema, 0, 100));
        assert!(r.node_f1.is_some());
        assert!(r.edge_f1.is_none());
    }
}
