//! Plain-text renderers for the paper's tables and figures.

use pg_hive_graph::{GraphStats, PropertyGraph};
use std::fmt::Write;

/// Table 1: the qualitative capability matrix.
pub fn capability_matrix() -> String {
    let rows = [
        ("Label Independent", ["x", "x", "x", "yes"]),
        ("Multilabeled Elements", ["x", "yes", "yes", "yes"]),
        (
            "Schema Elements",
            [
                "Nodes & Edges",
                "Nodes only",
                "Nodes + assoc. Edges",
                "Nodes, Edges & constraints",
            ],
        ),
        ("Constraints", ["x", "x", "x", "yes"]),
        ("Incremental", ["x", "x", "yes", "yes"]),
        ("Automation", ["yes", "yes", "yes", "yes"]),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:<15} {:<12} {:<22} PG-HIVE (ours)",
        "Capability", "SchemI", "GMMSchema", "DiscoPG"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for (name, cells) in rows {
        let _ = writeln!(
            out,
            "{:<24} {:<15} {:<12} {:<22} {}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    out
}

/// One row of Table 2 for a generated dataset.
pub fn table2_row(name: &str, g: &PropertyGraph, node_types: usize, edge_types: usize) -> String {
    let s = GraphStats::compute(g);
    format!(
        "{:<8} {:>9} {:>10} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9}",
        name,
        s.nodes,
        s.edges,
        node_types,
        edge_types,
        s.node_labels,
        s.edge_labels,
        s.node_patterns,
        s.edge_patterns
    )
}

/// Table 2 header matching [`table2_row`].
pub fn table2_header() -> String {
    format!(
        "{:<8} {:>9} {:>10} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9}",
        "Dataset",
        "Nodes",
        "Edges",
        "NTypes",
        "ETypes",
        "NLabels",
        "ELabels",
        "NPatterns",
        "EPatterns"
    )
}

/// Render an F1-vs-noise series as a compact line (Fig. 4-style row).
pub fn f1_series_row(method: &str, scores: &[Option<f64>]) -> String {
    let mut out = format!("{method:<16}");
    for s in scores {
        match s {
            Some(v) => {
                let _ = write!(out, " {v:>6.3}");
            }
            None => {
                let _ = write!(out, " {:>6}", "-");
            }
        }
    }
    out
}

/// Render a time series in seconds (Fig. 5 / Fig. 7-style row).
pub fn time_series_row(label: &str, times: &[Option<std::time::Duration>]) -> String {
    let mut out = format!("{label:<16}");
    for t in times {
        match t {
            Some(d) => {
                let _ = write!(out, " {:>8.3}", d.as_secs_f64());
            }
            None => {
                let _ = write!(out, " {:>8}", "-");
            }
        }
    }
    out
}

/// Fig. 3-style average-rank line with Nemenyi critical distance.
pub fn rank_line(names: &[&str], ranks: &[f64], cd: f64) -> String {
    let mut pairs: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut out = String::new();
    let _ = write!(out, "avg ranks (lower = better, CD = {cd:.3}): ");
    for (i, (m, r)) in pairs.iter().enumerate() {
        if i > 0 {
            let _ = write!(out, "  |  ");
        }
        let _ = write!(out, "{} = {:.2}", names[*m], r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::GraphBuilder;
    use std::time::Duration;

    #[test]
    fn capability_matrix_mentions_all_methods() {
        let m = capability_matrix();
        for name in ["SchemI", "GMMSchema", "DiscoPG", "PG-HIVE"] {
            assert!(m.contains(name), "missing {name}");
        }
        assert!(m.contains("Label Independent"));
    }

    #[test]
    fn table2_row_formats() {
        let mut b = GraphBuilder::new();
        b.add_node(&["A"], &[]);
        let g = b.finish();
        let row = table2_row("X", &g, 1, 0);
        assert!(row.starts_with("X"));
        assert!(row.contains('1'));
        // Header and row have aligned column counts.
        assert_eq!(
            table2_header().split_whitespace().count(),
            row.split_whitespace().count()
        );
    }

    #[test]
    fn f1_series_handles_missing() {
        let row = f1_series_row("GMM", &[Some(0.9), None, Some(0.5)]);
        assert!(row.contains("0.900"));
        assert!(row.contains(" -"));
    }

    #[test]
    fn time_series_formats_seconds() {
        let row = time_series_row("POLE", &[Some(Duration::from_millis(1500)), None]);
        assert!(row.contains("1.500"));
    }

    #[test]
    fn rank_line_sorts_by_rank() {
        let line = rank_line(&["A", "B"], &[2.0, 1.0], 0.5);
        let a = line.find("A =").unwrap();
        let b = line.find("B =").unwrap();
        assert!(b < a, "B (better rank) listed first");
    }
}
