//! # pg-hive-eval
//!
//! Evaluation harness reproducing §5 of the PG-HIVE paper:
//!
//! - [`f1`] — the majority-based F1\*-score: each discovered cluster is
//!   labeled with the majority ground-truth type of its members, elements
//!   are scored against that label, and per-type F1 is macro-averaged.
//! - [`ranks`] — Friedman average ranks and the Nemenyi critical distance
//!   (Fig. 3's statistical-significance analysis).
//! - [`sampling_error`] — the datatype sampling-error metric and its bins
//!   (Fig. 8).
//! - [`harness`] — the experiment grid: dataset × noise × label
//!   availability × method, returning F1 and timing observations.
//! - [`report`] — plain-text renderers that print each table/figure in the
//!   paper's layout.

pub mod confusion;
pub mod f1;
pub mod harness;
pub mod ranks;
pub mod report;
pub mod sampling_error;

pub use confusion::{ConfusionReport, TypeScore};
pub use f1::{majority_f1, F1Scores};
pub use harness::{run_case, CaseResult, ExperimentCase};
pub use ranks::{average_ranks, friedman_statistic, nemenyi_critical_distance};
pub use sampling_error::{sampling_errors, ErrorBins};
