//! Per-type diagnostics beyond the single F1\* number: which ground-truth
//! types a clustering confuses with which, and per-type precision/recall.
//! This is the analysis tool behind statements like "MB6's multi-label
//! neurons are misgrouped with Segments under high noise" (§5.1).

use std::collections::HashMap;

/// Precision/recall/F1 and support for one ground-truth type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeScore {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    /// Number of elements of this ground-truth type.
    pub support: usize,
}

/// Full per-type evaluation of a clustering under majority labeling.
#[derive(Debug, Clone)]
pub struct ConfusionReport {
    /// Ground-truth type id → score.
    pub per_type: HashMap<u32, TypeScore>,
    /// `(true_type, predicted_type) → count` for misassigned elements only.
    pub confusions: HashMap<(u32, u32), usize>,
}

impl ConfusionReport {
    /// Build from cluster/truth assignments (same majority-labeling rule as
    /// [`crate::majority_f1`]).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn compute(clusters: &[u32], truth: &[u32]) -> Self {
        assert_eq!(clusters.len(), truth.len(), "length mismatch");

        // Majority type per cluster.
        let mut counts: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
        for (&c, &t) in clusters.iter().zip(truth) {
            *counts.entry(c).or_default().entry(t).or_insert(0) += 1;
        }
        let majority: HashMap<u32, u32> = counts
            .iter()
            .map(|(&c, dist)| {
                let (&best, _) = dist
                    .iter()
                    .max_by_key(|(&t, &n)| (n, std::cmp::Reverse(t)))
                    .expect("non-empty");
                (c, best)
            })
            .collect();

        let mut tp: HashMap<u32, f64> = HashMap::new();
        let mut pred_count: HashMap<u32, f64> = HashMap::new();
        let mut true_count: HashMap<u32, usize> = HashMap::new();
        let mut confusions: HashMap<(u32, u32), usize> = HashMap::new();
        for (&c, &t) in clusters.iter().zip(truth) {
            let p = majority[&c];
            *pred_count.entry(p).or_insert(0.0) += 1.0;
            *true_count.entry(t).or_insert(0) += 1;
            if p == t {
                *tp.entry(t).or_insert(0.0) += 1.0;
            } else {
                *confusions.entry((t, p)).or_insert(0) += 1;
            }
        }

        let per_type = true_count
            .iter()
            .map(|(&t, &support)| {
                let tpv = tp.get(&t).copied().unwrap_or(0.0);
                let pc = pred_count.get(&t).copied().unwrap_or(0.0);
                let precision = if pc > 0.0 { tpv / pc } else { 0.0 };
                let recall = tpv / support as f64;
                let f1 = if precision + recall > 0.0 {
                    2.0 * precision * recall / (precision + recall)
                } else {
                    0.0
                };
                (
                    t,
                    TypeScore {
                        precision,
                        recall,
                        f1,
                        support,
                    },
                )
            })
            .collect();

        ConfusionReport {
            per_type,
            confusions,
        }
    }

    /// The worst-scoring types, ascending by F1 (ties by type id).
    pub fn worst_types(&self, n: usize) -> Vec<(u32, TypeScore)> {
        let mut v: Vec<(u32, TypeScore)> = self.per_type.iter().map(|(&t, &s)| (t, s)).collect();
        v.sort_by(|a, b| a.1.f1.partial_cmp(&b.1.f1).unwrap().then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// The most frequent confusion pairs, descending.
    pub fn top_confusions(&self, n: usize) -> Vec<((u32, u32), usize)> {
        let mut v: Vec<((u32, u32), usize)> =
            self.confusions.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Render with type names (indexable by ground-truth id).
    pub fn render(&self, type_names: &[String]) -> String {
        use std::fmt::Write;
        let name = |t: u32| {
            type_names
                .get(t as usize)
                .map(String::as_str)
                .unwrap_or("?")
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>9} {:>8} {:>8} {:>8}",
            "type", "precision", "recall", "F1", "support"
        );
        let mut types: Vec<(&u32, &TypeScore)> = self.per_type.iter().collect();
        types.sort_by_key(|(t, _)| **t);
        for (&t, s) in types {
            let _ = writeln!(
                out,
                "{:<28} {:>9.3} {:>8.3} {:>8.3} {:>8}",
                name(t),
                s.precision,
                s.recall,
                s.f1,
                s.support
            );
        }
        let top = self.top_confusions(5);
        if !top.is_empty() {
            let _ = writeln!(out, "top confusions (true -> predicted):");
            for ((t, p), c) in top {
                let _ = writeln!(out, "  {} -> {}  x{}", name(t), name(p), c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_has_no_confusions() {
        let truth = vec![0, 0, 1, 1];
        let clusters = vec![9, 9, 7, 7];
        let r = ConfusionReport::compute(&clusters, &truth);
        assert!(r.confusions.is_empty());
        assert_eq!(r.per_type[&0].f1, 1.0);
        assert_eq!(r.per_type[&1].support, 2);
    }

    #[test]
    fn minority_in_mixed_cluster_shows_up_as_confusion() {
        // Cluster holds 3×A(0) + 1×B(1): B is predicted as A.
        let truth = vec![0, 0, 0, 1];
        let clusters = vec![0, 0, 0, 0];
        let r = ConfusionReport::compute(&clusters, &truth);
        assert_eq!(r.confusions[&(1, 0)], 1);
        assert_eq!(r.per_type[&1].recall, 0.0);
        assert!((r.per_type[&0].precision - 0.75).abs() < 1e-12);
        assert_eq!(r.per_type[&0].recall, 1.0);
    }

    #[test]
    fn worst_types_sorted_ascending() {
        let truth = vec![0, 0, 1, 1, 2];
        let clusters = vec![0, 0, 0, 0, 5]; // type 1 fully absorbed by A
        let r = ConfusionReport::compute(&clusters, &truth);
        let worst = r.worst_types(2);
        assert_eq!(worst[0].0, 1, "type 1 is worst (F1 = 0)");
        assert_eq!(worst[0].1.f1, 0.0);
    }

    #[test]
    fn render_contains_names_and_pairs() {
        let truth = vec![0, 1];
        let clusters = vec![0, 0];
        let r = ConfusionReport::compute(&clusters, &truth);
        let names = vec!["Person".to_string(), "Post".to_string()];
        let text = r.render(&names);
        assert!(text.contains("Person"));
        assert!(text.contains("Post -> Person"), "{text}");
    }

    #[test]
    fn agrees_with_majority_f1_macro() {
        let truth = vec![0, 0, 1, 1, 2, 2, 2];
        let clusters = vec![0, 1, 1, 1, 2, 2, 0];
        let r = ConfusionReport::compute(&clusters, &truth);
        let macro_from_report: f64 =
            r.per_type.values().map(|s| s.f1).sum::<f64>() / r.per_type.len() as f64;
        let f1 = crate::majority_f1(&clusters, &truth);
        assert!((macro_from_report - f1.macro_f1).abs() < 1e-12);
    }
}
