//! The majority-based F1\*-score (§5 "Evaluation metrics").
//!
//! "The correctness of a node/edge placement is determined based on whether
//! its actual type matches the majority label(s) of its cluster." Each
//! cluster is assigned the most frequent ground-truth type among its
//! members; every element's *predicted* type is its cluster's majority
//! type; precision/recall/F1 are computed per ground-truth type and
//! macro-averaged (micro average = plain accuracy is also reported).

use std::collections::HashMap;

/// F1\* scores of one clustering against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Scores {
    /// Macro-averaged F1 over ground-truth types (the headline number).
    pub macro_f1: f64,
    /// Micro-averaged F1 = accuracy under majority labeling.
    pub micro_f1: f64,
    /// Number of distinct predicted (cluster-majority) types.
    pub predicted_types: usize,
}

/// Compute the majority-based F1\* of `clusters` (cluster id per element)
/// against `truth` (ground-truth type id per element).
///
/// Empty inputs score 1.0 (vacuously perfect). Panics if lengths differ.
pub fn majority_f1(clusters: &[u32], truth: &[u32]) -> F1Scores {
    assert_eq!(clusters.len(), truth.len(), "length mismatch");
    let n = clusters.len();
    if n == 0 {
        return F1Scores {
            macro_f1: 1.0,
            micro_f1: 1.0,
            predicted_types: 0,
        };
    }

    // Majority ground-truth type per cluster.
    let mut counts: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
    for (&c, &t) in clusters.iter().zip(truth) {
        *counts.entry(c).or_default().entry(t).or_insert(0) += 1;
    }
    let majority: HashMap<u32, u32> = counts
        .iter()
        .map(|(&c, dist)| {
            let (&best, _) = dist
                .iter()
                .max_by_key(|(&t, &cnt)| (cnt, std::cmp::Reverse(t)))
                .expect("non-empty cluster");
            (c, best)
        })
        .collect();

    // Predicted type per element = its cluster's majority.
    let predicted: Vec<u32> = clusters.iter().map(|c| majority[c]).collect();

    // Per-type precision/recall/F1.
    let mut tp: HashMap<u32, f64> = HashMap::new();
    let mut pred_count: HashMap<u32, f64> = HashMap::new();
    let mut true_count: HashMap<u32, f64> = HashMap::new();
    for (&p, &t) in predicted.iter().zip(truth) {
        *pred_count.entry(p).or_insert(0.0) += 1.0;
        *true_count.entry(t).or_insert(0.0) += 1.0;
        if p == t {
            *tp.entry(t).or_insert(0.0) += 1.0;
        }
    }

    let mut macro_sum = 0.0;
    let mut types = 0usize;
    for (&t, &tc) in &true_count {
        let tpv = tp.get(&t).copied().unwrap_or(0.0);
        let pc = pred_count.get(&t).copied().unwrap_or(0.0);
        let precision = if pc > 0.0 { tpv / pc } else { 0.0 };
        let recall = tpv / tc;
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        macro_sum += f1;
        types += 1;
    }

    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count() as f64;

    let distinct_predicted: std::collections::HashSet<u32> = majority.values().copied().collect();

    F1Scores {
        macro_f1: macro_sum / types as f64,
        micro_f1: correct / n as f64,
        predicted_types: distinct_predicted.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let clusters = vec![5, 5, 9, 9, 7, 7];
        let s = majority_f1(&clusters, &truth);
        assert_eq!(s.macro_f1, 1.0);
        assert_eq!(s.micro_f1, 1.0);
        assert_eq!(s.predicted_types, 3);
    }

    #[test]
    fn over_fragmentation_is_free() {
        // Splitting a type across clusters doesn't hurt F1*: every fragment
        // still has the right majority.
        let truth = vec![0, 0, 0, 0, 1, 1];
        let clusters = vec![0, 1, 2, 3, 4, 4];
        let s = majority_f1(&clusters, &truth);
        assert_eq!(s.macro_f1, 1.0);
    }

    #[test]
    fn mixed_cluster_penalizes_minority() {
        // One cluster holds 3×A and 1×B: B is mislabeled as A.
        let truth = vec![0, 0, 0, 1];
        let clusters = vec![0, 0, 0, 0];
        let s = majority_f1(&clusters, &truth);
        // Type A: P = 3/4, R = 1 → F1 = 6/7. Type B: F1 = 0.
        assert!((s.macro_f1 - (6.0 / 7.0) / 2.0).abs() < 1e-9);
        assert!((s.micro_f1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn total_merge_collapses_macro() {
        // Everything in one cluster, 4 equal types: macro F1 tanks.
        let truth = vec![0, 1, 2, 3];
        let clusters = vec![0, 0, 0, 0];
        let s = majority_f1(&clusters, &truth);
        assert!(s.macro_f1 < 0.15);
        assert_eq!(s.predicted_types, 1);
    }

    #[test]
    fn empty_inputs_are_vacuously_perfect() {
        let s = majority_f1(&[], &[]);
        assert_eq!(s.macro_f1, 1.0);
    }

    #[test]
    fn majority_tie_is_deterministic() {
        // 1×A + 1×B in one cluster: tie broken toward the smaller type id.
        let truth = vec![0, 1];
        let clusters = vec![0, 0];
        let a = majority_f1(&clusters, &truth);
        let b = majority_f1(&clusters, &truth);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        majority_f1(&[0], &[0, 1]);
    }
}
