//! Datatype sampling error (Fig. 8).
//!
//! For each property `p`, let `D_p` be all its values and `S_p` a sample.
//! The paper defines `error(p) = (1/|S_p|) Σ_{v ∈ S_p} 1[f(v) ≠ f(D_p)]`:
//! the fraction of sampled values whose individually inferred datatype
//! disagrees with the full-scan inferred type of the property. Errors are
//! binned (0–0.05, 0.05–0.10, 0.10–0.20, ≥0.20) and normalized by the
//! number of properties.

use pg_hive_core::postprocess::{infer_kind_of_values, infer_value_kind};
use pg_hive_core::SamplingConfig;
use pg_hive_graph::PropertyGraph;
use std::collections::HashMap;

/// Per-property sampling errors, keyed by property name.
pub type PropertyErrors = HashMap<String, f64>;

/// The four bins of Fig. 8, as fractions of all properties.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorBins {
    /// error ∈ [0, 0.05)
    pub lowest: f64,
    /// error ∈ [0.05, 0.10)
    pub low: f64,
    /// error ∈ [0.10, 0.20)
    pub mid: f64,
    /// error ≥ 0.20
    pub high: f64,
}

impl ErrorBins {
    /// Bin a set of per-property errors.
    pub fn from_errors(errors: &PropertyErrors) -> Self {
        let total = errors.len().max(1) as f64;
        let mut bins = ErrorBins::default();
        for &e in errors.values() {
            if e < 0.05 {
                bins.lowest += 1.0;
            } else if e < 0.10 {
                bins.low += 1.0;
            } else if e < 0.20 {
                bins.mid += 1.0;
            } else {
                bins.high += 1.0;
            }
        }
        bins.lowest /= total;
        bins.low /= total;
        bins.mid /= total;
        bins.high /= total;
        bins
    }
}

/// Compute `error(p)` for every property key of the graph (over node and
/// edge values pooled per key, as a full-dataset scan would see them).
pub fn sampling_errors(g: &PropertyGraph, sampling: &SamplingConfig) -> PropertyErrors {
    // Gather all lexical values per key.
    let mut values: HashMap<String, Vec<String>> = HashMap::new();
    for (_, n) in g.nodes() {
        for (k, v) in &n.props {
            values
                .entry(g.key_str(*k).to_string())
                .or_default()
                .push(v.lexical());
        }
    }
    for (_, e) in g.edges() {
        for (k, v) in &e.props {
            values
                .entry(g.key_str(*k).to_string())
                .or_default()
                .push(v.lexical());
        }
    }

    let mut errors = PropertyErrors::new();
    for (key, vals) in values {
        let full_kind =
            infer_kind_of_values(vals.iter().map(String::as_str)).expect("non-empty value list");
        let want = ((vals.len() as f64 * sampling.fraction).ceil() as usize)
            .max(sampling.min_values)
            .min(vals.len());
        let sample = deterministic_sample(&vals, want, sampling.seed);
        let disagreements = sample
            .iter()
            .filter(|v| infer_value_kind(v) != full_kind)
            .count();
        errors.insert(key, disagreements as f64 / sample.len() as f64);
    }
    errors
}

/// Fig. 8's per-method variant: errors computed per *(discovered type,
/// property)* pair of a schema, so that methods which group instances
/// differently (ELSH vs MinHash) see different value populations per
/// property. Keys are `"TypeName.prop"`.
pub fn sampling_errors_by_type(
    g: &PropertyGraph,
    schema: &pg_hive_core::SchemaGraph,
    sampling: &SamplingConfig,
) -> PropertyErrors {
    let mut errors = PropertyErrors::new();
    for (idx, t) in schema.node_types.iter().enumerate() {
        let type_name = if t.labels.is_empty() {
            format!("Abstract{idx}")
        } else {
            t.labels.iter().cloned().collect::<Vec<_>>().join("|")
        };
        for key in t.props.keys() {
            let Some(sym) = g.keys().get(key) else {
                continue;
            };
            let vals: Vec<String> = t
                .members
                .iter()
                .filter_map(|&m| g.node(pg_hive_graph::NodeId(m)).get(sym))
                .map(|v| v.lexical())
                .collect();
            if vals.is_empty() {
                continue;
            }
            let full_kind =
                infer_kind_of_values(vals.iter().map(String::as_str)).expect("non-empty");
            let want = ((vals.len() as f64 * sampling.fraction).ceil() as usize)
                .max(sampling.min_values)
                .min(vals.len());
            let sample = deterministic_sample(&vals, want, sampling.seed);
            let disagreements = sample
                .iter()
                .filter(|v| infer_value_kind(v) != full_kind)
                .count();
            errors.insert(
                format!("{type_name}.{key}"),
                disagreements as f64 / sample.len() as f64,
            );
        }
    }
    errors
}

fn deterministic_sample(vals: &[String], want: usize, seed: u64) -> Vec<&String> {
    if want >= vals.len() {
        return vals.iter().collect();
    }
    let mut idx: Vec<usize> = (0..vals.len()).collect();
    let mut state = seed;
    for i in 0..want {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let j = i + (z % (idx.len() - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx[..want].iter().map(|&i| &vals[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::{GraphBuilder, Value};

    #[test]
    fn clean_property_has_zero_error() {
        let mut b = GraphBuilder::new();
        for i in 0..100 {
            b.add_node(&["T"], &[("x", Value::Int(i))]);
        }
        let g = b.finish();
        let errors = sampling_errors(
            &g,
            &SamplingConfig {
                fraction: 0.1,
                min_values: 5,
                seed: 1,
            },
        );
        assert_eq!(errors["x"], 0.0);
    }

    #[test]
    fn dirty_property_error_tracks_outlier_rate() {
        // 90 ints + 10 strings: full-scan kind = String, so every sampled
        // *integer* disagrees ⇒ error ≈ 0.9.
        let mut b = GraphBuilder::new();
        for i in 0..90 {
            b.add_node(&["T"], &[("x", Value::Int(i))]);
        }
        for _ in 0..10 {
            b.add_node(&["T"], &[("x", Value::from("oops"))]);
        }
        let g = b.finish();
        let errors = sampling_errors(
            &g,
            &SamplingConfig {
                fraction: 1.0,
                min_values: 1,
                seed: 2,
            },
        );
        assert!((errors["x"] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn bins_normalize_by_property_count() {
        let mut errors = PropertyErrors::new();
        errors.insert("a".into(), 0.0);
        errors.insert("b".into(), 0.01);
        errors.insert("c".into(), 0.07);
        errors.insert("d".into(), 0.5);
        let bins = ErrorBins::from_errors(&errors);
        assert!((bins.lowest - 0.5).abs() < 1e-9);
        assert!((bins.low - 0.25).abs() < 1e-9);
        assert!((bins.mid - 0.0).abs() < 1e-9);
        assert!((bins.high - 0.25).abs() < 1e-9);
        let total = bins.lowest + bins.low + bins.mid + bins.high;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn integers_among_floats_disagree() {
        // Mixed int/float: full kind = Float (join), ints individually
        // infer Integer ⇒ they count as disagreements.
        let mut b = GraphBuilder::new();
        for i in 0..50 {
            b.add_node(&["T"], &[("x", Value::Int(i))]);
            b.add_node(&["T"], &[("x", Value::Float(i as f64 + 0.5))]);
        }
        let g = b.finish();
        let errors = sampling_errors(
            &g,
            &SamplingConfig {
                fraction: 1.0,
                min_values: 1,
                seed: 3,
            },
        );
        assert!((errors["x"] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn edge_properties_are_included() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(&["A"], &[]);
        let c = b.add_node(&["B"], &[]);
        b.add_edge(a, c, &["E"], &[("w", Value::Int(5))]);
        let g = b.finish();
        let errors = sampling_errors(
            &g,
            &SamplingConfig {
                fraction: 1.0,
                min_values: 1,
                seed: 4,
            },
        );
        assert!(errors.contains_key("w"));
    }
}
