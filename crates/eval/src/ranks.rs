//! Friedman average ranks and the Nemenyi post-hoc test (Fig. 3).
//!
//! Given a score matrix (methods × cases), rank the methods within each
//! case (rank 1 = best, ties share the average rank), average the ranks
//! per method, and declare two methods significantly different when their
//! average ranks differ by more than the critical distance
//! `CD = q_α · sqrt(k(k+1) / (6N))` (Nemenyi 1963, as used by `autorank`).

/// Studentized-range-based q values at α = 0.05 for k = 2..=10 methods
/// (Demšar 2006, Table 5).
const Q_ALPHA_05: [f64; 9] = [
    1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164,
];

/// Average rank per method over all cases. `scores[m][c]` is method `m`'s
/// score on case `c`; **higher scores are better** (rank 1 = highest).
///
/// # Panics
/// Panics if methods have differing case counts or there are no cases.
pub fn average_ranks(scores: &[Vec<f64>]) -> Vec<f64> {
    let k = scores.len();
    assert!(k > 0, "need at least one method");
    let n = scores[0].len();
    assert!(n > 0, "need at least one case");
    assert!(
        scores.iter().all(|s| s.len() == n),
        "all methods need the same case count"
    );

    let mut rank_sums = vec![0.0; k];
    #[allow(clippy::needless_range_loop)] // c indexes a column across all methods
    for c in 0..n {
        // Rank methods on case c (descending score), averaging ties.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| scores[b][c].partial_cmp(&scores[a][c]).unwrap());
        let mut i = 0;
        while i < k {
            let mut j = i;
            while j + 1 < k && scores[order[j + 1]][c] == scores[order[i]][c] {
                j += 1;
            }
            // Positions i..=j share the average rank.
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &m in &order[i..=j] {
                rank_sums[m] += avg;
            }
            i = j + 1;
        }
    }
    rank_sums.iter().map(|s| s / n as f64).collect()
}

/// The Friedman chi-square statistic for `k` methods over `n` cases with
/// the given average ranks. Large values reject "all methods equivalent".
pub fn friedman_statistic(avg_ranks: &[f64], n: usize) -> f64 {
    let k = avg_ranks.len() as f64;
    let sum_sq: f64 = avg_ranks.iter().map(|r| r * r).sum();
    12.0 * n as f64 / (k * (k + 1.0)) * (sum_sq - k * (k + 1.0) * (k + 1.0) / 4.0)
}

/// Nemenyi critical distance at α = 0.05 for `k` methods and `n` cases.
///
/// # Panics
/// Panics for `k < 2` or `k > 10` (outside the embedded q table).
pub fn nemenyi_critical_distance(k: usize, n: usize) -> f64 {
    assert!((2..=10).contains(&k), "q table covers k in 2..=10");
    let q = Q_ALPHA_05[k - 2];
    q * (k as f64 * (k as f64 + 1.0) / (6.0 * n as f64)).sqrt()
}

/// Convenience: are methods `a` and `b` significantly different?
pub fn significantly_different(avg_ranks: &[f64], a: usize, b: usize, n: usize) -> bool {
    (avg_ranks[a] - avg_ranks[b]).abs() > nemenyi_critical_distance(avg_ranks.len(), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_simple_dominance() {
        // Method 0 always best, method 2 always worst.
        let scores = vec![
            vec![0.9, 0.95, 0.92],
            vec![0.8, 0.85, 0.82],
            vec![0.5, 0.55, 0.52],
        ];
        let r = average_ranks(&scores);
        assert_eq!(r, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_share_average_rank() {
        let scores = vec![vec![0.9], vec![0.9], vec![0.5]];
        let r = average_ranks(&scores);
        assert_eq!(r, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn critical_distance_reference_value() {
        // Demšar's example regime: k = 4, N = 40 ⇒ CD ≈ 0.7397.
        let cd = nemenyi_critical_distance(4, 40);
        assert!((cd - 2.569 * (4.0 * 5.0 / 240.0f64).sqrt()).abs() < 1e-12);
        assert!((cd - 0.7416).abs() < 0.01, "cd = {cd}");
    }

    #[test]
    fn significance_detection() {
        // 40 cases, method 0 rank 1.2 vs method 3 rank 3.6: clearly apart.
        let ranks = vec![1.2, 1.8, 3.4, 3.6];
        assert!(significantly_different(&ranks, 0, 3, 40));
        assert!(!significantly_different(&ranks, 0, 1, 40));
        assert!(!significantly_different(&ranks, 2, 3, 40));
    }

    #[test]
    fn friedman_zero_when_all_equal() {
        // All methods share rank (k+1)/2 ⇒ statistic 0.
        let r = vec![2.5, 2.5, 2.5, 2.5];
        assert!(friedman_statistic(&r, 40).abs() < 1e-9);
    }

    #[test]
    fn friedman_grows_with_separation() {
        let weak = friedman_statistic(&[2.4, 2.6, 2.4, 2.6], 40);
        let strong = friedman_statistic(&[1.0, 2.0, 3.0, 4.0], 40);
        assert!(strong > weak);
        assert!(strong > 100.0);
    }

    #[test]
    #[should_panic(expected = "q table")]
    fn out_of_table_panics() {
        nemenyi_critical_distance(11, 10);
    }
}
