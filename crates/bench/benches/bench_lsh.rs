//! Criterion bench for the LSH substrate: O(N·T·D) scaling of ELSH and
//! O(N·T) of MinHash (§4.7 efficiency claims), plus the two optimizations
//! this engine is built on — the flat-matrix parallel kernel vs the seed's
//! scalar loop, and signature dedup vs hashing every element.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_hive_lsh::{
    elsh_cluster, minhash_cluster, reference, ElshParams, MinHashParams, VectorMatrix,
};

fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut state = 7u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    (0..n)
        .map(|i| {
            let center = (i % 10) as f32 * 4.0;
            (0..dim).map(|_| center + next() as f32).collect()
        })
        .collect()
}

/// `n` vectors drawn from `distinct` signature templates — the dedup-shaped
/// workload: LSH only ever needs to hash the `distinct` templates.
fn dedup_vectors(n: usize, distinct: usize, dim: usize) -> (VectorMatrix, Vec<u32>) {
    let templates = vectors(distinct, dim);
    let matrix = VectorMatrix::from_rows(&templates);
    let rep_of: Vec<u32> = (0..n).map(|i| (i % distinct) as u32).collect();
    (matrix, rep_of)
}

fn sets(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| {
            let base = (i % 10) as u64 * 100;
            (0..12).map(|j| base + j).collect()
        })
        .collect()
}

fn elsh_params(tables: usize) -> ElshParams {
    ElshParams {
        bucket_width: 1.0,
        tables,
        hashes_per_table: 4,
        seed: 1,
    }
}

fn bench_elsh_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("elsh_scaling");
    for n in [1_000usize, 4_000, 16_000] {
        let vs = VectorMatrix::from_rows(&vectors(n, 32));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &vs, |b, vs| {
            b.iter(|| elsh_cluster(vs, &elsh_params(15)).num_clusters);
        });
    }
    group.finish();
}

fn bench_elsh_vs_scalar(c: &mut Criterion) {
    // The seed's per-element scalar loop vs the flat-matrix parallel sweep
    // over the identical workload (both produce the identical clustering).
    let mut group = c.benchmark_group("elsh_vs_scalar");
    let n = 16_000;
    let rows = vectors(n, 32);
    let matrix = VectorMatrix::from_rows(&rows);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("scalar_seed"),
        &rows,
        |b, rows| {
            b.iter(|| reference::elsh_cluster_scalar(rows, &elsh_params(15)).num_clusters);
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("flat_parallel"),
        &matrix,
        |b, m| {
            b.iter(|| elsh_cluster(m, &elsh_params(15)).num_clusters);
        },
    );
    group.finish();
}

fn bench_elsh_dedup(c: &mut Criterion) {
    // 100k elements collapsing onto a few hundred distinct signatures: the
    // dedup path hashes the distinct matrix and broadcasts.
    let mut group = c.benchmark_group("elsh_dedup_100k");
    group.sample_size(10);
    let n = 100_000;
    for distinct in [100usize, 1_000] {
        let (matrix, rep_of) = dedup_vectors(n, distinct, 32);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(distinct),
            &(matrix, rep_of),
            |b, (m, rep)| {
                b.iter(|| {
                    let distinct = elsh_cluster(m, &elsh_params(15));
                    rep.iter()
                        .map(|&r| distinct.assignment[r as usize])
                        .max()
                        .unwrap_or(0)
                });
            },
        );
    }
    group.finish();
}

fn bench_elsh_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("elsh_tables");
    let vs = VectorMatrix::from_rows(&vectors(4_000, 32));
    for t in [5usize, 15, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| elsh_cluster(&vs, &elsh_params(t)).num_clusters);
        });
    }
    group.finish();
}

fn bench_minhash_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("minhash_scaling");
    for n in [1_000usize, 4_000, 16_000] {
        let ss = sets(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ss, |b, ss| {
            b.iter(|| {
                minhash_cluster(
                    ss,
                    &MinHashParams {
                        bands: 20,
                        rows_per_band: 4,
                        seed: 1,
                    },
                )
                .num_clusters
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_elsh_scaling,
    bench_elsh_vs_scalar,
    bench_elsh_dedup,
    bench_elsh_tables,
    bench_minhash_scaling
);
criterion_main!(benches);
