//! Criterion bench for the LSH substrate: O(N·T·D) scaling of ELSH and
//! O(N·T) of MinHash (§4.7 efficiency claims).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_hive_lsh::{elsh_cluster, minhash_cluster, ElshParams, MinHashParams};

fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut state = 7u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    (0..n)
        .map(|i| {
            let center = (i % 10) as f32 * 4.0;
            (0..dim).map(|_| center + next() as f32).collect()
        })
        .collect()
}

fn sets(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| {
            let base = (i % 10) as u64 * 100;
            (0..12).map(|j| base + j).collect()
        })
        .collect()
}

fn bench_elsh_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("elsh_scaling");
    for n in [1_000usize, 4_000, 16_000] {
        let vs = vectors(n, 32);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &vs, |b, vs| {
            b.iter(|| {
                elsh_cluster(
                    vs,
                    &ElshParams {
                        bucket_width: 1.0,
                        tables: 15,
                        hashes_per_table: 4,
                        seed: 1,
                    },
                )
                .num_clusters
            });
        });
    }
    group.finish();
}

fn bench_elsh_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("elsh_tables");
    let vs = vectors(4_000, 32);
    for t in [5usize, 15, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                elsh_cluster(
                    &vs,
                    &ElshParams {
                        bucket_width: 1.0,
                        tables: t,
                        hashes_per_table: 4,
                        seed: 1,
                    },
                )
                .num_clusters
            });
        });
    }
    group.finish();
}

fn bench_minhash_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("minhash_scaling");
    for n in [1_000usize, 4_000, 16_000] {
        let ss = sets(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ss, |b, ss| {
            b.iter(|| {
                minhash_cluster(
                    ss,
                    &MinHashParams {
                        bands: 20,
                        rows_per_band: 4,
                        seed: 1,
                    },
                )
                .num_clusters
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_elsh_scaling, bench_elsh_tables, bench_minhash_scaling);
criterion_main!(benches);
