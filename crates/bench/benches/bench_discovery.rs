//! Criterion bench behind Fig. 5: full discovery (preprocess + cluster +
//! extract + post-process) per dataset and method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_hive_baselines::Method;
use pg_hive_datasets::DatasetId;

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    for dataset in [DatasetId::Pole, DatasetId::Ldbc] {
        let d = dataset.generate(0.1, 42);
        for method in Method::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.name(), dataset.name()),
                &d,
                |b, d| {
                    b.iter(|| method.run(&d.graph, 42).map(|o| o.node_assignment.len()));
                },
            );
        }
    }
    group.finish();
}

fn bench_discovery_noise(c: &mut Criterion) {
    // Runtime vs noise: PG-HIVE flat, GMM grows (Fig. 5 inset claim).
    let mut group = c.benchmark_group("discovery_vs_noise");
    group.sample_size(10);
    for noise in [0u32, 40] {
        let mut d = DatasetId::Pole.generate(0.1, 42);
        pg_hive_datasets::inject_noise(
            &mut d.graph,
            &pg_hive_datasets::NoiseSpec::grid(noise, 100, 42),
        );
        for method in [Method::PgHiveElsh, Method::GmmSchema] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), format!("noise{noise}")),
                &d,
                |b, d| {
                    b.iter(|| method.run(&d.graph, 42).map(|o| o.node_assignment.len()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_discovery, bench_discovery_noise);
criterion_main!(benches);
