//! Criterion bench behind Fig. 7: one incremental batch vs a static full
//! recomputation — the incremental design's whole point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_datasets::DatasetId;
use pg_hive_graph::split_batches;

fn bench_incremental_vs_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    let d = DatasetId::Ldbc.generate(0.1, 42);
    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());

    group.bench_function("static_full_graph", |b| {
        b.iter(|| discoverer.discover(&d.graph).schema.node_types.len());
    });

    for n in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("batches", n), &n, |b, &n| {
            let batches = split_batches(&d.graph, n, 42);
            b.iter(|| {
                discoverer
                    .discover_batches(&d.graph, &batches)
                    .schema
                    .node_types
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_single_batch_cost(c: &mut Criterion) {
    // Per-batch cost O(B + C_b * C_n): one tenth of the graph.
    let mut group = c.benchmark_group("per_batch");
    group.sample_size(10);
    let d = DatasetId::Cord19.generate(0.1, 42);
    let discoverer = Discoverer::new(PipelineConfig::elsh_adaptive());
    let batches = split_batches(&d.graph, 10, 42);
    group.bench_function("one_tenth_batch", |b| {
        b.iter(|| {
            discoverer
                .discover_batches(&d.graph, &batches[..1])
                .schema
                .node_types
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_static,
    bench_single_batch_cost
);
criterion_main!(benches);
