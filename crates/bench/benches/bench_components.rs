//! Criterion bench for the remaining pipeline components and ablations
//! called out in DESIGN.md: preprocessing, Word2Vec vs hash embeddings,
//! datatype inference full-scan vs sampled, and the F1* metric itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_hive_core::{Discoverer, EmbeddingStrategy, PipelineConfig, SamplingConfig};
use pg_hive_datasets::DatasetId;
use pg_hive_eval::majority_f1;

fn bench_embedding_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_ablation");
    group.sample_size(10);
    let d = DatasetId::Pole.generate(0.1, 42);
    for (name, strategy) in [
        ("hash", EmbeddingStrategy::Hash),
        ("word2vec", EmbeddingStrategy::Word2Vec(Default::default())),
    ] {
        let cfg = PipelineConfig {
            embedding: strategy,
            ..PipelineConfig::elsh_adaptive()
        };
        let disc = Discoverer::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &d, |b, d| {
            b.iter(|| disc.discover(&d.graph).schema.node_types.len());
        });
    }
    group.finish();
}

fn bench_datatype_sampling_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datatype_sampling");
    group.sample_size(10);
    let d = DatasetId::Cord19.generate(0.2, 42);
    for (name, sampling) in [
        ("full_scan", None),
        ("sampled_10pct", Some(SamplingConfig::default())),
    ] {
        let cfg = PipelineConfig {
            datatype_sampling: sampling,
            ..PipelineConfig::elsh_adaptive()
        };
        let disc = Discoverer::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &d, |b, d| {
            b.iter(|| disc.discover(&d.graph).schema.node_types.len());
        });
    }
    group.finish();
}

fn bench_f1_metric(c: &mut Criterion) {
    let n = 100_000;
    let clusters: Vec<u32> = (0..n).map(|i| (i % 97) as u32).collect();
    let truth: Vec<u32> = (0..n).map(|i| (i % 13) as u32).collect();
    c.bench_function("majority_f1_100k", |b| {
        b.iter(|| majority_f1(&clusters, &truth).macro_f1);
    });
}

fn bench_theta_ablation(c: &mut Criterion) {
    // Merge-threshold θ sensitivity on an unlabeled graph (merging is the
    // O(C²) step of §4.7's complexity analysis).
    let mut group = c.benchmark_group("theta_ablation");
    group.sample_size(10);
    let mut d = DatasetId::Icij.generate(0.1, 42);
    pg_hive_datasets::inject_noise(&mut d.graph, &pg_hive_datasets::NoiseSpec::grid(20, 0, 42));
    for theta in [0.5f64, 0.9] {
        let cfg = PipelineConfig {
            theta,
            ..PipelineConfig::elsh_adaptive()
        };
        let disc = Discoverer::new(cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("theta{theta}")),
            &d,
            |b, d| {
                b.iter(|| disc.discover(&d.graph).schema.node_types.len());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_embedding_strategies,
    bench_datatype_sampling_ablation,
    bench_f1_metric,
    bench_theta_ablation
);
criterion_main!(benches);
