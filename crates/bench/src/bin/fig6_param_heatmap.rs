//! Figure 6: heatmaps of F1\*-scores for ELSH with varying `(T, b)`,
//! at 100% label availability and 0% noise, for nodes and edges; the
//! adaptive choice is marked with `x`.
//!
//! The b-axis is expressed as a multiplier of the adaptive bucket width so
//! the grid brackets the adaptive pick on every dataset.

use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_core::{ClusterMethod, Discoverer, PipelineConfig};
use pg_hive_datasets::{inject_noise, NoiseSpec};
use pg_hive_eval::majority_f1;
use pg_hive_lsh::ElshParams;

const TABLES: [usize; 5] = [5, 10, 20, 30, 40];
const B_MULT: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

fn main() {
    let scale = scale(0.1);
    let seed = seed();
    banner(
        "Figure 6: F1* heatmaps over (T, b), adaptive pick marked",
        scale,
        seed,
    );

    // The paper's grid point is (0% noise, 100% labels); our generators make
    // that setting easy (μ = 0 fallback). A second, harder point (30% noise,
    // 50% labels) shows the landscape where the adaptive estimator actually
    // has to pick a scale.
    for (noise, labels) in [(0u32, 100u32), (30, 50)] {
        println!("--- grid point: {noise}% noise, {labels}% label availability ---\n");
        run_grid(scale, seed, noise, labels);
    }

    println!(
        "Expected shape (paper): smaller b over-separates (high F1, fixed by merging); \
         large b and T merge distinct patterns and F1 drops; the adaptive pick sits \
         near the best cell."
    );
}

fn run_grid(scale: f64, seed: u64, noise: u32, labels: u32) {
    for dataset in selected_datasets() {
        let mut d = dataset.generate(scale, seed);
        inject_noise(&mut d.graph, &NoiseSpec::grid(noise, labels, seed));

        // Adaptive run first: reference F1 and the chosen (T, b).
        let adaptive = Discoverer::new(PipelineConfig {
            seed,
            ..PipelineConfig::elsh_adaptive()
        })
        .discover(&d.graph);
        let ad_nodes = adaptive
            .stats
            .adaptive_nodes
            .clone()
            .expect("adaptive path");
        let f1_ad_nodes = majority_f1(&adaptive.node_cluster_assignment, &d.truth.node_types);
        let f1_ad_edges = majority_f1(&adaptive.edge_cluster_assignment, &d.truth.edge_types);

        println!(
            "{}: adaptive pick (T={}, b={:.2}) -> node F1={:.3}, edge F1={:.3}",
            dataset.name(),
            ad_nodes.tables,
            ad_nodes.bucket_width,
            f1_ad_nodes.macro_f1,
            f1_ad_edges.macro_f1
        );

        for side in ["nodes", "edges"] {
            println!("  [{side}]  rows: T, cols: b = adaptive x {B_MULT:?}");
            for &t in &TABLES {
                print!("    T={t:<3}");
                for &m in &B_MULT {
                    let cfg = PipelineConfig {
                        method: ClusterMethod::Elsh,
                        elsh: Some(ElshParams {
                            bucket_width: (ad_nodes.bucket_width * m).max(1e-3),
                            tables: t,
                            hashes_per_table: 4,
                            seed,
                        }),
                        seed,
                        ..PipelineConfig::default()
                    };
                    let r = Discoverer::new(cfg).discover(&d.graph);
                    let f1 = if side == "nodes" {
                        majority_f1(&r.node_cluster_assignment, &d.truth.node_types)
                    } else {
                        majority_f1(&r.edge_cluster_assignment, &d.truth.edge_types)
                    };
                    let mark = if t == ad_nodes.tables && m == 1.0 {
                        "x"
                    } else {
                        " "
                    };
                    print!(" {:.3}{mark}", f1.macro_f1);
                }
                println!();
            }
        }
        println!();
    }
}
