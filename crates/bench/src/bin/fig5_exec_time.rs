//! Figure 5: execution time until type discovery on each dataset across
//! noise percentages (0–40%), 100% label availability, all four methods.

use pg_hive_baselines::Method;
use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_eval::harness::{run_case, ExperimentCase, NOISE_LEVELS};
use pg_hive_eval::report::time_series_row;

fn main() {
    let scale = scale(0.25);
    let seed = seed();
    banner("Figure 5: Execution time until type discovery", scale, seed);

    let mut speedup_sum = 0.0;
    let mut speedup_count = 0usize;

    for dataset in selected_datasets() {
        println!(
            "{} (seconds at noise {}%):",
            dataset.name(),
            NOISE_LEVELS.map(|n| n.to_string()).join("/")
        );
        let mut elsh_times = Vec::new();
        let mut schemi_times = Vec::new();
        for method in Method::ALL {
            let times: Vec<Option<std::time::Duration>> = NOISE_LEVELS
                .iter()
                .map(|&noise_pct| {
                    run_case(&ExperimentCase {
                        dataset,
                        noise_pct,
                        label_pct: 100,
                        method,
                        scale,
                        seed,
                    })
                    .elapsed
                })
                .collect();
            if method == Method::PgHiveElsh {
                elsh_times = times.clone();
            }
            if method == Method::SchemI {
                schemi_times = times.clone();
            }
            println!("  {}", time_series_row(method.name(), &times));
        }
        for (e, s) in elsh_times.iter().zip(&schemi_times) {
            if let (Some(e), Some(s)) = (e, s) {
                if e.as_secs_f64() > 0.0 {
                    speedup_sum += s.as_secs_f64() / e.as_secs_f64();
                    speedup_count += 1;
                }
            }
        }
        println!();
    }

    if speedup_count > 0 {
        println!(
            "SchemI / PG-HIVE-ELSH mean time ratio: {:.2}x (paper reports PG-HIVE up to \
             1.95x faster than SchemI on their Spark cluster)",
            speedup_sum / speedup_count as f64
        );
    }
    println!(
        "Expected shape (paper): PG-HIVE runtime is flat in noise; GMM's grows with \
         noise (more clusters); absolute values differ from the paper's 4-node Spark \
         cluster."
    );
}
