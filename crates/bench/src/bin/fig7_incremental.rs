//! Figure 7: incremental execution time per iteration — each dataset split
//! into 10 random batches, processed by the incremental pipeline, per-batch
//! wall-clock printed for PG-HIVE-ELSH and PG-HIVE-MinHash.

use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_core::{Discoverer, PipelineConfig};
use pg_hive_eval::report::time_series_row;

const BATCHES: usize = 10;

fn main() {
    let scale = scale(0.25);
    let seed = seed();
    banner(
        "Figure 7: Incremental execution time per iteration",
        scale,
        seed,
    );

    for (label, cfg) in [
        ("PG-HIVE-ELSH", PipelineConfig::elsh_adaptive()),
        ("PG-HIVE-MinHash", PipelineConfig::minhash_default()),
    ] {
        println!("{label} (seconds per batch, {BATCHES} batches):");
        for dataset in selected_datasets() {
            let d = dataset.generate(scale, seed);
            let discoverer = Discoverer::new(PipelineConfig {
                seed,
                ..cfg.clone()
            });
            let r = discoverer.discover_incremental(&d.graph, BATCHES);
            let times: Vec<Option<std::time::Duration>> =
                r.stats.batch_times.iter().map(|&t| Some(t)).collect();
            println!("  {}", time_series_row(dataset.name(), &times));
        }
        println!();
    }

    println!(
        "Expected shape (paper): per-batch times are flat across iterations — the \
         incremental design costs O(B + C_b * C_n) per batch, with no growth as the \
         accumulated schema covers more of the graph."
    );
}
