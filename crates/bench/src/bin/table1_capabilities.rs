//! Table 1: schema discovery approaches on property graphs — the
//! qualitative capability matrix, cross-checked against the code's actual
//! capability flags.

use pg_hive_baselines::Method;

fn main() {
    println!("== Table 1: Schema discovery approaches on property graphs ==\n");
    print!("{}", pg_hive_eval::report::capability_matrix());

    println!("\nCross-check against implemented capability flags:");
    for m in [Method::SchemI, Method::GmmSchema, Method::PgHiveElsh] {
        println!(
            "  {:<16} label-independent: {:<5}  edge types: {}",
            m.name(),
            !m.requires_full_labels(),
            m.discovers_edges()
        );
    }
}
