//! Design-choice ablations (DESIGN.md): the knobs this implementation added
//! or interpreted, swept one at a time on a noisy semi-labeled workload
//! where they actually matter — label weight `w`, ELSH AND-width `k`,
//! merge threshold θ, and the embedding strategy.
//!
//! Not a paper figure; this is the evidence backing the defaults.

use pg_hive_bench::{banner, scale, seed};
use pg_hive_core::{Discoverer, EmbeddingStrategy, PipelineConfig};
use pg_hive_datasets::{inject_noise, DatasetId, NoiseSpec};
use pg_hive_eval::majority_f1;

fn main() {
    let scale = scale(0.1);
    let seed = seed();
    banner(
        "Design ablations (label weight, AND-width k, theta, embeddings)",
        scale,
        seed,
    );

    let workloads = [
        (DatasetId::Pole, 20u32, 50u32),
        (DatasetId::Icij, 20, 50),
        (DatasetId::Mb6, 20, 100),
    ];

    println!("label_weight sweep (ELSH):");
    for (ds, noise, labels) in workloads {
        print!("  {:<6} noise={noise}% labels={labels}%:", ds.name());
        for w in [0.0f32, 2.0, 6.0, 12.0] {
            let f1 = run(ds, noise, labels, seed, |c| c.label_weight = w);
            print!("  w={w}: {f1:.3}");
        }
        println!();
    }

    // θ drives Algorithm 2's *schema-level* merging, not the raw clusters,
    // so this sweep scores the type-level assignment and reports the type
    // inventory size: low θ over-merges unlabeled clusters into wrong types
    // (type-level F1 falls), θ = 1.0 refuses all structural merges
    // (ABSTRACT type explosion).
    println!("\ntheta sweep (Jaccard merge threshold; type-level F1 / #node types):");
    for (ds, noise, labels) in workloads {
        print!("  {:<6} noise={noise}% labels={labels}%:", ds.name());
        for theta in [0.3f64, 0.5, 0.9, 1.0] {
            let (f1, types) = run_type_level(ds, noise, labels, seed, theta);
            print!("  θ={theta}: {f1:.3}/{types}");
        }
        println!();
    }

    println!("\nembedding strategy (hash vs word2vec):");
    for (ds, noise, labels) in workloads {
        let hash = run(ds, noise, labels, seed, |c| {
            c.embedding = EmbeddingStrategy::Hash
        });
        let w2v = run(ds, noise, labels, seed, |c| {
            c.embedding = EmbeddingStrategy::Word2Vec(Default::default())
        });
        println!(
            "  {:<6} noise={noise}% labels={labels}%:  hash {hash:.3}   word2vec {w2v:.3}",
            ds.name()
        );
    }

    println!(
        "\nReading: w = 0 removes the hybrid label signal (pure structure) and F1 drops \
         on label-rich data; θ below ~0.7 over-merges unlabeled clusters; the \
         deterministic hash embedding matches word2vec on these datasets because only \
         identity/separation matters for clustering (semantic proximity is exploited \
         by the alignment extension, not the clustering)."
    );
}

fn run_type_level(ds: DatasetId, noise: u32, labels: u32, seed: u64, theta: f64) -> (f64, usize) {
    let mut d = ds.generate(pg_hive_bench::scale(0.1), seed);
    inject_noise(&mut d.graph, &NoiseSpec::grid(noise, labels, seed));
    let cfg = PipelineConfig {
        seed,
        theta,
        ..PipelineConfig::elsh_adaptive()
    };
    let r = Discoverer::new(cfg).discover(&d.graph);
    let f1 = majority_f1(&r.node_assignment, &d.truth.node_types).macro_f1;
    (f1, r.schema.node_types.len())
}

fn run(
    ds: DatasetId,
    noise: u32,
    labels: u32,
    seed: u64,
    tweak: impl FnOnce(&mut PipelineConfig),
) -> f64 {
    let mut d = ds.generate(pg_hive_bench::scale(0.1), seed);
    inject_noise(&mut d.graph, &NoiseSpec::grid(noise, labels, seed));
    let mut cfg = PipelineConfig {
        seed,
        ..PipelineConfig::elsh_adaptive()
    };
    tweak(&mut cfg);
    let r = Discoverer::new(cfg).discover(&d.graph);
    majority_f1(&r.node_cluster_assignment, &d.truth.node_types).macro_f1
}
