//! Perf tracker for the LSH clustering hot path: runs the seed's scalar
//! per-element baseline and the signature-dedup + parallel flat-matrix
//! engine on the same 100k-node synthetic graph, verifies the clusterings
//! are identical, and writes `BENCH_lsh.json` (elements/sec, dedup ratio,
//! speedup) so the perf trajectory is tracked PR over PR.
//!
//! Usage: `cargo run --release -p pg-hive-bench --bin bench_lsh_json`
//! (honors `PGHIVE_SCALE` — element count is `100_000 × scale` — and
//! `PGHIVE_SEED`).
//!
//! At full scale (`PGHIVE_SCALE` unset or 1.0) the run also enforces a
//! throughput floor: the fast ELSH path must reach [`ELSH_REQUIRED_RATIO`]×
//! the elements/sec committed in `BENCH_lsh.json` by the previous PR
//! ([`ELSH_BASELINE_EPS`]). Fast-path timings are best-of-3 — the engine is
//! deterministic, so the minimum filters scheduler noise out of the
//! sub-10ms measurements the gate compares.

use pg_hive_core::preprocess::node_representations;
use pg_hive_core::PipelineConfig;
use pg_hive_embed::HashEmbedder;
use pg_hive_graph::{GraphBuilder, NodeId, PropertyGraph, Value};
use pg_hive_lsh::{elsh_cluster, minhash_cluster, reference, ElshParams, MinHashParams};
use std::fmt::Write as _;
use std::time::Instant;

/// A synthetic "social network"-shaped node population: `n` nodes drawn
/// from 30 label templates, each with a core key set plus optional keys —
/// a few hundred distinct (label, key-set) signatures, like real graphs.
fn synthetic_nodes(n: usize, seed: u64) -> PropertyGraph {
    let mut b = GraphBuilder::new();
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let types: Vec<String> = (0..30).map(|t| format!("Type{t}")).collect();
    for i in 0..n {
        let t = (next() % 30) as usize;
        let label = types[t].as_str();
        let core_a = format!("t{t}_id");
        let core_b = format!("t{t}_name");
        let mut props: Vec<(&str, Value)> = vec![
            (core_a.as_str(), Value::Int(i as i64)),
            (core_b.as_str(), Value::from("x")),
        ];
        // Four optional keys per type, each present ~70% of the time.
        let opts: Vec<String> = (0..4).map(|k| format!("t{t}_opt{k}")).collect();
        for opt in &opts {
            if next() % 10 < 7 {
                props.push((opt.as_str(), Value::Int(1)));
            }
        }
        b.add_node(&[label], &props);
    }
    b.finish()
}

/// Fast-path ELSH throughput committed in `BENCH_lsh.json` by the previous
/// PR (elements/sec on this container class).
const ELSH_BASELINE_EPS: f64 = 20_925_484.0;
/// The blocked-kernel pass must beat the committed baseline by this factor.
const ELSH_REQUIRED_RATIO: f64 = 1.2;

struct MethodResult {
    name: &'static str,
    scalar_secs: f64,
    fast_secs: f64,
    identical: bool,
}

impl MethodResult {
    fn speedup(&self) -> f64 {
        self.scalar_secs / self.fast_secs
    }
}

fn main() {
    let scale = pg_hive_bench::scale(1.0);
    let seed = pg_hive_bench::seed();
    let n = ((100_000.0 * scale) as usize).max(1_000);
    pg_hive_bench::banner(
        "BENCH_lsh — dedup + parallel LSH vs seed scalar path",
        scale,
        seed,
    );

    let g = synthetic_nodes(n, seed);
    let ids: Vec<NodeId> = g.nodes().map(|(id, _)| id).collect();
    let config = PipelineConfig::default();
    let embedder = HashEmbedder::new(config.embedding_dim, seed);

    let t = Instant::now();
    let repr = node_representations(&g, &ids, &embedder, config.label_weight).repr;
    let preprocess_secs = t.elapsed().as_secs_f64();
    let dedup_ratio = repr.dedup_ratio();
    println!(
        "preprocess: {n} nodes -> {} distinct signatures (dedup ratio {:.1}x) in {:.3}s",
        repr.distinct(),
        dedup_ratio,
        preprocess_secs
    );

    let expanded = repr.expanded_matrix();
    let expanded_sets = repr.expanded_sets();

    // ELSH, fixed parameters (the adaptive estimator would pick the same
    // either way; pinning keeps the comparison about raw hashing).
    let elsh_params = ElshParams {
        bucket_width: 1.0,
        tables: 15,
        hashes_per_table: 4,
        seed: seed ^ 0xE15B,
    };
    let t = Instant::now();
    let scalar_rows: Vec<Vec<f32>> = expanded.iter_rows().map(<[f32]>::to_vec).collect();
    let _alloc_secs = t.elapsed().as_secs_f64(); // per-element Vec layout the seed used

    let t = Instant::now();
    let elsh_scalar = reference::elsh_cluster_scalar(&scalar_rows, &elsh_params);
    let elsh_scalar_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let elsh_fast = elsh_cluster(&repr.matrix, &elsh_params).broadcast(&repr.rep_of);
    let mut elsh_fast_secs = t.elapsed().as_secs_f64();
    for _ in 0..2 {
        let t = Instant::now();
        let again = elsh_cluster(&repr.matrix, &elsh_params).broadcast(&repr.rep_of);
        elsh_fast_secs = elsh_fast_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(again, elsh_fast, "ELSH fast path is not deterministic");
    }

    let elsh = MethodResult {
        name: "elsh",
        scalar_secs: elsh_scalar_secs,
        fast_secs: elsh_fast_secs,
        identical: elsh_fast == elsh_scalar,
    };

    // MinHash with the paper-practical banding.
    let minhash_params = MinHashParams {
        bands: 20,
        rows_per_band: 4,
        seed: seed ^ 0x314,
    };
    let t = Instant::now();
    let mh_scalar = reference::minhash_cluster_scalar(&expanded_sets, &minhash_params);
    let mh_scalar_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mh_fast = minhash_cluster(&repr.sets, &minhash_params).broadcast(&repr.rep_of);
    let mut mh_fast_secs = t.elapsed().as_secs_f64();
    for _ in 0..2 {
        let t = Instant::now();
        let again = minhash_cluster(&repr.sets, &minhash_params).broadcast(&repr.rep_of);
        mh_fast_secs = mh_fast_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(again, mh_fast, "MinHash fast path is not deterministic");
    }

    let minhash = MethodResult {
        name: "minhash",
        scalar_secs: mh_scalar_secs,
        fast_secs: mh_fast_secs,
        identical: mh_fast == mh_scalar,
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"elements\": {n},");
    let _ = writeln!(json, "  \"distinct_signatures\": {},", repr.distinct());
    let _ = writeln!(json, "  \"dedup_ratio\": {dedup_ratio:.2},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"preprocess_secs\": {preprocess_secs:.4},");
    for m in [&elsh, &minhash] {
        println!(
            "{}: scalar {:.3}s ({:.0} elem/s) | dedup+parallel {:.4}s ({:.0} elem/s) | {:.1}x speedup | identical: {}",
            m.name,
            m.scalar_secs,
            n as f64 / m.scalar_secs,
            m.fast_secs,
            n as f64 / m.fast_secs,
            m.speedup(),
            m.identical
        );
        let _ = writeln!(json, "  \"{}\": {{", m.name);
        let _ = writeln!(json, "    \"scalar_secs\": {:.4},", m.scalar_secs);
        let _ = writeln!(json, "    \"fast_secs\": {:.4},", m.fast_secs);
        let _ = writeln!(
            json,
            "    \"scalar_elements_per_sec\": {:.0},",
            n as f64 / m.scalar_secs
        );
        let _ = writeln!(
            json,
            "    \"fast_elements_per_sec\": {:.0},",
            n as f64 / m.fast_secs
        );
        let _ = writeln!(json, "    \"speedup\": {:.2},", m.speedup());
        let _ = writeln!(json, "    \"identical_clustering\": {},", m.identical);
        let _ = writeln!(json, "    \"timing\": \"best of 3\"");
        let _ = writeln!(json, "  }},");
    }
    // The throughput gate only fires at full scale: the committed baseline
    // was measured at 100k elements, and scaled-down CI runs finish in well
    // under a millisecond, where elements/sec is dominated by fixed costs.
    let full_scale = (scale - 1.0).abs() < 1e-9;
    let elsh_eps = n as f64 / elsh.fast_secs;
    let throughput_ok = !full_scale || elsh_eps >= ELSH_REQUIRED_RATIO * ELSH_BASELINE_EPS;
    let _ = writeln!(
        json,
        "  \"elsh_committed_baseline_elements_per_sec\": {ELSH_BASELINE_EPS:.0},"
    );
    let _ = writeln!(json, "  \"elsh_required_ratio\": {ELSH_REQUIRED_RATIO:.2},");
    let _ = writeln!(json, "  \"elsh_throughput_gate_active\": {full_scale},");
    let _ = writeln!(json, "  \"elsh_throughput_gate_ok\": {throughput_ok}");
    json.push_str("}\n");

    std::fs::write("BENCH_lsh.json", &json).expect("write BENCH_lsh.json");
    println!("\nwrote BENCH_lsh.json");

    assert!(
        elsh.identical,
        "ELSH dedup+parallel diverged from the seed scalar clustering"
    );
    assert!(
        minhash.identical,
        "MinHash dedup+parallel diverged from the seed scalar clustering"
    );
    if !throughput_ok {
        eprintln!(
            "FAIL: ELSH fast path at {elsh_eps:.0} elem/s, below {ELSH_REQUIRED_RATIO}x \
             the committed baseline ({ELSH_BASELINE_EPS:.0} elem/s)"
        );
        std::process::exit(1);
    }
}
