//! Figure 4: F1\*-scores across all noise levels (0–40%) and label
//! availability (100/50/0%), for nodes and edges, all four methods, all
//! eight datasets.
//!
//! SchemI and GMMSchema print `-` below 100% label availability (they
//! refuse such inputs), exactly as their lines vanish in the paper.

use pg_hive_baselines::Method;
use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_eval::harness::{run_case, ExperimentCase, LABEL_LEVELS, NOISE_LEVELS};
use pg_hive_eval::report::f1_series_row;

fn main() {
    let scale = scale(0.1);
    let seed = seed();
    banner("Figure 4: F1* vs noise and label availability", scale, seed);

    for label_pct in LABEL_LEVELS {
        println!("### {label_pct}% label information\n");
        for dataset in selected_datasets() {
            println!(
                "{} (noise: {}%):",
                dataset.name(),
                NOISE_LEVELS.map(|n| n.to_string()).join("/")
            );
            for side in ["nodes", "edges"] {
                println!("  [{side}]");
                for method in Method::ALL {
                    if side == "edges" && !method.discovers_edges() {
                        continue;
                    }
                    let scores: Vec<Option<f64>> = NOISE_LEVELS
                        .iter()
                        .map(|&noise_pct| {
                            let r = run_case(&ExperimentCase {
                                dataset,
                                noise_pct,
                                label_pct,
                                method,
                                scale,
                                seed,
                            });
                            let f1 = if side == "nodes" {
                                r.node_f1
                            } else {
                                r.edge_f1
                            };
                            f1.map(|f| f.macro_f1)
                        })
                        .collect();
                    println!("    {}", f1_series_row(method.name(), &scores));
                }
            }
            println!();
        }
    }

    println!(
        "Expected shape (paper): PG-HIVE variants stay ≥0.9 across noise; GMM collapses \
         past 20% noise; SchemI trails (0.6–0.8); only PG-HIVE produces results at 50% \
         and 0% label availability."
    );
}
