//! Perf + memory tracker for the streaming ingestion subsystem: writes a
//! ≥500k-element synthetic graph to a temp `.pgt` file, then discovers its
//! schema three ways —
//!
//! 1. **baseline**: `read_to_string` + `load_text` + `discover` (resident
//!    memory O(dataset), the CLI's non-streaming path),
//! 2. **stream**: `PgtSource` → `ChunkedTextReader` → `discover_stream`
//!    (resident memory O(chunk)), and
//! 3. **parallel**: `PgtSource` → `ReadAheadChunks` (producer thread) →
//!    `discover_stream_parallel` (worker pool + in-order merge) — the
//!    pipeline-parallel engine, recording thread count and read-ahead
//!    depth —
//!
//! plus a **raw per-chunk** run (`discover_chunk_state` per chunk, results
//! dropped) that isolates what the canonical `SchemaState` machinery —
//! cross-chunk absorb + finalize — costs on top of pure chunk compute,
//! a **sharded** pair of runs (`discover_sharded` over the dataset
//! split into a two-file directory tree, at 1 shard and at 2) gating the
//! merge-tree engine: the 2-shard finalized schema must byte-equal the
//! 1-shard run's strict text (`sharded_schema_match`), its labeled-type
//! inventory must match the serial stream, and its throughput
//! (`sharded_elements_per_sec`) must reach ≥ 1.0× the 1-shard run on
//! multi-core hosts (0.9× on a 1-core host, where shard threads can only
//! time-slice), and an **incremental steady-state** pair on a
//! repeated-signature workload: a warm `absorb_stream_cached` pass with a
//! primed [`SignatureCache`] must process elements ≥ 3× faster than the
//! cold uncached engine (`incremental_pass_elements_per_sec` vs
//! `incremental_cold_elements_per_sec`), hit on ≥ 95% of repeated chunks
//! (`cache_hit_ratio`), and finalize byte-identically.
//!
//! Verifies all runs discover the same labeled-type inventory, checks the
//! peak chunk-resident element count stays ≤ 2× the chunk size, that the
//! parallel path is not slower than the serial streaming path, and that
//! canonicalization keeps ≥ 0.9× the raw per-chunk throughput
//! (`canonical_elements_per_sec` vs `raw_chunk_elements_per_sec` in the
//! JSON) — the refactor cannot silently regress the hot path. Writes
//! `BENCH_stream.json` so the streaming trajectory is tracked PR over PR.
//!
//! Usage: `cargo run --release -p pg-hive-bench --bin bench_stream_json`
//! (honors `PGHIVE_SCALE` — element count is `500_000 × scale` — plus
//! `PGHIVE_SEED`, `PGHIVE_CHUNK` (default 50000), `PGHIVE_THREADS`
//! (default: all cores, min 2 so the pool is exercised even on 1-core CI)
//! and `PGHIVE_READ_AHEAD` (default 4)).
//!
//! At full scale the run additionally enforces a throughput floor: the
//! serial streaming path must reach [`STREAM_REQUIRED_RATIO`]× the
//! elements/sec committed in `BENCH_stream.json` by the previous PR
//! ([`STREAM_BASELINE_EPS`]) — the zero-copy ingestion acceptance bar.
//!
//! Set `PGHIVE_BENCH_MATRIX=1` to also sweep a threads × chunk-size matrix
//! through the pipeline-parallel path and record every cell under a
//! `"matrix"` key in `BENCH_stream.json`. The matrix is diagnostic only —
//! the default single-cell run above it remains the CI regression gate.

use pg_hive_core::schema::SchemaGraph;
use pg_hive_core::serialize::pg_schema_strict;
use pg_hive_core::{Discoverer, PipelineConfig, SignatureCache};
use pg_hive_datasets::{DatasetSpec, EdgeDef, NodeDef, PropDef, ValueGen};
use pg_hive_graph::loader::{load_text, save_text};
use pg_hive_graph::stream::pgt::PgtSource;
use pg_hive_graph::{ChunkedTextReader, GraphBuilder, MultiSource, PropertyGraph, ReadAheadChunks};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs::File;
use std::io::BufReader;
use std::time::Instant;

/// A 12-node-type / 8-edge-type social-network-shaped spec: enough label
/// and pattern variety to exercise clustering and merging, all types
/// labeled so the inventory comparison is exact.
fn spec() -> DatasetSpec {
    let node = |name: &str, keys: &[(&str, f64)], weight: f64| NodeDef {
        name: name.to_string(),
        labels: vec![name.to_string()],
        props: keys
            .iter()
            .map(|(k, presence)| {
                PropDef::opt(
                    &format!("{}_{k}", name.to_lowercase()),
                    ValueGen::Text,
                    *presence,
                )
            })
            .collect(),
        weight,
    };
    let nodes: Vec<NodeDef> = (0..12)
        .map(|i| {
            node(
                &format!("Type{i}"),
                &[("id", 1.0), ("name", 1.0), ("opt_a", 0.7), ("opt_b", 0.4)],
                1.0 + (i % 3) as f64,
            )
        })
        .collect();
    let edge = |name: &str, src: usize, tgt: usize, weight: f64| EdgeDef {
        name: name.to_string(),
        label: name.to_string(),
        props: vec![PropDef::opt("since", ValueGen::Int(1990, 2025), 0.5)],
        src,
        tgt,
        weight,
    };
    let edges: Vec<EdgeDef> = (0..8)
        .map(|i| edge(&format!("REL{i}"), i % 12, (i * 5 + 3) % 12, 1.0))
        .collect();
    DatasetSpec {
        name: "stream-bench".to_string(),
        nodes,
        edges,
    }
}

/// Serial streaming throughput committed in `BENCH_stream.json` by the
/// previous PR (elements/sec on this container class).
const STREAM_BASELINE_EPS: f64 = 248_426.9;
/// The zero-copy ingestion pass must beat the committed baseline by this
/// factor (serial streaming path, best-of-2).
const STREAM_REQUIRED_RATIO: f64 = 1.3;
/// Steady-state warm pass (signature cache primed) must beat the cold
/// uncached pass by this factor in per-element cost on the
/// repeated-signature workload.
const INCREMENTAL_REQUIRED_SPEEDUP: f64 = 3.0;
/// The warm pass must actually hit: minimum fraction of chunk lookups the
/// primed cache answers.
const CACHE_HIT_RATIO_FLOOR: f64 = 0.95;

/// One signature-diverse chunk for the steady-state workload: node label
/// drawn from `types` type names, property keys a random mask over `keys`
/// candidates, values varying freely — hundreds-to-thousands of distinct
/// (label, key-set) signatures per chunk, so embedding + LSH dominate the
/// cold per-chunk cost (the opposite extreme from the 12-type spec above,
/// whose ~dozens of signatures amortize those stages away). The
/// deterministic per-`shape` xorshift stream makes repeated shapes
/// byte-identical — the cross-pass repetition a steady-state `watch` loop
/// (rotating logs, re-fed chunks) hands the engine.
fn signature_diverse_chunk(shape: u64, n: usize, types: u64, keys: usize) -> PropertyGraph {
    let mut b = GraphBuilder::new();
    let mut s = shape.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let all_keys: Vec<String> = (0..keys).map(|i| format!("k{i}")).collect();
    let mut ids = Vec::new();
    for _ in 0..n {
        let label = format!("T{}", next() % types);
        let mask = next();
        let props: Vec<(&str, pg_hive_graph::Value)> = all_keys
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, k)| {
                (
                    k.as_str(),
                    pg_hive_graph::Value::Int((next() % 1000) as i64),
                )
            })
            .collect();
        ids.push(b.add_node(&[&label], &props));
    }
    for i in 0..n / 2 {
        let src = ids[(next() as usize) % ids.len()];
        let tgt = ids[(next() as usize) % ids.len()];
        let label = format!("E{}", next() % (types / 2).max(1));
        b.add_edge(
            src,
            tgt,
            &[&label],
            &[("w", pg_hive_graph::Value::Int(i as i64))],
        );
    }
    b.finish()
}

fn labeled_inventory(s: &SchemaGraph) -> (BTreeSet<Vec<String>>, BTreeSet<Vec<String>>) {
    let nodes = s
        .node_types
        .iter()
        .map(|t| t.labels.iter().cloned().collect())
        .collect();
    let edges = s
        .edge_types
        .iter()
        .map(|t| t.labels.iter().cloned().collect())
        .collect();
    (nodes, edges)
}

fn main() {
    let scale = pg_hive_bench::scale(1.0);
    let seed = pg_hive_bench::seed();
    let chunk_size: usize = std::env::var("PGHIVE_CHUNK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let elements = ((500_000.0 * scale) as usize).max(5_000);
    let n_nodes = elements * 13 / 20; // 65% nodes, 35% edges
    let n_edges = elements - n_nodes;
    pg_hive_bench::banner(
        "BENCH_stream — chunked streaming ingestion vs load-everything baseline",
        scale,
        seed,
    );

    let d = spec().generate(n_nodes, n_edges, seed);
    let path =
        std::env::temp_dir().join(format!("pg-hive-bench-stream-{}.pgt", std::process::id()));
    std::fs::write(&path, save_text(&d.graph)).expect("write temp dataset");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "   dataset: {n_nodes} nodes + {n_edges} edges = {elements} elements \
         ({:.1} MiB on disk), chunk size {chunk_size}",
        bytes as f64 / (1024.0 * 1024.0)
    );

    let discoverer = Discoverer::new(PipelineConfig {
        seed,
        ..PipelineConfig::default()
    });

    // Baseline: everything resident. Best-of-2 like the streaming paths —
    // a single-shot measurement is the odd one out on a host whose
    // throughput wobbles between runs (and the first pass additionally
    // pays the cold page cache for the freshly written file).
    let run_baseline = || {
        let t0 = Instant::now();
        let text = std::fs::read_to_string(&path).expect("read temp dataset");
        let baseline_graph = load_text(&text).expect("parse temp dataset");
        drop(text);
        let result = discoverer.discover(&baseline_graph);
        (result, t0.elapsed().as_secs_f64())
    };
    let (baseline_result, baseline_a) = run_baseline();
    let (_, baseline_b) = run_baseline();
    let baseline_secs = baseline_a.min(baseline_b);
    let baseline_eps = elements as f64 / baseline_secs;

    // Pipeline-parallel configuration (read-ahead producer + worker pool +
    // in-order merge).
    let threads: usize = std::env::var("PGHIVE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2)
        })
        .max(1);
    let read_ahead: usize = std::env::var("PGHIVE_READ_AHEAD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .max(1);

    // Both streaming paths are measured best-of-2, *interleaved*
    // (serial, parallel, serial, parallel): the runs are deterministic, so
    // repeating filters scheduler noise, and interleaving keeps a slow
    // monotonic drift of the host (thermal/steal time) from systematically
    // penalizing whichever path happens to run last.
    let run_serial = || {
        let t = Instant::now();
        let file = BufReader::with_capacity(1 << 20, File::open(&path).expect("open temp dataset"));
        let mut reader = ChunkedTextReader::new(PgtSource::new(file), chunk_size);
        let result = discoverer.discover_stream(std::iter::from_fn(|| {
            reader.next_chunk().expect("stream temp dataset")
        }));
        let secs = t.elapsed().as_secs_f64();
        (
            result,
            secs,
            reader.max_resident_elements(),
            reader.warnings(),
        )
    };
    let run_parallel = || {
        let t = Instant::now();
        let file = BufReader::with_capacity(1 << 20, File::open(&path).expect("open temp dataset"));
        let mut ahead = ReadAheadChunks::spawn(PgtSource::new(file), chunk_size, read_ahead);
        let result = discoverer.discover_stream_parallel(
            std::iter::from_fn(|| ahead.next_chunk().expect("stream temp dataset")),
            threads,
        );
        let secs = t.elapsed().as_secs_f64();
        let summary = *ahead.summary().expect("summary after exhaustion");
        (result, secs, summary)
    };
    // Raw per-chunk compute: the same chunk pipeline but with results
    // dropped instead of absorbed — no cross-chunk merge, no finalize.
    // `canonical / raw` is the price of the order-invariant schema core.
    let run_raw = || {
        let t = Instant::now();
        let file = BufReader::with_capacity(1 << 20, File::open(&path).expect("open temp dataset"));
        let mut reader = ChunkedTextReader::new(PgtSource::new(file), chunk_size);
        while let Some(chunk) = reader.next_chunk().expect("stream temp dataset") {
            std::hint::black_box(discoverer.discover_chunk_state(&chunk));
        }
        t.elapsed().as_secs_f64()
    };
    // Sharded: the same dataset split into a two-file directory tree and
    // run through the merge-tree engine (`discover_sharded`, 2 shards —
    // each shard folds its file with its own worker pool, shard states
    // merge pairwise, cross-file edges resolve at the root). The second
    // half's edges reference first-half nodes, so the pending-edge carry
    // is on the measured path.
    let shard_dir =
        std::env::temp_dir().join(format!("pg-hive-bench-shards-{}", std::process::id()));
    std::fs::create_dir_all(&shard_dir).expect("create shard dir");
    {
        let text = std::fs::read_to_string(&path).expect("read temp dataset");
        let lines: Vec<&str> = text.lines().collect();
        let mid = lines.len() / 2;
        let half = |name: &str, ls: &[&str]| {
            let mut out = ls.join("\n");
            out.push('\n');
            std::fs::write(shard_dir.join(name), out).expect("write shard file");
        };
        half("a.pgt", &lines[..mid]);
        half("b.pgt", &lines[mid..]);
    }
    let shards = 2usize;
    let shard_threads = (threads / shards).max(1);
    let run_sharded = |n: usize| {
        let t = Instant::now();
        let source = MultiSource::enumerate(&shard_dir).expect("enumerate shard dir");
        let result = discoverer
            .discover_sharded(&source, n, chunk_size, shard_threads)
            .expect("shard temp dataset");
        (result, t.elapsed().as_secs_f64())
    };
    let (stream_result, serial_a, max_resident, warnings) = run_serial();
    let (parallel_result, parallel_a, parallel_summary) = run_parallel();
    let (sharded_serial_result, sharded_serial_a) = run_sharded(1);
    let (sharded_result, sharded_a) = run_sharded(shards);
    let raw_a = run_raw();
    let (_, serial_b, _, _) = run_serial();
    let (_, parallel_b, _) = run_parallel();
    let (_, sharded_serial_b) = run_sharded(1);
    let (_, sharded_b) = run_sharded(shards);
    let raw_b = run_raw();
    let stream_secs = serial_a.min(serial_b);
    let stream_eps = elements as f64 / stream_secs;
    let parallel_secs = parallel_a.min(parallel_b);
    let parallel_eps = elements as f64 / parallel_secs;
    let sharded_serial_secs = sharded_serial_a.min(sharded_serial_b);
    let sharded_serial_eps = elements as f64 / sharded_serial_secs;
    let sharded_secs = sharded_a.min(sharded_b);
    let sharded_eps = elements as f64 / sharded_secs;
    let raw_secs = raw_a.min(raw_b);
    let raw_eps = elements as f64 / raw_secs;

    // Incremental steady state: the repeated-signature workload. 10
    // distinct signature-diverse chunk shapes, streamed 3x each per pass —
    // a watch loop in its steady state keeps handing the engine chunks
    // whose structural fingerprints it has already clustered. Cold pass =
    // the uncached engine; warm pass = `absorb_stream_cached` with the
    // cache primed by one prior pass. Both best-of-2, byte-identity
    // asserted on the finalized strict text.
    let incr_chunk_n = ((10_000.0 * scale) as usize).max(1_000);
    let incr_shapes: Vec<PropertyGraph> = (0..10)
        .map(|i| signature_diverse_chunk(i, incr_chunk_n, 50, 8))
        .collect();
    let incr_chunks: Vec<PropertyGraph> = (0..30).map(|i| incr_shapes[i % 10].clone()).collect();
    let incr_elements: usize = incr_chunks
        .iter()
        .map(|c| c.node_count() + c.edge_count())
        .sum();
    let run_incr_cold = || {
        let mut state = discoverer.new_state();
        let t = Instant::now();
        discoverer.absorb_stream(incr_chunks.iter().cloned(), &mut state, 1);
        (state, t.elapsed().as_secs_f64())
    };
    let cache = SignatureCache::default();
    {
        // Prime: the pass that first sees each shape (counts excluded from
        // the warm measurement below).
        let mut state = discoverer.new_state();
        discoverer.absorb_stream_cached(incr_chunks.iter().cloned(), &mut state, 1, &cache);
    }
    let primed_stats = cache.stats();
    let run_incr_warm = || {
        let mut state = discoverer.new_state();
        let t = Instant::now();
        discoverer.absorb_stream_cached(incr_chunks.iter().cloned(), &mut state, 1, &cache);
        (state, t.elapsed().as_secs_f64())
    };
    let (incr_cold_state, incr_cold_a) = run_incr_cold();
    let (incr_warm_state, incr_warm_a) = run_incr_warm();
    let (_, incr_cold_b) = run_incr_cold();
    let (_, incr_warm_b) = run_incr_warm();
    let incr_cold_secs = incr_cold_a.min(incr_cold_b);
    let incr_warm_secs = incr_warm_a.min(incr_warm_b);
    let incr_cold_eps = incr_elements as f64 / incr_cold_secs;
    let incr_warm_eps = incr_elements as f64 / incr_warm_secs;
    let incr_speedup = incr_warm_eps / incr_cold_eps;
    let warm_stats = cache.stats();
    // Hit ratio over the two measured warm passes only (the priming pass
    // that populated the cache is excluded).
    let warm_lookups =
        (warm_stats.hits - primed_stats.hits) + (warm_stats.misses - primed_stats.misses);
    let cache_hit_ratio = if warm_lookups == 0 {
        0.0
    } else {
        (warm_stats.hits - primed_stats.hits) as f64 / warm_lookups as f64
    };
    let incremental_schema_match = pg_schema_strict(&incr_warm_state.finalize(), "G")
        == pg_schema_strict(&incr_cold_state.finalize(), "G");

    // Optional threads × chunk-size sweep of the pipeline-parallel path.
    // Diagnostic only: every cell is recorded, none is gated on — the
    // single-cell run above remains the CI regression signal.
    let matrix_enabled = std::env::var("PGHIVE_BENCH_MATRIX").as_deref() == Ok("1");
    let mut matrix_cells: Vec<(usize, usize, f64)> = Vec::new();
    if matrix_enabled {
        println!("   matrix: threads x chunk-size sweep (PGHIVE_BENCH_MATRIX=1)");
        for &mt in &[1usize, 2, 4] {
            for &mc in &[25_000usize, 50_000, 100_000] {
                let t = Instant::now();
                let file = BufReader::with_capacity(
                    1 << 20,
                    File::open(&path).expect("open temp dataset"),
                );
                let mut ahead = ReadAheadChunks::spawn(PgtSource::new(file), mc, read_ahead);
                let result = discoverer.discover_stream_parallel(
                    std::iter::from_fn(|| ahead.next_chunk().expect("stream temp dataset")),
                    mt,
                );
                let secs = t.elapsed().as_secs_f64();
                let eps = elements as f64 / secs;
                let ok =
                    labeled_inventory(&result.schema) == labeled_inventory(&stream_result.schema);
                assert!(ok, "matrix cell threads={mt} chunk={mc} changed the schema");
                println!("     threads={mt} chunk={mc}: {secs:.3}s ({eps:.0} elem/s)");
                matrix_cells.push((mt, mc, eps));
            }
        }
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&shard_dir);

    let schema_match =
        labeled_inventory(&baseline_result.schema) == labeled_inventory(&stream_result.schema);
    let parallel_match =
        labeled_inventory(&stream_result.schema) == labeled_inventory(&parallel_result.schema);
    // The merge-tree must be *byte*-identical across shard counts — not
    // just the same inventory — and close enough in throughput to its own
    // serial (one-shard) run that sharding is never a correctness/perf
    // trade. The comparison is 2-shard vs 1-shard over the same tree: both
    // sides use per-file fresh readers and root pending resolution, which
    // is the grouping the byte-identity guarantee quantifies over (a
    // single-file `discover_stream` groups chunks differently, so only its
    // labeled-type inventory is required to agree).
    let sharded_match = pg_schema_strict(&sharded_result.state.finalize(), "G")
        == pg_schema_strict(&sharded_serial_result.state.finalize(), "G");
    let sharded_inventory_match = labeled_inventory(&sharded_result.state.finalize())
        == labeled_inventory(&stream_result.schema);
    // After the merge-tree cost pass (byte-length LPT partitioning +
    // signature-batched root resolution) sharding must *earn its keep*:
    // ≥ 1.0x the 1-shard merge-tree run wherever there are cores for the
    // shard threads to run on. On a 1-core host two CPU-bound shard
    // threads can only time-slice one core, so the gate degrades to
    // "sharding costs at most 10% coordination overhead" — the same
    // cores-aware shape as the parallel gate below, and a large step up
    // from the 0.8x tolerance this gate started at.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sharded_required_ratio = if cores > 1 { 1.0 } else { 0.9 };
    let sharded_ratio = sharded_eps / sharded_serial_eps;
    let sharded_not_slower = sharded_ratio >= sharded_required_ratio;
    // Steady-state gates: the warm (cache-primed) pass must process
    // elements at >= 3x the cold uncached pass's rate, hitting on nearly
    // every repeated chunk, and finalize byte-identically.
    let incremental_ok = incr_speedup >= INCREMENTAL_REQUIRED_SPEEDUP;
    let cache_hit_ratio_ok = cache_hit_ratio >= CACHE_HIT_RATIO_FLOOR;
    let resident_ok =
        max_resident <= 2 * chunk_size && parallel_summary.max_resident_elements <= 2 * chunk_size;
    // The overlap must at least pay for its own coordination: require the
    // parallel path to reach the serial streaming throughput. Both sides are
    // best-of-2, plus a tolerance for shared-runner noise. On a 1-core
    // machine there is no real parallelism to win — the pool pays its
    // coordination out of the same core, and every ingestion optimization
    // (zero-copy parsing, stub fast path) widens serial's structural edge
    // because serial skips the cross-thread chunk handoff entirely — so the
    // margin is wider there (the gate's real intent, "parallelism pays for
    // itself", is only testable with actual cores); on multi-core it should
    // beat serial outright.
    let parallel_tolerance = if cores > 1 { 0.95 } else { 0.80 };
    let parallel_not_slower = parallel_eps >= parallel_tolerance * stream_eps;
    // Canonicalization (cross-chunk absorb + finalize) must keep at least
    // 0.9x the raw per-chunk throughput.
    let canonical_overhead_ok = stream_eps >= 0.9 * raw_eps;
    // The absolute-throughput gate only fires at full scale — the committed
    // baseline was measured at 500k elements; scaled-down CI runs spend a
    // larger share of their time in fixed costs.
    let full_scale = (scale - 1.0).abs() < 1e-9;
    let throughput_ok = !full_scale || stream_eps >= STREAM_REQUIRED_RATIO * STREAM_BASELINE_EPS;

    println!(
        "   baseline: {baseline_secs:.3}s ({baseline_eps:.0} elem/s), resident {elements} elements"
    );
    println!(
        "   raw:      {raw_secs:.3}s ({raw_eps:.0} elem/s) per-chunk compute only \
         (no absorb/finalize)"
    );
    println!(
        "   stream:   {stream_secs:.3}s ({stream_eps:.0} elem/s), peak resident {max_resident} \
         elements over {} chunks ({} cross-chunk edges)",
        stream_result.chunk_times.len(),
        warnings.cross_chunk_edges
    );
    let ts = &baseline_result.stats.timings;
    println!(
        "   baseline stages: preprocess {:.3}s, clustering {:.3}s, \
         extraction {:.3}s, postprocess {:.3}s (rest = read+parse+finalize)",
        ts.preprocess.as_secs_f64(),
        ts.clustering.as_secs_f64(),
        ts.extraction.as_secs_f64(),
        ts.postprocess.as_secs_f64()
    );
    println!(
        "   parallel: {parallel_secs:.3}s ({parallel_eps:.0} elem/s), {threads} thread(s), \
         read-ahead {read_ahead}, peak resident {} elements",
        parallel_summary.max_resident_elements
    );
    println!(
        "   sharded:  {sharded_secs:.3}s ({sharded_eps:.0} elem/s) at {shards} shards x \
         {shard_threads} thread(s) vs {sharded_serial_secs:.3}s ({sharded_serial_eps:.0} \
         elem/s) at 1 shard, {} pending edge(s) left at root",
        sharded_result.pending.len()
    );
    println!(
        "   incremental: cold {incr_cold_secs:.3}s ({incr_cold_eps:.0} elem/s) vs warm \
         {incr_warm_secs:.3}s ({incr_warm_eps:.0} elem/s) over {incr_elements} \
         repeated-signature elements — {incr_speedup:.2}x, cache hit ratio \
         {cache_hit_ratio:.3}, byte-identical: {incremental_schema_match}"
    );
    println!(
        "   labeled-type inventory match: baseline=={schema_match} parallel=={parallel_match} \
         sharded=={sharded_inventory_match}; sharded strict bytes == 1-shard: {sharded_match}; \
         peak resident <= 2x chunk: {resident_ok}; parallel not slower: {parallel_not_slower}; \
         sharded >= {sharded_required_ratio}x 1-shard: {sharded_not_slower} \
         ({sharded_ratio:.3}); canonical >= 0.9x raw: {canonical_overhead_ok}; \
         warm >= {INCREMENTAL_REQUIRED_SPEEDUP}x cold: {incremental_ok}"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"stream\",");
    let _ = writeln!(json, "  \"elements\": {elements},");
    let _ = writeln!(json, "  \"nodes\": {n_nodes},");
    let _ = writeln!(json, "  \"edges\": {n_edges},");
    let _ = writeln!(json, "  \"chunk_size\": {chunk_size},");
    let _ = writeln!(json, "  \"chunks\": {},", stream_result.chunk_times.len());
    let _ = writeln!(json, "  \"baseline_secs\": {baseline_secs:.6},");
    let _ = writeln!(json, "  \"baseline_elements_per_sec\": {baseline_eps:.1},");
    let _ = writeln!(json, "  \"stream_secs\": {stream_secs:.6},");
    let _ = writeln!(json, "  \"stream_elements_per_sec\": {stream_eps:.1},");
    let _ = writeln!(json, "  \"canonical_elements_per_sec\": {stream_eps:.1},");
    let _ = writeln!(json, "  \"raw_chunk_elements_per_sec\": {raw_eps:.1},");
    let _ = writeln!(
        json,
        "  \"canonical_overhead_ratio\": {:.4},",
        stream_eps / raw_eps
    );
    let _ = writeln!(
        json,
        "  \"canonical_overhead_ok\": {canonical_overhead_ok},"
    );
    let _ = writeln!(
        json,
        "  \"embedder_hoist_note\": \"the embedder is built once per \
         discover_stream*/discover_batches run and shared across chunks/workers (ISSUE 4; \
         before: once per chunk). Before/after on the same 1-core dev container, serial \
         streaming stayed within run-to-run noise of the PR 3 engine (240.1k elem/s \
         recorded then; this host wobbles roughly +/-15% between identical runs) — the \
         durable regression signal is canonical_overhead_ratio, measured within a single \
         run. Word2Vec is unaffected: it still trains per chunk\","
    );
    let _ = writeln!(json, "  \"parallel_secs\": {parallel_secs:.6},");
    let _ = writeln!(json, "  \"parallel_elements_per_sec\": {parallel_eps:.1},");
    let _ = writeln!(json, "  \"parallel_threads\": {threads},");
    let _ = writeln!(json, "  \"parallel_read_ahead\": {read_ahead},");
    let _ = writeln!(
        json,
        "  \"parallel_max_chunk_resident_elements\": {},",
        parallel_summary.max_resident_elements
    );
    let _ = writeln!(json, "  \"parallel_schema_match\": {parallel_match},");
    let _ = writeln!(json, "  \"parallel_not_slower\": {parallel_not_slower},");
    let _ = writeln!(json, "  \"sharded_secs\": {sharded_secs:.6},");
    let _ = writeln!(json, "  \"sharded_elements_per_sec\": {sharded_eps:.1},");
    let _ = writeln!(
        json,
        "  \"sharded_serial_elements_per_sec\": {sharded_serial_eps:.1},"
    );
    let _ = writeln!(json, "  \"sharded_shards\": {shards},");
    let _ = writeln!(json, "  \"sharded_threads_per_shard\": {shard_threads},");
    let _ = writeln!(json, "  \"sharded_schema_match\": {sharded_match},");
    let _ = writeln!(
        json,
        "  \"sharded_inventory_match\": {sharded_inventory_match},"
    );
    let _ = writeln!(json, "  \"sharded_ratio\": {sharded_ratio:.4},");
    let _ = writeln!(
        json,
        "  \"sharded_required_ratio\": {sharded_required_ratio:.2},"
    );
    let _ = writeln!(json, "  \"sharded_not_slower\": {sharded_not_slower},");
    let _ = writeln!(json, "  \"incremental_elements\": {incr_elements},");
    let _ = writeln!(
        json,
        "  \"incremental_cold_elements_per_sec\": {incr_cold_eps:.1},"
    );
    let _ = writeln!(
        json,
        "  \"incremental_pass_elements_per_sec\": {incr_warm_eps:.1},"
    );
    let _ = writeln!(json, "  \"incremental_speedup\": {incr_speedup:.4},");
    let _ = writeln!(
        json,
        "  \"incremental_required_speedup\": {INCREMENTAL_REQUIRED_SPEEDUP:.2},"
    );
    let _ = writeln!(json, "  \"cache_hit_ratio\": {cache_hit_ratio:.4},");
    let _ = writeln!(
        json,
        "  \"cache_hit_ratio_floor\": {CACHE_HIT_RATIO_FLOOR:.2},"
    );
    let _ = writeln!(
        json,
        "  \"incremental_schema_match\": {incremental_schema_match},"
    );
    let _ = writeln!(json, "  \"incremental_ok\": {incremental_ok},");
    let _ = writeln!(json, "  \"cache_hit_ratio_ok\": {cache_hit_ratio_ok},");
    let _ = writeln!(json, "  \"baseline_resident_elements\": {elements},");
    let _ = writeln!(json, "  \"max_chunk_resident_elements\": {max_resident},");
    let _ = writeln!(
        json,
        "  \"resident_ratio\": {:.6},",
        max_resident as f64 / elements as f64
    );
    let _ = writeln!(
        json,
        "  \"cross_chunk_edges\": {},",
        warnings.cross_chunk_edges
    );
    let _ = writeln!(
        json,
        "  \"unresolved_edges\": {},",
        warnings.unresolved_edges
    );
    let _ = writeln!(
        json,
        "  \"node_types\": {},",
        stream_result.schema.node_types.len()
    );
    let _ = writeln!(
        json,
        "  \"edge_types\": {},",
        stream_result.schema.edge_types.len()
    );
    let _ = writeln!(json, "  \"schema_match\": {schema_match},");
    let _ = writeln!(json, "  \"resident_within_2x_chunk\": {resident_ok},");
    let _ = writeln!(
        json,
        "  \"stream_committed_baseline_elements_per_sec\": {STREAM_BASELINE_EPS:.1},"
    );
    let _ = writeln!(
        json,
        "  \"stream_required_ratio\": {STREAM_REQUIRED_RATIO:.2},"
    );
    let _ = writeln!(json, "  \"stream_throughput_gate_active\": {full_scale},");
    if matrix_cells.is_empty() {
        let _ = writeln!(json, "  \"stream_throughput_gate_ok\": {throughput_ok}");
    } else {
        let _ = writeln!(json, "  \"stream_throughput_gate_ok\": {throughput_ok},");
        let _ = writeln!(json, "  \"matrix\": [");
        for (i, (mt, mc, eps)) in matrix_cells.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{ \"threads\": {mt}, \"chunk_size\": {mc}, \
                 \"elements_per_sec\": {eps:.1} }}{}",
                if i + 1 == matrix_cells.len() { "" } else { "," }
            );
        }
        let _ = writeln!(json, "  ]");
    }
    json.push_str("}\n");
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    println!("   wrote BENCH_stream.json");

    if !schema_match
        || !parallel_match
        || !sharded_match
        || !sharded_inventory_match
        || !resident_ok
        || !parallel_not_slower
        || !sharded_not_slower
        || !canonical_overhead_ok
        || !throughput_ok
        || !incremental_ok
        || !cache_hit_ratio_ok
        || !incremental_schema_match
    {
        if !sharded_match {
            eprintln!("FAIL: 2-shard merge-tree schema diverged from the 1-shard run");
        }
        if !sharded_inventory_match {
            eprintln!("FAIL: sharded labeled-type inventory diverged from the serial stream");
        }
        if !sharded_not_slower {
            eprintln!(
                "FAIL: sharded at {sharded_eps:.0} elem/s, below \
                 {sharded_required_ratio}x the 1-shard merge-tree run \
                 ({sharded_serial_eps:.0} elem/s)"
            );
        }
        if !incremental_ok {
            eprintln!(
                "FAIL: warm steady-state pass at {incr_warm_eps:.0} elem/s, below \
                 {INCREMENTAL_REQUIRED_SPEEDUP}x the cold pass ({incr_cold_eps:.0} elem/s)"
            );
        }
        if !cache_hit_ratio_ok {
            eprintln!(
                "FAIL: warm-pass cache hit ratio {cache_hit_ratio:.3} below \
                 {CACHE_HIT_RATIO_FLOOR}"
            );
        }
        if !incremental_schema_match {
            eprintln!("FAIL: cached steady-state pass diverged from the uncached engine");
        }
        if !throughput_ok {
            eprintln!(
                "FAIL: serial streaming at {stream_eps:.0} elem/s, below \
                 {STREAM_REQUIRED_RATIO}x the committed baseline \
                 ({STREAM_BASELINE_EPS:.0} elem/s)"
            );
        }
        eprintln!("FAIL: streaming acceptance criteria not met");
        std::process::exit(1);
    }
}
