//! Table 2: dataset statistics — nodes, edges, ground-truth type counts,
//! label counts, and structural pattern counts (Defs. 3.5/3.6) for the
//! eight generated datasets.

use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_eval::report::{table2_header, table2_row};

fn main() {
    let scale = scale(0.25);
    let seed = seed();
    banner("Table 2: Dataset statistics", scale, seed);
    println!("{}", table2_header());
    for id in selected_datasets() {
        let d = id.generate(scale, seed);
        println!(
            "{}",
            table2_row(
                id.name(),
                &d.graph,
                d.truth.node_type_names.len(),
                d.truth.edge_type_names.len()
            )
        );
    }
    println!(
        "\n(Each generator mirrors its dataset's structural profile at {scale}x of the \
         default scaled-down size; see DESIGN.md for the substitution rationale.)"
    );
}
