//! Figure 3: statistical-significance analysis of F1\*-scores across all
//! 40 test cases (8 datasets × 5 noise levels) under 100% label
//! availability — Friedman average ranks with the Nemenyi critical
//! distance, for nodes (4 methods) and edges (3 methods; GMM discovers no
//! edge types).

use pg_hive_baselines::Method;
use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_eval::harness::{run_case, ExperimentCase, NOISE_LEVELS};
use pg_hive_eval::ranks::{average_ranks, friedman_statistic, nemenyi_critical_distance};
use pg_hive_eval::report::rank_line;

fn main() {
    let scale = scale(0.1);
    let seed = seed();
    banner("Figure 3: Nemenyi significance analysis", scale, seed);

    let datasets = selected_datasets();
    let node_methods = [
        Method::PgHiveElsh,
        Method::PgHiveMinHash,
        Method::GmmSchema,
        Method::SchemI,
    ];
    let edge_methods = [Method::PgHiveElsh, Method::PgHiveMinHash, Method::SchemI];

    let mut node_scores: Vec<Vec<f64>> = vec![Vec::new(); node_methods.len()];
    let mut edge_scores: Vec<Vec<f64>> = vec![Vec::new(); edge_methods.len()];

    for &dataset in &datasets {
        for noise in NOISE_LEVELS {
            eprintln!("  case: {} noise={}%", dataset.name(), noise);
            for (i, &method) in node_methods.iter().enumerate() {
                let r = run_case(&ExperimentCase {
                    dataset,
                    noise_pct: noise,
                    label_pct: 100,
                    method,
                    scale,
                    seed,
                });
                node_scores[i].push(r.node_f1.map_or(0.0, |f| f.macro_f1));
                if let Some(j) = edge_methods.iter().position(|&m| m == method) {
                    edge_scores[j].push(r.edge_f1.map_or(0.0, |f| f.macro_f1));
                }
            }
        }
    }

    let n_cases = node_scores[0].len();
    println!("Nodes ({} methods, {} cases):", node_methods.len(), n_cases);
    let ranks = average_ranks(&node_scores);
    let cd = nemenyi_critical_distance(node_methods.len(), n_cases);
    let names: Vec<&str> = node_methods.iter().map(|m| m.name()).collect();
    println!("  {}", rank_line(&names, &ranks, cd));
    println!(
        "  Friedman chi^2 = {:.2}",
        friedman_statistic(&ranks, n_cases)
    );

    println!(
        "\nEdges ({} methods, {} cases):",
        edge_methods.len(),
        n_cases
    );
    let eranks = average_ranks(&edge_scores);
    let ecd = nemenyi_critical_distance(edge_methods.len(), n_cases);
    let enames: Vec<&str> = edge_methods.iter().map(|m| m.name()).collect();
    println!("  {}", rank_line(&enames, &eranks, ecd));
    println!(
        "  Friedman chi^2 = {:.2}",
        friedman_statistic(&eranks, n_cases)
    );

    println!(
        "\nExpected shape (paper): PG-HIVE-ELSH and PG-HIVE-MinHash form a top group \
         with no significant difference between them; both significantly outrank GMM \
         and SchemI."
    );
}
