//! Figure 8: distribution of datatype-inference sampling errors across
//! datasets, for the ELSH and MinHash variants. Errors are computed per
//! (discovered type, property) pair — comparing the 10%-sample inference
//! against the full scan — then binned (0–0.05, 0.05–0.10, 0.10–0.20,
//! ≥0.20) and normalized by the number of properties.

use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_core::{Discoverer, PipelineConfig, SamplingConfig};
use pg_hive_eval::sampling_error::{sampling_errors_by_type, ErrorBins};

fn main() {
    let scale = scale(0.25);
    let seed = seed();
    banner(
        "Figure 8: Datatype sampling-error distribution",
        scale,
        seed,
    );

    let sampling = SamplingConfig {
        fraction: 0.1,
        min_values: 1000,
        seed,
    };

    for (label, cfg) in [
        ("ELSH", PipelineConfig::elsh_adaptive()),
        ("MinHash", PipelineConfig::minhash_default()),
    ] {
        println!("{label}:");
        println!(
            "  {:<8} {:>8} {:>10} {:>10} {:>8}",
            "Dataset", "0-0.05", "0.05-0.10", "0.10-0.20", ">=0.20"
        );
        for dataset in selected_datasets() {
            let d = dataset.generate(scale, seed);
            let r = Discoverer::new(PipelineConfig {
                seed,
                ..cfg.clone()
            })
            .discover(&d.graph);
            let errors = sampling_errors_by_type(&d.graph, &r.schema, &sampling);
            let bins = ErrorBins::from_errors(&errors);
            println!(
                "  {:<8} {:>8.3} {:>10.3} {:>10.3} {:>8.3}",
                dataset.name(),
                bins.lowest,
                bins.low,
                bins.mid,
                bins.high
            );
        }
        println!();
    }

    println!(
        "Expected shape (paper): most properties fall in the lowest error bin; outliers \
         concentrate on the heterogeneous datasets (ICIJ, CORD19, IYP) whose dirty \
         columns a small sample can misread."
    );
}
