//! Export the generated datasets as files the `pg-hive` CLI and the
//! streaming loaders consume, so the evaluation datasets can be inspected
//! or fed through external tooling.
//!
//! Usage: `cargo run --release -p pg-hive-bench --bin export_datasets
//!         [dir] [pgt|csv|jsonl|all]` (default: `datasets_out` / `pgt`)

use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_datasets::{export_graph, ExportFormat};
use std::path::Path;

fn main() {
    let scale = scale(0.1);
    let seed = seed();
    banner("Export datasets", scale, seed);
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "datasets_out".to_string());
    let formats: Vec<ExportFormat> = match std::env::args().nth(2).as_deref() {
        None => vec![ExportFormat::Pgt],
        Some("all") => ExportFormat::ALL.to_vec(),
        Some(name) => vec![ExportFormat::parse(name).unwrap_or_else(|| {
            eprintln!("unknown format '{name}', expected pgt|csv|jsonl|all");
            std::process::exit(2);
        })],
    };
    for id in selected_datasets() {
        let d = id.generate(scale, seed);
        let stem = id.name().replace('.', "_").to_lowercase();
        for &format in &formats {
            let path =
                export_graph(&d.graph, Path::new(&dir), &stem, format).expect("write dataset");
            println!(
                "  {} [{}]: {} nodes, {} edges",
                path.display(),
                format.name(),
                d.graph.node_count(),
                d.graph.edge_count()
            );
        }
    }
}
