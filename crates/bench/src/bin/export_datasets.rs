//! Export the generated datasets as `.pgt` text files (the format the
//! `pg-hive` CLI and the loader consume), so the evaluation datasets can be
//! inspected or fed through external tooling.
//!
//! Usage: `cargo run --release -p pg-hive-bench --bin export_datasets [dir]`

use pg_hive_bench::{banner, scale, seed, selected_datasets};
use pg_hive_graph::loader::save_text;

fn main() {
    let scale = scale(0.1);
    let seed = seed();
    banner("Export datasets as .pgt files", scale, seed);
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "datasets_out".to_string());
    std::fs::create_dir_all(&dir).expect("create output dir");
    for id in selected_datasets() {
        let d = id.generate(scale, seed);
        let path = format!("{dir}/{}.pgt", id.name().replace('.', "_").to_lowercase());
        std::fs::write(&path, save_text(&d.graph)).expect("write dataset");
        println!(
            "  {path}: {} nodes, {} edges",
            d.graph.node_count(),
            d.graph.edge_count()
        );
    }
}
