//! Diagnostic tool: per-type precision/recall and the confusion pairs of
//! one (dataset, noise, labels, method) cell — the microscope behind the
//! Fig. 4 curves. Usage:
//!
//! ```text
//! cargo run --release -p pg-hive-bench --bin diagnose [DATASET [NOISE% [LABELS% [METHOD]]]]
//! ```

use pg_hive_baselines::Method;
use pg_hive_bench::{banner, scale, seed};
use pg_hive_datasets::{dataset_by_name, inject_noise, DatasetId, NoiseSpec};
use pg_hive_eval::ConfusionReport;

fn main() {
    let mut args = std::env::args().skip(1);
    let dataset = args
        .next()
        .and_then(|n| dataset_by_name(&n))
        .unwrap_or(DatasetId::Icij);
    let noise: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let labels: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let method = match args.next().as_deref() {
        Some("minhash") => Method::PgHiveMinHash,
        Some("gmm") => Method::GmmSchema,
        Some("schemi") => Method::SchemI,
        _ => Method::PgHiveElsh,
    };

    let scale = scale(0.1);
    let seed = seed();
    banner(
        &format!(
            "Diagnose {} on {} at {noise}% noise / {labels}% labels",
            method.name(),
            dataset.name()
        ),
        scale,
        seed,
    );

    let mut d = dataset.generate(scale, seed);
    inject_noise(&mut d.graph, &NoiseSpec::grid(noise, labels, seed));
    let Some(out) = method.run(&d.graph, seed) else {
        println!(
            "{} refuses this input (needs fully labeled data).",
            method.name()
        );
        return;
    };

    println!("nodes:");
    let report = ConfusionReport::compute(&out.node_assignment, &d.truth.node_types);
    print!("{}", report.render(&d.truth.node_type_names));

    if let Some(edges) = &out.edge_assignment {
        println!("\nedges:");
        let report = ConfusionReport::compute(edges, &d.truth.edge_types);
        print!("{}", report.render(&d.truth.edge_type_names));
    }
}
