//! # pg-hive-bench
//!
//! Benchmark harness regenerating every table and figure of the PG-HIVE
//! paper's evaluation (§5). One binary per experiment:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table1_capabilities` | Table 1 — capability matrix |
//! | `table2_datasets` | Table 2 — dataset statistics |
//! | `fig3_significance` | Fig. 3 — Nemenyi average ranks over 40 cases |
//! | `fig4_f1_noise` | Fig. 4 — F1\* vs noise × label availability |
//! | `fig5_exec_time` | Fig. 5 — time until type discovery |
//! | `fig6_param_heatmap` | Fig. 6 — F1\* over the (T, b) grid + adaptive pick |
//! | `fig7_incremental` | Fig. 7 — per-batch incremental runtimes |
//! | `fig8_datatype_error` | Fig. 8 — datatype sampling-error bins |
//!
//! Criterion micro/meso benches: `bench_discovery`, `bench_incremental`,
//! `bench_lsh`, `bench_components`.
//!
//! Two JSON perf trackers gate CI PR over PR:
//!
//! - `bench_lsh_json` → `BENCH_lsh.json` — LSH hot-path throughput
//!   (signature dedup + projection banks vs the seed scalar reference);
//! - `bench_stream_json` → `BENCH_stream.json` — streaming ingestion:
//!   load-everything baseline vs serial streaming vs the pipeline-parallel
//!   engine (read-ahead + worker pool; records thread count and read-ahead
//!   depth, honors `PGHIVE_THREADS` / `PGHIVE_READ_AHEAD` / `PGHIVE_CHUNK`).
//!
//! All binaries accept the `PGHIVE_SCALE` environment variable (default
//! shown per binary) to trade fidelity for runtime, and `PGHIVE_SEED`.

use pg_hive_datasets::DatasetId;

/// Scale factor for dataset generation, from `PGHIVE_SCALE` or a default.
pub fn scale(default: f64) -> f64 {
    std::env::var("PGHIVE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Experiment seed, from `PGHIVE_SEED` or 42.
pub fn seed() -> u64 {
    std::env::var("PGHIVE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Datasets to run, from `PGHIVE_DATASETS` (comma-separated names) or all.
pub fn selected_datasets() -> Vec<DatasetId> {
    match std::env::var("PGHIVE_DATASETS") {
        Ok(list) => list
            .split(',')
            .filter_map(|n| pg_hive_datasets::dataset_by_name(n.trim()))
            .collect(),
        Err(_) => DatasetId::ALL.to_vec(),
    }
}

/// Standard experiment banner.
pub fn banner(title: &str, scale: f64, seed: u64) {
    println!("== {title} ==");
    println!("   (scale={scale}, seed={seed}; override with PGHIVE_SCALE / PGHIVE_SEED)");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_when_unset() {
        std::env::remove_var("PGHIVE_SCALE");
        assert_eq!(scale(0.25), 0.25);
    }

    #[test]
    fn selected_datasets_default_all() {
        std::env::remove_var("PGHIVE_DATASETS");
        assert_eq!(selected_datasets().len(), 8);
    }
}
