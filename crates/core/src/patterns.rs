//! Node and edge patterns (Def. 3.5 / Def. 3.6).
//!
//! A *pattern* is the raw structural fingerprint of an element: its label
//! set and property-key set (plus endpoint label sets for edges). A *type*
//! may cover several patterns — e.g. the two `Post` patterns of Fig. 1 — so
//! patterns are the unit the clustering step actually separates, and the
//! merge step (Algorithm 2) regroups into types.

use pg_hive_graph::{Edge, Node, PropertyGraph};
use std::collections::BTreeSet;

/// A node pattern `T_Np = (L, K)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodePattern {
    /// The node's label set `L`.
    pub labels: BTreeSet<String>,
    /// The node's property-key set `K`.
    pub keys: BTreeSet<String>,
}

/// An edge pattern `T_Ep = (L, K, R)` with `R = (L_s, L_t)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgePattern {
    /// The edge's label set `L`.
    pub labels: BTreeSet<String>,
    /// The edge's property-key set `K`.
    pub keys: BTreeSet<String>,
    /// Source endpoint's label set `L_s`.
    pub src_labels: BTreeSet<String>,
    /// Target endpoint's label set `L_t`.
    pub tgt_labels: BTreeSet<String>,
}

impl NodePattern {
    /// Pattern of a concrete node.
    pub fn of(g: &PropertyGraph, n: &Node) -> Self {
        NodePattern {
            labels: n
                .labels
                .iter()
                .map(|&l| g.label_str(l).to_string())
                .collect(),
            keys: n.keys().map(|k| g.key_str(k).to_string()).collect(),
        }
    }
}

impl EdgePattern {
    /// Pattern of a concrete edge (endpoint labels read from the store).
    pub fn of(g: &PropertyGraph, e: &Edge) -> Self {
        let (src, tgt) = g.edge_endpoint_labels(e);
        EdgePattern {
            labels: e
                .labels
                .iter()
                .map(|&l| g.label_str(l).to_string())
                .collect(),
            keys: e.keys().map(|k| g.key_str(k).to_string()).collect(),
            src_labels: src.iter().map(|&l| g.label_str(l).to_string()).collect(),
            tgt_labels: tgt.iter().map(|&l| g.label_str(l).to_string()).collect(),
        }
    }
}

/// Jaccard similarity of two string sets — the merge criterion of
/// Algorithm 2 (`J(C1, C2) = |K1 ∩ K2| / |K1 ∪ K2|`).
pub fn jaccard_str(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hive_graph::{GraphBuilder, Value};

    #[test]
    fn node_pattern_captures_labels_and_keys() {
        let mut b = GraphBuilder::new();
        let n = b.add_node(
            &["Person"],
            &[("name", Value::from("Bob")), ("age", Value::Int(1))],
        );
        let g = b.finish();
        let p = NodePattern::of(&g, g.node(n));
        assert!(p.labels.contains("Person"));
        assert_eq!(p.keys.len(), 2);
    }

    #[test]
    fn edge_pattern_captures_endpoints() {
        let mut b = GraphBuilder::new();
        let p = b.add_node(&["Person"], &[]);
        let o = b.add_node(&["Org"], &[]);
        b.add_edge(p, o, &["WORKS_AT"], &[("from", Value::Int(2000))]);
        let g = b.finish();
        let (_, e) = g.edges().next().unwrap();
        let pat = EdgePattern::of(&g, e);
        assert!(pat.labels.contains("WORKS_AT"));
        assert!(pat.src_labels.contains("Person"));
        assert!(pat.tgt_labels.contains("Org"));
        assert!(pat.keys.contains("from"));
    }

    #[test]
    fn jaccard_str_basics() {
        let a: BTreeSet<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let b: BTreeSet<String> = ["b", "c", "d"].iter().map(|s| s.to_string()).collect();
        assert!((jaccard_str(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_str(&a, &a), 1.0);
        let empty = BTreeSet::new();
        assert_eq!(jaccard_str(&empty, &empty), 1.0);
        assert_eq!(jaccard_str(&a, &empty), 0.0);
    }
}
