//! Cross-chunk / cross-pass signature cache (the "incremental steady
//! state" memoization layer).
//!
//! Streaming discovery spends almost all of its time in embedding + LSH,
//! yet steady-state workloads (a `watch` loop re-reading a slowly-growing
//! file, a log whose chunks repeat the same element shapes) keep handing
//! the pipeline *structurally identical* chunks. [`SignatureCache`]
//! memoizes the expensive stages at chunk granularity:
//!
//! - the key is the 128-bit structural fingerprint from
//!   [`crate::preprocess::signature_scan`] — a string-level hash of
//!   everything that determines the chunk's clusterings (key universe,
//!   per-element label/key streams);
//! - the value is the pair of **distinct-level** clusterings (nodes,
//!   edges) the dedup pipeline produced for that fingerprint — dozens of
//!   entries, not per-element vectors, so the cache stays small and cheap
//!   to persist.
//!
//! On a hit the caller re-runs only the cheap signature scan (dedup +
//! `rep_of`), broadcasts the cached distinct clustering, and skips
//! embedding, matrix construction, adaptive parameter derivation, and LSH
//! entirely. Soundness is argued at [`crate::preprocess::signature_scan`];
//! as a belt-and-braces guard against fingerprint collisions, a hit is
//! only honoured when the cached assignment lengths equal the scan's
//! distinct counts — any mismatch is treated as a miss.
//!
//! The cache is `Sync` (a mutex around a FIFO-bounded map) so the
//! parallel streaming workers share one instance, and it serializes to a
//! snapshot section (see `docs/PERSISTENCE.md`) so `watch` resumes warm.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use pg_hive_lsh::Clustering;

/// Default maximum number of cached chunk fingerprints.
pub const DEFAULT_CACHE_CAP: usize = 4096;

/// The cached result for one chunk fingerprint: both element classes'
/// distinct-level clusterings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedChunk {
    /// Distinct-level node clustering.
    pub nodes: Clustering,
    /// Distinct-level edge clustering.
    pub edges: Clustering,
}

/// Hit/miss counters observed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached clustering.
    pub hits: u64,
    /// Lookups that fell through to the full pipeline.
    pub misses: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u128, CachedChunk>,
    order: VecDeque<u128>,
    stats: CacheStats,
}

/// Shared, bounded memoization of chunk-fingerprint → distinct-level
/// clusterings. See the module docs for the design and soundness story.
#[derive(Debug)]
pub struct SignatureCache {
    inner: Mutex<Inner>,
    cap: usize,
}

impl Default for SignatureCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAP)
    }
}

impl SignatureCache {
    /// Create an empty cache holding at most `cap` fingerprints (FIFO
    /// eviction). A zero cap disables storage but still counts lookups.
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up `fingerprint`, honouring the hit only when the cached
    /// assignment lengths match the scan's distinct counts (collision
    /// guard). Updates the hit/miss counters.
    pub fn lookup(
        &self,
        fingerprint: u128,
        node_distinct: usize,
        edge_distinct: usize,
    ) -> Option<CachedChunk> {
        let mut inner = self.lock();
        let hit = inner.map.get(&fingerprint).filter(|c| {
            c.nodes.assignment.len() == node_distinct && c.edges.assignment.len() == edge_distinct
        });
        match hit {
            Some(c) => {
                let c = c.clone();
                inner.stats.hits += 1;
                Some(c)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Store the distinct-level clusterings for `fingerprint`, evicting
    /// the oldest entry when full.
    pub fn insert(&self, fingerprint: u128, chunk: CachedChunk) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.map.insert(fingerprint, chunk).is_none() {
            inner.order.push_back(fingerprint);
            while inner.order.len() > self.cap {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Number of cached fingerprints.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no fingerprints are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize the cached entries (insertion order preserved, counters
    /// excluded) as snapshot-section lines:
    /// `<fingerprint-hex> <nodes-compact> <edges-compact>`.
    pub fn snapshot_lines(&self) -> Vec<String> {
        let inner = self.lock();
        inner
            .order
            .iter()
            .filter_map(|fp| {
                inner.map.get(fp).map(|c| {
                    format!(
                        "{:032x} {} {}",
                        fp,
                        c.nodes.encode_compact(),
                        c.edges.encode_compact()
                    )
                })
            })
            .collect()
    }

    /// Rebuild a cache from [`SignatureCache::snapshot_lines`] output.
    /// Counters start at zero; entries beyond `cap` are dropped FIFO.
    pub fn from_snapshot_lines(lines: &[String], cap: usize) -> Result<Self, String> {
        let cache = Self::new(cap);
        for line in lines {
            let mut parts = line.splitn(3, ' ');
            let (fp, nodes, edges) = match (parts.next(), parts.next(), parts.next()) {
                (Some(f), Some(n), Some(e)) => (f, n, e),
                _ => return Err(format!("malformed sigcache line '{line}'")),
            };
            let fingerprint = u128::from_str_radix(fp, 16)
                .map_err(|_| format!("bad sigcache fingerprint '{fp}'"))?;
            cache.insert(
                fingerprint,
                CachedChunk {
                    nodes: Clustering::decode_compact(nodes)?,
                    edges: Clustering::decode_compact(edges)?,
                },
            );
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(n: usize) -> CachedChunk {
        CachedChunk {
            nodes: Clustering {
                assignment: vec![0; n],
                num_clusters: usize::from(n > 0),
            },
            edges: Clustering {
                assignment: Vec::new(),
                num_clusters: 0,
            },
        }
    }

    #[test]
    fn lookup_counts_and_guards_distinct_mismatch() {
        let cache = SignatureCache::new(8);
        cache.insert(42, chunk(3));
        assert_eq!(cache.lookup(42, 3, 0), Some(chunk(3)));
        assert_eq!(cache.lookup(42, 2, 0), None, "distinct mismatch is a miss");
        assert_eq!(cache.lookup(7, 3, 0), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert!((stats.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_respects_cap() {
        let cache = SignatureCache::new(2);
        for fp in 0..3u128 {
            cache.insert(fp, chunk(1));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(0, 1, 0).is_none(), "oldest entry evicted");
        assert!(cache.lookup(2, 1, 0).is_some());
    }

    #[test]
    fn snapshot_round_trips() {
        let cache = SignatureCache::new(8);
        cache.insert(u128::MAX, chunk(2));
        cache.insert(5, chunk(0));
        let lines = cache.snapshot_lines();
        let back = SignatureCache::from_snapshot_lines(&lines, 8).unwrap();
        assert_eq!(back.snapshot_lines(), lines);
        assert_eq!(back.lookup(u128::MAX, 2, 0), Some(chunk(2)));
        assert!(SignatureCache::from_snapshot_lines(&["zz".into()], 8).is_err());
        assert!(SignatureCache::from_snapshot_lines(&["1 0: bad".into()], 8).is_err());
    }
}
